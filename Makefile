# Developer entry points.  `make check` is the tier-1 gate: the full
# unit suite plus a bytecode compile of every source file.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: check test compile smoke bench bench-gate

check: test compile smoke

test:
	$(PYTHON) -m pytest -x -q

compile:
	$(PYTHON) -m compileall -q src

# runs the quickstart end to end and asserts a non-empty metrics dump
smoke:
	$(PYTHON) scripts/smoke_quickstart.py

bench:
	$(PYTHON) -m pytest benchmarks -q

# perf-regression gate: scenarios vs tracked BENCH_*.json baselines.
# Refresh baselines with `make bench-gate BENCH_GATE_FLAGS=--update`;
# CI passes --no-wall to skip hardware-dependent wall-clock metrics.
bench-gate:
	$(PYTHON) scripts/bench_gate.py $(BENCH_GATE_FLAGS)
