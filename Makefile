# Developer entry points.  `make check` is the tier-1 gate: the full
# unit suite plus a bytecode compile of every source file.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: check test compile smoke bench bench-gate diff-fidelity fleet

check: test compile smoke

test:
	$(PYTHON) -m pytest -x -q

compile:
	$(PYTHON) -m compileall -q src

# runs the quickstart end to end and asserts a non-empty metrics dump
smoke:
	$(PYTHON) scripts/smoke_quickstart.py

bench:
	$(PYTHON) -m pytest benchmarks -q

# perf-regression gate: scenarios vs tracked BENCH_*.json baselines.
# Refresh baselines with `make bench-gate BENCH_GATE_FLAGS=--update`;
# CI passes --no-wall to skip hardware-dependent wall-clock metrics.
bench-gate:
	$(PYTHON) scripts/bench_gate.py $(BENCH_GATE_FLAGS)

# fleet run: N scenario shards across a multiprocessing pool, merged
# into one fleet archive (benchmarks/out/fleet/fleet_*.json) with
# per-shard wall/RSS/overhead attribution; exits 1 on merged audit
# violations.  `make fleet FLEET_FLAGS="--shards 8 --seed 2024"`.
fleet:
	$(PYTHON) scripts/fleet.py $(FLEET_FLAGS)

# differential fidelity gate: every scenario must be byte-identical
# between the per-cell loop and the cell-train fast path (and, with
# --hybrid in DIFF_FIDELITY_FLAGS, hybrid must hold its toleranced
# contract); prints the repro.obs diff attribution table per scenario
diff-fidelity:
	$(PYTHON) scripts/diff_fidelity.py $(DIFF_FIDELITY_FLAGS)
