"""``python -m repro.obs`` — render metrics/trace/timeseries dumps.

Subcommands::

    report <metrics.json> [--trace trace.jsonl] [--top N] [--strict]
        Metrics summary + telemetry health + SLO table + span
        waterfalls.  The trace sidecar is auto-discovered next to
        ``metrics_<name>.json`` when not given.  ``--strict`` exits 1
        on SLO violations.

    trace <trace.jsonl> [--top N]
        Span waterfalls / slow-span table only.

    critical <archive> [--trace ID | --p99] [--top N]
        Critical-path analysis: the longest blocking chain through a
        trace's span tree, with per-span self-time and slack, plus
        attribution tables by component and span kind.  The archive is
        a ``trace_*.jsonl``, a streamed ``obs_*.jsonl``, or a
        ``metrics_*.json`` (trace sidecar auto-discovered).  Default
        renders the longest trace; ``--p99`` renders every tail
        exemplar (root duration at/above the p99); ``--trace ID``
        renders one trace.

    diff <run_a> <run_b> [--top N] [--json PATH]
        Differential comparison of two archived runs: bench vector,
        ranked time attribution (span kinds, critical-path components,
        profiler callsites), SLO verdict transitions, per-instrument
        metric movements, ledger top-account shifts.  Accepts
        ``metrics_*.json`` (sidecars auto-discovered), ``obs_*.jsonl``
        and ``BENCH_*.json`` archives on either side.  Exits 1 when
        any *deterministic* delta is present (wall-clock sections
        never count), so same-seed runs assert reproducibility in CI.

    slo <metrics.json>
        SLO table only; exits 1 on violations.

    dashboard [timeseries.json] [--live SCENARIO] [--follow] ...
        Sparkline panels (link queues, windows, player buffers, event
        rates) plus the event-loop profiler's top-N.  Reads an archived
        ``timeseries_<scenario>.json`` sidecar, or with ``--live`` runs
        a named scenario (see ``repro.core.scenarios``) and renders it
        — one-shot at the horizon, or as a refresh loop with
        ``--follow``.

    top [accounting.json] [--live SCENARIO] [--sort COL] [--kind K]
        Per-entity accounting tables (per VC, site, stream, link,
        trace): cells, bytes, drops, queue residency, bandwidth share.
        Reads an archived ``accounting_<scenario>.json`` sidecar, or
        with ``--live`` runs a named scenario with the ledger enabled.

    audit SCENARIO|merged.json [--faults PLAN] [--out-dir DIR]
        Run a named scenario with accounting enabled, then cross-check
        every live counter against the flow-conservation invariants.
        Prints violations (exit 1 when any) and optionally dumps the
        full sidecar set for the run.  Given a merged archive path
        instead of a scenario name, renders its embedded (merged)
        audit verdict.

    merge <archive...> -o merged.json [--name NAME]
        Deterministic, order-insensitive merge of N run archives
        (``obs_*.jsonl`` streams, ``metrics_*.json`` dumps with their
        sidecars, or previously merged archives) into one merged
        archive: counters sum, histograms bucket-add, gauges resolve
        by latest sim time with per-shard provenance, trace forests
        get disjoint ids, series tick-align, ledgers merge exactly or
        sketch-wise with propagated error bounds, and SLOs are
        re-judged over the merged registry.  Every renderer above
        accepts the result (see ``repro.obs.merge``).

``report``, ``trace``, ``dashboard``, and ``top`` all additionally
accept a streamed ``obs_<name>.jsonl`` sidecar (see
``repro.obs.sink``) in place of the legacy monolithic dumps — the file
is sniffed by its first-line ``meta`` record.  Live modes take
``--sample RATE`` (with ``--reservoir`` / ``--top-k``) to run under a
bounded-memory sampling policy.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.obs.accounting import (
    SORT_COLUMNS,
    load_accounting_file,
    render_top,
)
from repro.obs.dashboard import (
    load_timeseries_file,
    render_dashboard,
    render_profile,
)
from repro.obs.report import (
    find_timeseries_sidecar,
    find_trace_sidecar,
    load_metrics_file,
    load_trace_file,
    render_metrics_summary,
    render_overhead,
    render_slo_table,
    render_telemetry_health,
    render_traces,
)
from repro.obs.sink import is_obs_sidecar, load_obs_sidecar
from repro.obs.slo import SloMonitor


def _sampling_policy(args: argparse.Namespace):
    """Build the --sample preset policy for live modes, or None."""
    if getattr(args, "sample", None) is None:
        return None
    from repro.obs.sampling import scaled_policy
    return scaled_policy(args.sample, reservoir=args.reservoir,
                         top_k=args.top_k)


def _add_sample_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sample", type=float, default=None,
                        metavar="RATE",
                        help="bounded-memory live mode: keep RATE of "
                        "the traces, reservoir-bound spans/events, "
                        "top-K accounting")
    parser.add_argument("--reservoir", type=int, default=512,
                        help="reservoir size used with --sample")
    parser.add_argument("--top-k", type=int, default=32, dest="top_k",
                        help="accounts kept per kind with --sample")


def _report(args: argparse.Namespace) -> int:
    spans = events = None
    merged_shards = None
    if is_obs_sidecar(args.metrics):
        payload = load_obs_sidecar(args.metrics)
        meta = {k: v for k, v in payload["meta"].items()
                if k != "metrics"}
        meta.setdefault("name", payload["name"])
        metrics = payload["meta"].get("metrics", {})
        spans, events = payload["spans"], payload["events"]
    else:
        meta, metrics = load_metrics_file(args.metrics)
        if meta.get("merged"):
            # merged archives embed their traces and carry per-shard
            # provenance; render both inline
            spans = meta.get("spans") or []
            events = meta.get("events") or []
            merged_shards = meta.get("shards") or []
    title = meta.get("name") or args.metrics
    header = f"== scenario: {title} =="
    if "sim_time" in meta:
        header += f"  (sim_time {meta['sim_time']:.3f}s," \
                  f" {meta.get('events_run', '?')} events)"
    print(header)
    if merged_shards is not None:
        print(f"   merged from {len(merged_shards)} shard(s):")
        for s in merged_shards:
            line = (f"     - {s.get('name')}: "
                    f"sim_time {s.get('sim_time', 0.0):.3f}s, "
                    f"{s.get('events_run', 0)} events, "
                    f"{s.get('spans', 0)} spans")
            extras = []
            if s.get("wall_seconds") is not None:
                extras.append(f"wall {s['wall_seconds']:.2f}s")
            if s.get("peak_rss_kb") is not None:
                extras.append(f"peak rss {s['peak_rss_kb']} KiB")
            if s.get("obs_overhead_pct") is not None:
                extras.append(f"obs {s['obs_overhead_pct']:.1f}%")
            if extras:
                line += "  (" + ", ".join(extras) + ")"
            print(line)
    print()
    print(render_metrics_summary(metrics))
    if "telemetry" in meta:
        print()
        print(render_telemetry_health(meta["telemetry"]))
    if "overhead" in meta:
        print()
        print(render_overhead(meta["overhead"]))
    print()
    results = SloMonitor().evaluate(metrics)
    print(render_slo_table(results))
    if spans is not None:
        print()
        print(f"== traces: {args.metrics} ==")
        print(render_traces(spans, events, top=args.top))
    else:
        trace_path = args.trace or find_trace_sidecar(args.metrics)
        if trace_path:
            spans, events = load_trace_file(trace_path)
            print()
            print(f"== traces: {trace_path} ==")
            print(render_traces(spans, events, top=args.top))
        ts_path = find_timeseries_sidecar(args.metrics)
        if ts_path:
            print()
            print(f"(time-series sidecar: render with "
                  f"`python -m repro.obs dashboard {ts_path}`)")
    if spans:
        from repro.obs.critical import render_attribution
        print()
        print(render_attribution(spans, top=args.top))
    if args.strict and not all(r.ok for r in results):
        return 1
    return 0


def _trace(args: argparse.Namespace) -> int:
    if is_obs_sidecar(args.trace):
        payload = load_obs_sidecar(args.trace)
        spans, events = payload["spans"], payload["events"]
    else:
        spans, events = load_trace_file(args.trace)
    print(render_traces(spans, events, top=args.top))
    return 0


def _load_spans(path: str):
    """Spans from any archive shape the CLI accepts."""
    if is_obs_sidecar(path):
        return load_obs_sidecar(path)["spans"]
    if path.endswith(".jsonl"):
        spans, _ = load_trace_file(path)
        return spans
    from repro.obs.merge import is_merged_archive
    if is_merged_archive(path):
        import json
        with open(path) as fh:
            return json.load(fh).get("spans") or []
    trace_path = find_trace_sidecar(path)
    if trace_path is None:
        raise SystemExit(f"critical: no trace sidecar found next to "
                         f"{path} — pass the trace_*.jsonl directly")
    spans, _ = load_trace_file(trace_path)
    return spans


def _critical(args: argparse.Namespace) -> int:
    from repro.obs.critical import (
        group_by_trace,
        render_attribution,
        render_critical_path,
        select_traces,
    )

    spans = _load_spans(args.archive)
    if not spans:
        print("(no spans in this archive)")
        return 1
    trace_ids = select_traces(spans, trace_id=args.trace, tail=args.p99)
    print(render_attribution(spans, top=args.top))
    by_trace = group_by_trace(spans)
    for trace_id in trace_ids:
        print()
        print(render_critical_path(by_trace[trace_id]))
    if args.p99:
        print()
        print(f"({len(trace_ids)} tail exemplar(s) at/above the p99 "
              f"root duration, of {len(by_trace)} traces)")
    return 0


def _diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import (
        diff_runs,
        load_run,
        render_diff_report,
        write_diff,
    )

    payload = diff_runs(load_run(args.run_a), load_run(args.run_b),
                        top=args.top)
    print(render_diff_report(payload, top=args.top))
    if args.json:
        out_dir, base = os.path.split(os.path.abspath(args.json))
        name = base[len("diff_"):-len(".json")] \
            if base.startswith("diff_") and base.endswith(".json") \
            else os.path.splitext(base)[0]
        path = write_diff(payload, out_dir, name)
        print(f"\nwrote {path}")
    return 1 if payload["deterministic_delta_count"] else 0


def _slo(args: argparse.Namespace) -> int:
    _, metrics = load_metrics_file(args.metrics)
    results = SloMonitor().evaluate(metrics)
    print(render_slo_table(results))
    return 0 if all(r.ok for r in results) else 1


def _dashboard(args: argparse.Namespace) -> int:
    if args.timeseries is None and args.live is None:
        print("dashboard: give a timeseries_*.json path or --live "
              "<scenario>", file=sys.stderr)
        return 2
    if args.timeseries is not None:
        if is_obs_sidecar(args.timeseries):
            sidecar = load_obs_sidecar(args.timeseries)
            payload = sidecar["timeseries"]
            title = sidecar["name"] or args.timeseries
        else:
            payload = load_timeseries_file(args.timeseries)
            title = payload.get("name") or args.timeseries
        print(render_dashboard(
            payload, profile=payload.get("profile"), width=args.width,
            top=args.top, title=title))
        return 0
    return _live_dashboard(args)


def _live_dashboard(args: argparse.Namespace) -> int:
    # imported lazily: repro.core pulls in the whole stack, which the
    # archived-file paths of this CLI don't need
    from repro.core.scenarios import build

    run = build(args.live, profile=not args.no_profile,
                telemetry_interval=args.interval,
                sampling=_sampling_policy(args),
                faults=args.faults, fault_seed=args.fault_seed)
    mits, sim = run.mits, run.mits.sim
    if run.injector is not None:
        plan = run.injector.plan
        print(f"(fault plan {plan.name!r} armed, seed {plan.seed})",
              flush=True)
    if args.follow:
        while sim.now < run.horizon and sim.pending():
            sim.run(until=min(sim.now + args.slice, run.horizon))
            frame = render_dashboard(
                mits.sampler, profile=mits.profiler.snapshot(args.top),
                width=args.width, top=args.top,
                title=f"{run.name} (live, t={sim.now:.1f}s)")
            print("\x1b[2J\x1b[H" + frame, flush=True)
    else:
        run.run_to_horizon()
    mits.sampler.sample()
    print(render_dashboard(
        mits.sampler, profile=mits.profiler.snapshot(args.top),
        width=args.width, top=args.top,
        title=f"{run.name} @ t={sim.now:.1f}s"))
    print()
    print(render_telemetry_health(_health(mits)))
    return 0


def _health(mits) -> dict:
    from repro.obs.export import telemetry_health
    return telemetry_health(mits)


def _top(args: argparse.Namespace) -> int:
    if args.accounting is None and args.live is None:
        print("top: give an accounting_*.json path or --live <scenario>",
              file=sys.stderr)
        return 2
    if args.accounting is not None:
        if is_obs_sidecar(args.accounting):
            sidecar = load_obs_sidecar(args.accounting)
            payload = sidecar["accounting"]
            if payload is None:
                print("top: this obs stream has no ledger checkpoints "
                      "(run with accounting enabled)", file=sys.stderr)
                return 2
            title = sidecar["name"] or args.accounting
        else:
            payload = load_accounting_file(args.accounting)
            title = payload.get("name") or args.accounting
        print(render_top(payload, kind=args.kind, sort=args.sort,
                         limit=args.limit, title=title))
        return 0
    # imported lazily: repro.core pulls in the whole stack, which the
    # archived-file path of this CLI doesn't need
    from repro.core.scenarios import build

    run = build(args.live, accounting=True,
                sampling=_sampling_policy(args),
                faults=args.faults, fault_seed=args.fault_seed)
    run.run_to_horizon()
    sim = run.mits.sim
    payload = sim.ledger.snapshot(sim_time=sim.now)
    print(render_top(payload, kind=args.kind, sort=args.sort,
                     limit=args.limit,
                     title=f"{run.name} @ t={sim.now:.1f}s"))
    return 0


def _audit(args: argparse.Namespace) -> int:
    if os.path.isfile(args.scenario):
        return _audit_archive(args.scenario)

    from repro.core.scenarios import build
    from repro.obs.audit import ConservationAuditor

    run = build(args.scenario, accounting=True,
                faults=args.faults, fault_seed=args.fault_seed)
    run.run_to_horizon()
    auditor = ConservationAuditor(run.mits)
    violations = auditor.check()
    print(f"== audit: {run.name} @ t={run.mits.sim.now:.1f}s ==")
    print(f"  {auditor.checks} invariant checks, "
          f"{len(violations)} violations")
    for v in violations:
        print(f"  VIOLATION {v}")
    if args.out_dir:
        from repro.obs.export import dump_observability
        for path in dump_observability(run.mits, f"audit_{args.scenario}",
                                       args.out_dir):
            print(f"  wrote {path}")
    return 1 if violations else 0


def _audit_archive(path: str) -> int:
    """Render the audit verdict embedded in an archive (merged fleet
    archives and monolithic metrics dumps alike)."""
    import json

    if is_obs_sidecar(path):
        payload = load_obs_sidecar(path)
        audit = payload["meta"].get("audit")
        name = payload["name"] or path
        sim_time = payload["meta"].get("sim_time", 0.0)
    else:
        with open(path) as fh:
            payload = json.load(fh)
        audit = payload.get("audit")
        name = payload.get("name") or path
        sim_time = payload.get("sim_time", 0.0)
    if audit is None:
        print(f"audit: {path} carries no audit block (run the "
              f"scenario with accounting enabled)", file=sys.stderr)
        return 2
    violations = audit.get("violations", [])
    scope = "merged " if payload.get("merged") else ""
    print(f"== {scope}audit: {name} @ t={sim_time:.1f}s ==")
    print(f"  {audit.get('checks', 0)} invariant checks, "
          f"{len(violations)} violations")
    for v in violations:
        print(f"  VIOLATION {v}")
    return 1 if violations else 0


def _merge(args: argparse.Namespace) -> int:
    from repro.obs.merge import load_shard, merge_archives, write_merged

    shards = [load_shard(path) for path in args.archives]
    merged = merge_archives(shards, name=args.name)
    path = write_merged(merged, args.output)
    prov = merged.get("provenance", {})
    print(f"merged {len(shards)} shard(s) -> {path}")
    print(f"  sim_time {merged['sim_time']:.3f}s, "
          f"{merged['events_run']} events, "
          f"{len(merged.get('spans') or [])} spans, "
          f"{len(merged.get('events') or [])} flight events")
    if prov.get("trace_id_remaps") or prov.get("span_id_remaps"):
        print(f"  remapped {prov.get('trace_id_remaps', 0)} colliding "
              f"trace id(s), {prov.get('span_id_remaps', 0)} span id(s)")
    slo = merged.get("slo") or {}
    audit = merged.get("audit")
    verdict = f"  slo verdict: {slo.get('verdict', '?')}"
    if audit is not None:
        verdict += (f"; audit: {audit.get('checks', 0)} checks, "
                    f"{len(audit.get('violations', []))} violations")
    print(verdict)
    if args.strict and (not slo.get("pass", True)
                        or (audit is not None and not audit.get("ok"))):
        return 1
    return 0


def _profile_cmd(args: argparse.Namespace) -> int:
    """Render the profile block embedded in a metrics/timeseries dump."""
    meta, _ = load_metrics_file(args.metrics)
    profile = meta.get("profile")
    if not profile:
        print("(no profile section in this dump — rerun the scenario "
              "with profiling enabled)")
        return 1
    print(render_profile(profile, top=args.top))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render MITS observability dumps.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="metrics + SLOs + traces")
    p_report.add_argument("metrics", help="metrics_<scenario>.json")
    p_report.add_argument("--trace", help="trace_<scenario>.jsonl "
                          "(auto-discovered when omitted)")
    p_report.add_argument("--top", type=int, default=10,
                          help="slow spans to list")
    p_report.add_argument("--strict", action="store_true",
                          help="exit 1 on SLO violations")
    p_report.set_defaults(func=_report)

    p_trace = sub.add_parser("trace", help="span waterfalls only")
    p_trace.add_argument("trace", help="trace_<scenario>.jsonl")
    p_trace.add_argument("--top", type=int, default=10)
    p_trace.set_defaults(func=_trace)

    p_crit = sub.add_parser(
        "critical", help="critical-path analysis + attribution")
    p_crit.add_argument("archive", help="trace_*.jsonl, obs_*.jsonl, "
                        "or metrics_*.json (sidecar auto-discovered)")
    p_crit.add_argument("--trace", type=int, default=None, metavar="ID",
                        help="analyse one trace id")
    p_crit.add_argument("--p99", action="store_true",
                        help="analyse every tail exemplar (root "
                        "duration at/above the p99)")
    p_crit.add_argument("--top", type=int, default=10,
                        help="attribution rows per table")
    p_crit.set_defaults(func=_critical)

    p_diff = sub.add_parser(
        "diff", help="differential comparison of two archived runs")
    p_diff.add_argument("run_a", help="baseline archive (metrics_*.json"
                        ", obs_*.jsonl, or BENCH_*.json)")
    p_diff.add_argument("run_b", help="candidate archive")
    p_diff.add_argument("--top", type=int, default=10,
                        help="rows per section")
    p_diff.add_argument("--json", metavar="PATH", default=None,
                        help="also write the machine-readable diff "
                        "payload here")
    p_diff.set_defaults(func=_diff)

    p_slo = sub.add_parser("slo", help="SLO verdicts only")
    p_slo.add_argument("metrics", help="metrics_<scenario>.json")
    p_slo.set_defaults(func=_slo)

    p_dash = sub.add_parser(
        "dashboard", help="sparkline panels + profiler top-N")
    p_dash.add_argument("timeseries", nargs="?",
                        help="timeseries_<scenario>.json (archived mode)")
    p_dash.add_argument("--live", metavar="SCENARIO",
                        help="run a named scenario and render it "
                        "(see repro.core.scenarios)")
    p_dash.add_argument("--follow", action="store_true",
                        help="redraw every --slice simulated seconds "
                        "while the live scenario runs")
    p_dash.add_argument("--slice", type=float, default=2.0,
                        help="simulated seconds per --follow frame")
    p_dash.add_argument("--interval", type=float, default=0.25,
                        help="live sampling interval (simulated s)")
    p_dash.add_argument("--width", type=int, default=60,
                        help="sparkline width in characters")
    p_dash.add_argument("--top", type=int, default=10,
                        help="profiler hotspots to list")
    p_dash.add_argument("--no-profile", action="store_true",
                        help="skip the event-loop profiler in live mode")
    p_dash.add_argument("--faults", metavar="PLAN",
                        help="arm a named fault plan on the live "
                        "scenario (see repro.faults.PLANS)")
    p_dash.add_argument("--fault-seed", type=int, default=None,
                        help="override the fault plan's seed")
    _add_sample_flags(p_dash)
    p_dash.set_defaults(func=_dashboard)

    p_top = sub.add_parser(
        "top", help="per-entity accounting tables (VCs, sites, streams)")
    p_top.add_argument("accounting", nargs="?",
                       help="accounting_<scenario>.json (archived mode)")
    p_top.add_argument("--live", metavar="SCENARIO",
                       help="run a named scenario with the ledger "
                       "enabled and render its attribution")
    p_top.add_argument("--sort", choices=SORT_COLUMNS, default="bytes",
                       help="column to sort by (default: bytes)")
    p_top.add_argument("--kind", default=None,
                       help="show one entity kind only "
                       "(vc/site/stream/link/trace)")
    p_top.add_argument("--limit", type=int, default=20,
                       help="rows per table")
    p_top.add_argument("--faults", metavar="PLAN",
                       help="arm a named fault plan on the live scenario")
    p_top.add_argument("--fault-seed", type=int, default=None)
    _add_sample_flags(p_top)
    p_top.set_defaults(func=_top)

    p_audit = sub.add_parser(
        "audit", help="run a scenario and check conservation invariants")
    p_audit.add_argument("scenario",
                         help="scenario name (see repro.core.scenarios) "
                         "or an archive path whose embedded audit "
                         "verdict should be rendered")
    p_audit.add_argument("--faults", metavar="PLAN",
                         help="arm a named fault plan before auditing")
    p_audit.add_argument("--fault-seed", type=int, default=None)
    p_audit.add_argument("--out-dir", default=None,
                         help="also dump the full sidecar set here")
    p_audit.set_defaults(func=_audit)

    p_merge = sub.add_parser(
        "merge", help="merge N run archives into one merged archive")
    p_merge.add_argument("archives", nargs="+",
                         help="obs_*.jsonl / metrics_*.json / merged "
                         "archives to fold together")
    p_merge.add_argument("-o", "--output", required=True,
                         help="path for the merged archive")
    p_merge.add_argument("--name", default="merged",
                         help="name recorded in the merged archive")
    p_merge.add_argument("--strict", action="store_true",
                         help="exit 1 when the merged SLO verdict "
                         "fails or the merged audit has violations")
    p_merge.set_defaults(func=_merge)

    p_prof = sub.add_parser(
        "profile", help="profiler top-N from an archived dump")
    p_prof.add_argument("metrics", help="metrics_<scenario>.json with "
                        "an embedded profile section")
    p_prof.add_argument("--top", type=int, default=10)
    p_prof.set_defaults(func=_profile_cmd)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
