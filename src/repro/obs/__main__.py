"""``python -m repro.obs`` — render metrics/trace dumps and SLO verdicts.

Subcommands::

    report <metrics.json> [--trace trace.jsonl] [--top N] [--strict]
        Metrics summary + SLO table + span waterfalls.  The trace
        sidecar is auto-discovered next to ``metrics_<name>.json``
        when not given.  ``--strict`` exits 1 on SLO violations.

    trace <trace.jsonl> [--top N]
        Span waterfalls / slow-span table only.

    slo <metrics.json>
        SLO table only; exits 1 on violations.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.report import (
    find_trace_sidecar,
    load_metrics_file,
    load_trace_file,
    render_metrics_summary,
    render_slo_table,
    render_traces,
)
from repro.obs.slo import SloMonitor


def _report(args: argparse.Namespace) -> int:
    meta, metrics = load_metrics_file(args.metrics)
    title = meta.get("name") or args.metrics
    header = f"== scenario: {title} =="
    if "sim_time" in meta:
        header += f"  (sim_time {meta['sim_time']:.3f}s," \
                  f" {meta.get('events_run', '?')} events)"
    print(header)
    print()
    print(render_metrics_summary(metrics))
    print()
    results = SloMonitor().evaluate(metrics)
    print(render_slo_table(results))
    trace_path = args.trace or find_trace_sidecar(args.metrics)
    if trace_path:
        spans, events = load_trace_file(trace_path)
        print()
        print(f"== traces: {trace_path} ==")
        print(render_traces(spans, events, top=args.top))
    if args.strict and not all(r.ok for r in results):
        return 1
    return 0


def _trace(args: argparse.Namespace) -> int:
    spans, events = load_trace_file(args.trace)
    print(render_traces(spans, events, top=args.top))
    return 0


def _slo(args: argparse.Namespace) -> int:
    _, metrics = load_metrics_file(args.metrics)
    results = SloMonitor().evaluate(metrics)
    print(render_slo_table(results))
    return 0 if all(r.ok for r in results) else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render MITS observability dumps.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="metrics + SLOs + traces")
    p_report.add_argument("metrics", help="metrics_<scenario>.json")
    p_report.add_argument("--trace", help="trace_<scenario>.jsonl "
                          "(auto-discovered when omitted)")
    p_report.add_argument("--top", type=int, default=10,
                          help="slow spans to list")
    p_report.add_argument("--strict", action="store_true",
                          help="exit 1 on SLO violations")
    p_report.set_defaults(func=_report)

    p_trace = sub.add_parser("trace", help="span waterfalls only")
    p_trace.add_argument("trace", help="trace_<scenario>.jsonl")
    p_trace.add_argument("--top", type=int, default=10)
    p_trace.set_defaults(func=_trace)

    p_slo = sub.add_parser("slo", help="SLO verdicts only")
    p_slo.add_argument("metrics", help="metrics_<scenario>.json")
    p_slo.set_defaults(func=_slo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
