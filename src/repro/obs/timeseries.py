"""Time-series telemetry: periodic snapshots of every live instrument.

Counters, gauges, and histograms answer "how much, in total, by the
end of the run".  The thesis's prototype was judged by how it behaved
*over a session* — link utilisation during classroom streaming, player
buffer fill across pre-roll, MHEG event rates while links fire — which
needs the missing time axis.  A :class:`TelemetrySampler` self-schedules
on the :class:`~repro.atm.simulator.Simulator` at a configurable
simulated-time interval and snapshots every instrument registered in
the deployment's :class:`~repro.obs.metrics.MetricsRegistry` into one
bounded ring-buffered :class:`Series` per ``(component, name, labels)``
key.

Per instrument kind, a sample stores:

* **counter** — the cumulative value, plus a derived *rate* (units/s of
  simulated time) over the interval since the previous sample.  A
  counter that moved backwards (the registry was reset mid-run) clamps
  the rate to 0 instead of reporting a negative rate.
* **gauge** — the level at sample time.
* **histogram** — the cumulative observation count (with a derived
  observations/s rate) and the p99 at sample time, so latency
  trajectories are visible, not just end-of-run aggregates.

Scheduling is *dormancy-aware* so the sampler never keeps a simulation
alive on its own: a tick only re-arms while other events are pending,
and :meth:`Simulator.schedule` wakes a dormant sampler when new work
arrives.  ``Simulator.run()`` with no horizon therefore still drains.

Memory is bounded: each series is a fixed-capacity ring and evictions
are counted (surfaced by the ``repro.obs`` CLI so silently-truncated
telemetry is visible).

Under a :class:`~repro.obs.sampling.SamplingPolicy` the sampler can
additionally *decimate* (record only every ``telemetry_stride``-th
scheduled tick — explicit :meth:`TelemetrySampler.sample` calls always
record) and *coalesce* (a sample identical to the previous point slides
that point's timestamp forward instead of appending, so flat-lining
gauges cost O(1) ring slots).  A ``sink`` callable, when attached,
receives every recorded tick for the streaming sidecar.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["Series", "TelemetrySampler", "load_timeseries"]

LabelKey = Tuple[Tuple[str, str], ...]


def _sorted_window(values, window: Optional[int]) -> List[float]:
    vals = list(values) if window is None else list(values)[-window:]
    vals.sort()
    return vals


class Series:
    """One ring-buffered metric trajectory.

    ``times``/``values`` are parallel rings; counter and histogram
    series additionally carry a ``rates`` ring (derived units per
    simulated second) and histogram series a ``p99s`` ring.
    """

    __slots__ = ("component", "name", "labels", "kind",
                 "times", "values", "rates", "p99s", "evicted",
                 "coalesce", "coalesced", "_prev_value", "_prev_time")

    def __init__(self, component: str, name: str,
                 labels: Mapping[str, str], kind: str,
                 capacity: int, *, coalesce: bool = False) -> None:
        self.component = component
        self.name = name
        self.labels = dict(labels)
        self.kind = kind
        self.times: deque = deque(maxlen=capacity)
        self.values: deque = deque(maxlen=capacity)
        self.rates: Optional[deque] = \
            deque(maxlen=capacity) if kind in ("counter", "histogram") else None
        self.p99s: Optional[deque] = \
            deque(maxlen=capacity) if kind == "histogram" else None
        self.evicted = 0
        self.coalesce = coalesce
        self.coalesced = 0
        self._prev_value: Optional[float] = None
        self._prev_time: Optional[float] = None

    def __len__(self) -> int:
        return len(self.times)

    @property
    def key(self) -> Tuple[str, str, LabelKey]:
        return (self.component, self.name,
                tuple(sorted(self.labels.items())))

    def record(self, time: float, value: float,
               p99: Optional[float] = None) -> None:
        """Append one sample, deriving the rate from the previous one."""
        if (self.coalesce and self.times
                and value == self._prev_value
                and (self.rates is None or self.rates[-1] == 0.0)
                and (self.p99s is None
                     or self.p99s[-1] == (0.0 if p99 is None else p99))):
            # identical to the standing point: slide its timestamp
            # forward instead of burning a ring slot (the derived rate
            # of an unchanged cumulative value is 0, matching the one
            # already stored)
            self.times[-1] = time
            self.coalesced += 1
            self._prev_time = time
            return
        if len(self.times) == self.times.maxlen:
            self.evicted += 1
        self.times.append(time)
        self.values.append(value)
        if self.rates is not None:
            prev_v, prev_t = self._prev_value, self._prev_time
            if prev_v is None or prev_t is None or time <= prev_t:
                rate = 0.0
            else:
                # a cumulative value that moved backwards means the
                # registry was reset mid-run: clamp, never negative
                rate = max(0.0, (value - prev_v) / (time - prev_t))
            self.rates.append(rate)
        if self.p99s is not None:
            self.p99s.append(0.0 if p99 is None else p99)
        self._prev_value = value
        self._prev_time = time

    def rollup(self, window: Optional[int] = None,
               channel: str = "values") -> Dict[str, Any]:
        """min/max/mean/p99 over the last *window* samples (all when
        None) of one channel (``values``/``rates``/``p99s``)."""
        ring = getattr(self, channel, None)
        if ring is None:
            raise ValueError(
                f"{self.kind} series has no {channel!r} channel")
        vals = _sorted_window(ring, window)
        if not vals:
            return {"count": 0, "min": None, "max": None,
                    "mean": None, "p99": None}
        idx = min(len(vals) - 1, int(0.99 * (len(vals) - 1) + 0.5))
        return {
            "count": len(vals),
            "min": vals[0],
            "max": vals[-1],
            "mean": sum(vals) / len(vals),
            "p99": vals[idx],
        }

    @classmethod
    def from_dict(cls, entry: Mapping[str, Any]) -> "Series":
        """Rebuild one series from its :meth:`to_dict` form (rings are
        restored verbatim — rates are not re-derived)."""
        series = cls(entry["component"], entry["name"],
                     entry.get("labels", {}),
                     entry.get("kind", "gauge"),
                     capacity=max(2, len(entry.get("times", []))))
        times = entry.get("times", [])
        values = entry.get("values", [])
        rates = entry.get("rates")
        p99s = entry.get("p99s")
        for i, (t, v) in enumerate(zip(times, values)):
            series.times.append(t)
            series.values.append(v)
            if series.rates is not None and rates is not None:
                series.rates.append(rates[i] if i < len(rates) else 0.0)
            if series.p99s is not None and p99s is not None:
                series.p99s.append(p99s[i] if i < len(p99s) else 0.0)
        series.evicted = entry.get("evicted", 0)
        return series

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "component": self.component,
            "name": self.name,
            "labels": self.labels,
            "kind": self.kind,
            "evicted": self.evicted,
            "times": list(self.times),
            "values": list(self.values),
            "rollup": self.rollup(),
        }
        if self.coalesce:
            out["coalesced"] = self.coalesced
        if self.rates is not None:
            out["rates"] = list(self.rates)
            out["rate_rollup"] = self.rollup(channel="rates")
        if self.p99s is not None:
            out["p99s"] = list(self.p99s)
        return out


class TelemetrySampler:
    """Samples a :class:`MetricsRegistry` on the simulated clock.

    One sampler serves one simulator; :meth:`start` attaches it so
    :meth:`Simulator.schedule` can wake it from dormancy.  ``interval``
    is simulated seconds between snapshots, ``capacity`` the per-series
    ring size.
    """

    def __init__(self, sim, *, interval: float = 0.25,
                 capacity: int = 512,
                 registry=None, policy=None, meter=None) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive "
                             f"(got {interval})")
        if capacity < 2:
            raise ValueError("series capacity must be at least 2")
        self.sim = sim
        self.registry = registry if registry is not None else sim.metrics
        self.interval = interval
        self.capacity = capacity
        self.samples = 0
        self.started = False
        self._series: Dict[Tuple[str, str, LabelKey], Series] = {}
        self._dormant = False
        self._tick_event = None
        self._stride = 1 if policy is None else policy.telemetry_stride
        self._coalesce = (False if policy is None
                          else policy.telemetry_coalesce)
        self._ticks = 0
        #: receives ``(now, rows)`` per recorded tick (streaming sidecar)
        self.sink: Optional[Any] = None
        #: OverheadMeter charged per sample, when attached
        self.meter = meter
        #: callables invoked with the sample time after each sample —
        #: the watchdog's evaluation hook (see obs/watchdog)
        self._listeners: List[Any] = []

    def add_listener(self, fn) -> None:
        """Call ``fn(now)`` after every sample (watchdog hook)."""
        self._listeners.append(fn)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Take a first sample now and self-schedule on the simulator."""
        if self.started:
            return
        self.started = True
        self.sim._sampler = self
        self.sample()
        self._arm()

    def stop(self) -> None:
        """Detach from the simulator; series are kept for export."""
        if not self.started:
            return
        self.started = False
        if self.sim._sampler is self:
            self.sim._sampler = None
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        self._dormant = False

    @property
    def dormant(self) -> bool:
        """True while no tick is scheduled (idle simulator)."""
        return self._dormant

    def _arm(self) -> None:
        self._dormant = False
        self._tick_event = self.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        self._tick_event = None
        self._ticks += 1
        if self._ticks % self._stride == 0:
            self.sample()
        # re-arm only while the deployment still has work queued;
        # otherwise go dormant so `run()` with no horizon still drains.
        # Simulator.schedule() wakes us when new work arrives.
        if self.sim.pending() > 0:
            self._arm()
        else:
            self._dormant = True

    def wake(self) -> None:
        """Called by :meth:`Simulator.schedule` when work arrives while
        the sampler is dormant."""
        if self.started and self._dormant:
            self._arm()

    # -- sampling ----------------------------------------------------------

    def sample(self) -> None:
        """Snapshot every registered instrument at the current sim time."""
        meter = self.meter
        t0 = meter.now() if meter is not None else 0.0
        now = self.sim.now
        self.samples += 1
        sink = self.sink
        rows: Optional[List[List[Any]]] = [] if sink is not None else None
        for (component, name, labels), inst in \
                self.registry._instruments.items():
            kind = getattr(inst, "kind", None)
            if kind is None:
                continue
            key = (component, name, labels)
            series = self._series.get(key)
            if series is None:
                series = Series(component, name, dict(labels), kind,
                                self.capacity, coalesce=self._coalesce)
                self._series[key] = series
            elif series.times and series.times[-1] == now:
                continue  # snapshot() flush at an existing tick time
            if kind == "counter":
                series.record(now, inst.value)
            elif kind == "gauge":
                series.record(now, inst.value)
            else:  # histogram (empty histograms report p99 = 0.0)
                series.record(now, inst.count, p99=inst.quantile(0.99))
            if rows is not None:
                rows.append([
                    component, name, series.labels, kind,
                    series.values[-1],
                    series.rates[-1] if series.rates is not None else None,
                    series.p99s[-1] if series.p99s is not None else None,
                ])
        if sink is not None:
            sink(now, rows)
        if meter is not None:
            meter.charge("sampler", t0)
        for fn in list(self._listeners):
            fn(now)

    # -- access / export ---------------------------------------------------

    def series(self, component: Optional[str] = None,
               name: Optional[str] = None) -> List[Series]:
        """All series matching the given component/name filters."""
        return [s for s in self._series.values()
                if (component is None or s.component == component)
                and (name is None or s.name == name)]

    def get(self, component: str, name: str,
            **labels: Any) -> Optional[Series]:
        key = (component, name,
               tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self._series.get(key)

    @property
    def evictions(self) -> int:
        """Total ring evictions across every series."""
        return sum(s.evicted for s in self._series.values())

    @property
    def coalesced(self) -> int:
        """Total samples collapsed into standing points across series."""
        return sum(s.coalesced for s in self._series.values())

    def peak(self, component: str, name: str) -> Optional[float]:
        """Largest sampled value across all series of one metric."""
        peaks = [max(s.values) for s in self.series(component, name)
                 if s.values]
        return max(peaks) if peaks else None

    def snapshot(self) -> Dict[str, Any]:
        """JSON-stable dump (the ``timeseries_*.json`` sidecar body).

        Decimation/coalescing stats appear only when a policy enables
        them; the default shape is unchanged.
        """
        snap: Dict[str, Any] = {
            "enabled": True,
            "interval": self.interval,
            "capacity": self.capacity,
            "samples": self.samples,
            "evictions": self.evictions,
            "series": [s.to_dict() for s in sorted(
                self._series.values(), key=lambda s: s.key)],
        }
        if self._stride != 1 or self._coalesce:
            snap["stride"] = self._stride
            snap["coalesced"] = self.coalesced
        return snap


def load_timeseries(payload: Mapping[str, Any]) -> List[Series]:
    """Rebuild :class:`Series` objects from a snapshot/sidecar dict, so
    the dashboard renders archived runs exactly like live ones."""
    return [Series.from_dict(entry) for entry in
            payload.get("series", [])]
