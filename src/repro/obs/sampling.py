"""Sampling policy: bounded-memory observability for at-scale runs.

Every collector in ``repro.obs`` was built keep-everything: the tracer
retains every finished span (up to a large ring), the flight recorder
a 4096-event ring, the sampler one ring per instrument, and the ledger
one account per entity.  That is the right default for the toy
scenarios, and it collapses exactly when the campus-scale runs begin —
thousands of sites mean millions of spans and one account per VC ever
opened.

A :class:`SamplingPolicy` is the single opt-in knob set describing how
each collector should shed load:

* **head-based trace sampling** — :func:`trace_sampled` is a pure,
  seeded function of the trace id, so the keep/drop decision is made
  once per trace ("at the head") and every span of the trace — across
  sites, fragmentation, and retransmission — inherits it.  Sampled
  trees therefore stay *connected*: either a whole request is kept or
  none of it is.
* **reservoir sampling** — :class:`Reservoir` (Algorithm R, seeded) is
  a fixed-size uniform sample over an unbounded stream.  The tracer
  can store finished spans in one, and the flight recorder can spill
  ring-evicted events into one, so "what happened early in the run"
  survives even after millions of events.
* **telemetry decimation + last-value coalescing** — the sampler can
  record only every *stride*-th tick, and/or collapse consecutive
  identical samples into one point whose timestamp slides forward.
* **top-K accounting** — the ledger keeps only the heaviest K accounts
  per entity kind (space-saving sketch, see ``obs/accounting``).

The default policy keeps everything; every collector treats it as
"behave exactly as before".  Determinism contract: the policy carries
one seed, every sampling decision derives from it and from simulated
quantities only, so same seed + same policy ⇒ identical decisions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "DEFAULT_POLICY",
    "Reservoir",
    "SamplingPolicy",
    "scaled_policy",
    "trace_sampled",
]

_MASK64 = (1 << 64) - 1


def trace_sampled(trace_id: int, rate: float, seed: int = 0) -> bool:
    """Head-based sampling decision for one trace, as a pure function.

    Hashes ``(trace_id, seed)`` (splitmix64-style finalizer) onto
    [0, 1) and keeps the trace when the hash lands under *rate*.  No
    RNG state is consumed, so the decision is identical no matter how
    many times — or in what order — it is asked, which is what lets
    children on other sites inherit it by carrying only the trace id.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    h = (trace_id * 0x9E3779B97F4A7C15 + seed * 0xBF58476D1CE4E5B9
         + 0x94D049BB133111EB) & _MASK64
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & _MASK64
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & _MASK64
    h ^= h >> 31
    return (h >> 11) / float(1 << 53) < rate


class Reservoir:
    """Fixed-size uniform sample over a stream (Algorithm R, seeded).

    ``offer()`` is O(1); once full, each new item replaces a random
    kept item with probability ``capacity / offered``.  ``evicted``
    counts items not retained (offered minus kept), which is what the
    telemetry-health block reports as truncation.
    """

    __slots__ = ("capacity", "offered", "_items", "_rng")

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be at least 1")
        self.capacity = capacity
        self.offered = 0
        self._items: List[Any] = []
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def evicted(self) -> int:
        return self.offered - len(self._items)

    def offer(self, item: Any) -> bool:
        """Offer one item; returns True when it was retained."""
        self.offered += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return True
        slot = self._rng.randrange(self.offered)
        if slot < self.capacity:
            self._items[slot] = item
            return True
        return False

    def items(self) -> List[Any]:
        """The kept sample, in slot order (not chronological)."""
        return list(self._items)

    def clear(self) -> None:
        self.offered = 0
        self._items.clear()


@dataclass(frozen=True)
class SamplingPolicy:
    """How each obs collector sheds load.  Defaults keep everything."""

    #: fraction of traces kept (head-based, per trace id); 1.0 = all
    trace_sample_rate: float = 1.0
    #: store finished spans in a reservoir of this size (None = the
    #: tracer's newest-wins ring, today's behaviour)
    span_reservoir: Optional[int] = None
    #: spill flight-recorder ring evictions into a reservoir of this
    #: size (None = evicted events are simply gone, today's behaviour)
    event_reservoir: Optional[int] = None
    #: record only every Nth telemetry tick (1 = every tick)
    telemetry_stride: int = 1
    #: collapse consecutive identical telemetry samples into one point
    telemetry_coalesce: bool = False
    #: ledger keeps only the heaviest K accounts per kind (None = one
    #: account per entity, today's behaviour)
    ledger_top_k: Optional[int] = None
    #: every sampling decision derives from this seed
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be in [0, 1]")
        if self.telemetry_stride < 1:
            raise ValueError("telemetry_stride must be >= 1")
        for name in ("span_reservoir", "event_reservoir", "ledger_top_k"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 when set")

    @property
    def is_default(self) -> bool:
        """True when this policy changes no collector behaviour."""
        return self == DEFAULT_POLICY or (
            self.trace_sample_rate >= 1.0
            and self.span_reservoir is None
            and self.event_reservoir is None
            and self.telemetry_stride == 1
            and not self.telemetry_coalesce
            and self.ledger_top_k is None)

    def sampled(self, trace_id: int) -> bool:
        """Keep/drop decision for one trace under this policy."""
        return trace_sampled(trace_id, self.trace_sample_rate, self.seed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_sample_rate": self.trace_sample_rate,
            "span_reservoir": self.span_reservoir,
            "event_reservoir": self.event_reservoir,
            "telemetry_stride": self.telemetry_stride,
            "telemetry_coalesce": self.telemetry_coalesce,
            "ledger_top_k": self.ledger_top_k,
            "seed": self.seed,
        }


#: the keep-everything policy every collector defaults to
DEFAULT_POLICY = SamplingPolicy()


def scaled_policy(sample: float, *, reservoir: int = 512,
                  top_k: int = 32, seed: int = 0) -> SamplingPolicy:
    """The standard at-scale preset behind the CLI ``--sample`` flag:
    keep *sample* of the traces, reservoir-bound spans and spilled
    events, and track only the heaviest *top_k* accounts per kind."""
    return SamplingPolicy(trace_sample_rate=sample,
                          span_reservoir=reservoir,
                          event_reservoir=reservoir,
                          telemetry_coalesce=True,
                          ledger_top_k=top_k,
                          seed=seed)
