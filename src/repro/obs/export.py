"""Sidecar export: one call dumps a deployment's full telemetry.

The benchmark harness (``benchmarks/conftest.py``), the perf-regression
gate (``scripts/bench_gate.py``), and ad-hoc scripts all need the same
three artefacts per scenario, in the formats the ``repro.obs`` CLI
reads back:

* ``metrics_<name>.json`` — the registry report wrapped with run meta,
  SLO verdicts, and a telemetry-health block (flight-recorder drops,
  tracer drops, sampler ring evictions — so truncation is visible);
* ``trace_<name>.jsonl`` — spans then flight events, one JSON object
  per line, tagged ``"record": "span" | "event"``;
* ``timeseries_<name>.json`` — the sampler's ring-buffered series,
  for the dashboard.

When the deployment's ledger is enabled a fourth sidecar,
``accounting_<name>.json``, carries the per-entity attribution for
``python -m repro.obs top``; the metrics sidecar also embeds the
conservation-audit verdict so archived runs prove their counters
balanced.

This monolithic path is the *compatibility* exporter: it materialises
everything in memory and writes once at the end.  At-scale runs attach
a streaming :class:`~repro.obs.sink.ObsSink` instead (see
``MitsSystem(stream=...)``), which appends one JSONL record per span /
event / telemetry tick as the run progresses; ``dump_observability``
closes an attached sink so its ``fin`` summary lands too.  When the
deployment self-meters (``MitsSystem(meter=True)``, the default) the
metrics sidecar additionally carries a top-level ``overhead`` block —
what the obs stack itself cost, by component.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.obs.audit import ConservationAuditor

__all__ = ["critical_block", "dump_observability", "telemetry_health"]


def critical_block(spans) -> Optional[Dict[str, Any]]:
    """Compact critical-path attribution for a metrics/fin dump.

    Purely simulated-time quantities, so the block is deterministic
    (same seed ⇒ byte-identical) and safe to diff across runs — it is
    what lets ``repro.obs diff`` compare critical-path attribution
    from two metrics sidecars without re-reading their span files.
    """
    if not spans:
        return None
    from repro.obs.critical import attribution
    return attribution(spans)


def telemetry_health(mits) -> Dict[str, Any]:
    """Loss/truncation accounting for one deployment's telemetry.

    With an overflow reservoir installed on the flight recorder the
    block grows ``flight_overflow_kept`` — how many ring-evicted
    events the reservoir salvaged — so dropped-vs-salvaged is visible
    in every archive; the default (no-policy) shape is unchanged.
    """
    sim = mits.sim
    sampler = getattr(mits, "sampler", None)
    health = {
        "flight_recorded": sim.recorder.recorded,
        "flight_dropped": sim.recorder.dropped,
        "tracer_spans": len(sim.tracer.spans),
        "tracer_dropped": sim.tracer.dropped,
        "sampler_samples": sampler.samples if sampler is not None else 0,
        "sampler_evictions": sampler.evictions
        if sampler is not None else 0,
    }
    if sim.recorder._overflow is not None:
        health["flight_overflow_kept"] = len(sim.recorder._overflow)
    return health


def dump_observability(mits, name: str, out_dir: str,
                       *, profile: Optional[Dict[str, Any]] = None
                       ) -> List[str]:
    """Write the three sidecars for *mits* under *out_dir*.

    Returns the paths written (metrics, trace, timeseries — the last
    only when the deployment has a sampler).
    """
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    sim = mits.sim

    # an attached streaming sink gets its fin summary + final flush
    # first, so the sidecar set is complete even if a later write fails
    sink = getattr(mits, "sink", None)
    sink_flushed = sink is not None and not sink.closed
    if sink_flushed:
        sink.close()
        written.append(sink.path)

    metrics_report = sim.metrics.report()
    watchdog = getattr(mits, "watchdog", None)
    meter = getattr(mits, "meter", None)

    metrics_path = os.path.join(out_dir, f"metrics_{name}.json")
    audit_t0 = meter.now() if meter is not None else 0.0
    audit_report = ConservationAuditor(mits).report()
    if meter is not None:
        meter.charge("auditor", audit_t0)
    dump: Dict[str, Any] = {
        "name": name,
        "sim_time": sim.now,
        "events_run": sim.events_run,
        "metrics": metrics_report,
        "slo": mits.slos.summary(
            metrics_report,
            watchdog_alerts=watchdog.alerts
            if watchdog is not None else None),
        "audit": audit_report,
        "telemetry": telemetry_health(mits),
    }
    crit = critical_block([s.to_dict() for s in sim.tracer.spans])
    if crit is not None:
        dump["critical"] = crit
    if watchdog is not None:
        dump["watchdog"] = watchdog.snapshot()
    if profile is not None:
        dump["profile"] = profile
    if meter is not None:
        # wall-clock, so deliberately OUTSIDE the deterministic
        # telemetry block (and never in the JSONL stream)
        dump["overhead"] = meter.report()
    with open(metrics_path, "w") as fh:
        json.dump(dump, fh, indent=2, sort_keys=True)
    written.append(metrics_path)

    trace_path = os.path.join(out_dir, f"trace_{name}.jsonl")
    with open(trace_path, "w") as fh:
        for span in sim.tracer.spans:
            fh.write(json.dumps({"record": "span", **span.to_dict()},
                                sort_keys=True) + "\n")
        # reservoir-salvaged ring-evicted events first (they are the
        # oldest), then the live ring — otherwise the overflow sample
        # survives the run but silently misses the archive
        for event in sim.recorder.overflow:
            fh.write(json.dumps({"record": "event", **event.to_dict()},
                                sort_keys=True) + "\n")
        for event in sim.recorder.events:
            fh.write(json.dumps({"record": "event", **event.to_dict()},
                                sort_keys=True) + "\n")
    written.append(trace_path)

    sampler = getattr(mits, "sampler", None)
    if sampler is not None:
        if not sink_flushed:
            sampler.sample()  # flush a final point at `now`
        # (closing the sink above already flushed one — a second call
        # would inflate the samples counter past what the fin recorded)
        ts_path = os.path.join(out_dir, f"timeseries_{name}.json")
        with open(ts_path, "w") as fh:
            json.dump({"name": name, **sampler.snapshot()}, fh,
                      indent=2, sort_keys=True)
        written.append(ts_path)

    ledger = getattr(sim, "ledger", None)
    if ledger is not None and ledger.enabled:
        acct_path = os.path.join(out_dir, f"accounting_{name}.json")
        with open(acct_path, "w") as fh:
            json.dump({"name": name, "sim_time": sim.now,
                       **ledger.snapshot(sim_time=sim.now)}, fh,
                      indent=2, sort_keys=True)
        written.append(acct_path)
    return written
