"""Observability: metrics, time series, tracing, events, SLOs, profiling.

One :class:`MetricsRegistry` + :class:`Tracer` + :class:`FlightRecorder`
trio is owned by each :class:`~repro.atm.simulator.Simulator` and
shared by every component attached to it; a :class:`TelemetrySampler`
turns the registry's point-in-time instruments into bounded
time-series rings, and a :class:`LoopProfiler` attributes event-loop
wall time to callback qualnames.  ``MitsSystem.snapshot()`` and the
benchmark harness export all of it so measured trajectories are
comparable across PRs.  :class:`SloMonitor` turns a metrics report
into pass/fail verdicts, and ``python -m repro.obs`` renders dumps
into waterfalls, sparkline dashboards, and tables.

For at-scale runs, a :class:`SamplingPolicy` bounds every collector's
memory (head-based trace sampling, span/event reservoirs, telemetry
decimation/coalescing, top-K accounting), an :class:`ObsSink` streams
records to an ``obs_*.jsonl`` sidecar as the run progresses, and an
:class:`OverheadMeter` attributes what the obs stack itself cost.

Fleets of runs roll up through :mod:`repro.obs.merge`: deterministic,
order-insensitive merge operators over every store, producing one
merged archive every renderer accepts (``scripts/fleet.py`` drives
them across a multiprocessing pool).
"""

from repro.obs.accounting import (
    Account,
    Ledger,
    NULL_ACCOUNT,
    load_accounting_file,
    render_top,
)
from repro.obs.audit import ConservationAuditor, Violation
from repro.obs.events import SEVERITIES, FlightEvent, FlightRecorder
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    TIME_BUCKETS,
)
from repro.obs.merge import (
    is_merged_archive,
    load_shard,
    merge_archives,
    merged_canonical_form,
    split_shard,
    write_merged,
)
from repro.obs.meter import OverheadMeter
from repro.obs.profiler import CallsiteStats, LoopProfiler
from repro.obs.sampling import (
    DEFAULT_POLICY,
    Reservoir,
    SamplingPolicy,
    scaled_policy,
    trace_sampled,
)
from repro.obs.sink import ObsSink, is_obs_sidecar, load_obs_sidecar
from repro.obs.slo import DEFAULT_SLOS, Slo, SloMonitor, SloResult
from repro.obs.timeseries import Series, TelemetrySampler, load_timeseries
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    SpanRecord,
    TraceContext,
    Tracer,
)
from repro.obs.watchdog import DEFAULT_DETECTORS, Detector, Watchdog

__all__ = [
    "Account",
    "CallsiteStats",
    "ConservationAuditor",
    "Counter",
    "DEFAULT_DETECTORS",
    "DEFAULT_POLICY",
    "Detector",
    "Ledger",
    "NULL_ACCOUNT",
    "ObsSink",
    "OverheadMeter",
    "Reservoir",
    "SamplingPolicy",
    "Violation",
    "Watchdog",
    "is_merged_archive",
    "is_obs_sidecar",
    "load_accounting_file",
    "load_obs_sidecar",
    "load_shard",
    "merge_archives",
    "merged_canonical_form",
    "split_shard",
    "write_merged",
    "render_top",
    "scaled_policy",
    "trace_sampled",
    "LoopProfiler",
    "Series",
    "TelemetrySampler",
    "load_timeseries",
    "DEFAULT_SLOS",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "SEVERITIES",
    "Slo",
    "SloMonitor",
    "SloResult",
    "Span",
    "SpanRecord",
    "TIME_BUCKETS",
    "TraceContext",
    "Tracer",
]
