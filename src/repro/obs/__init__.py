"""Observability: the metrics registry and span tracer.

One :class:`MetricsRegistry` + one :class:`Tracer` pair is owned by
each :class:`~repro.atm.simulator.Simulator` and shared by every
component attached to it; ``MitsSystem.snapshot()`` and the benchmark
harness export their contents so measured trajectories are comparable
across PRs.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    TIME_BUCKETS,
)
from repro.obs.tracing import NULL_SPAN, Span, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "TIME_BUCKETS",
    "Tracer",
]
