"""Observability: metrics, time series, tracing, events, SLOs, profiling.

One :class:`MetricsRegistry` + :class:`Tracer` + :class:`FlightRecorder`
trio is owned by each :class:`~repro.atm.simulator.Simulator` and
shared by every component attached to it; a :class:`TelemetrySampler`
turns the registry's point-in-time instruments into bounded
time-series rings, and a :class:`LoopProfiler` attributes event-loop
wall time to callback qualnames.  ``MitsSystem.snapshot()`` and the
benchmark harness export all of it so measured trajectories are
comparable across PRs.  :class:`SloMonitor` turns a metrics report
into pass/fail verdicts, and ``python -m repro.obs`` renders dumps
into waterfalls, sparkline dashboards, and tables.
"""

from repro.obs.accounting import (
    Account,
    Ledger,
    NULL_ACCOUNT,
    load_accounting_file,
    render_top,
)
from repro.obs.audit import ConservationAuditor, Violation
from repro.obs.events import SEVERITIES, FlightEvent, FlightRecorder
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    TIME_BUCKETS,
)
from repro.obs.profiler import CallsiteStats, LoopProfiler
from repro.obs.slo import DEFAULT_SLOS, Slo, SloMonitor, SloResult
from repro.obs.timeseries import Series, TelemetrySampler, load_timeseries
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    SpanRecord,
    TraceContext,
    Tracer,
)
from repro.obs.watchdog import DEFAULT_DETECTORS, Detector, Watchdog

__all__ = [
    "Account",
    "CallsiteStats",
    "ConservationAuditor",
    "Counter",
    "DEFAULT_DETECTORS",
    "Detector",
    "Ledger",
    "NULL_ACCOUNT",
    "Violation",
    "Watchdog",
    "load_accounting_file",
    "render_top",
    "LoopProfiler",
    "Series",
    "TelemetrySampler",
    "load_timeseries",
    "DEFAULT_SLOS",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "SEVERITIES",
    "Slo",
    "SloMonitor",
    "SloResult",
    "Span",
    "SpanRecord",
    "TIME_BUCKETS",
    "TraceContext",
    "Tracer",
]
