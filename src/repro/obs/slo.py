"""Service-level objectives evaluated against a metrics report.

An :class:`Slo` is a declarative threshold on one statistic of one
metric — "connection RTT p99 stays under 250 ms", "link drop rate
stays under 1%" — the QoS-contract framing the thesis inherits from
its ATM service classes, applied to the whole teaching session.

Evaluation works on the plain-dict report produced by
:meth:`~repro.obs.metrics.MetricsRegistry.report` (not on live
instruments), so the same :class:`SloMonitor` judges a running
:class:`~repro.core.system.MitsSystem` snapshot and a
``metrics_*.json`` file a benchmark dumped last week.

An SLO whose metric recorded no samples is *skipped* rather than
failed: a scenario with no video player shouldn't fail the pre-roll
objective.  Skipped results count as passing but are flagged so the
CLI can render them distinctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["DEFAULT_SLOS", "DEGRADATION_METRICS", "Slo", "SloMonitor",
           "SloResult", "judge_report"]

#: statistics summed across instrument entries (counters / totals)
_SUM_STATS = ("value", "count", "sum")


@dataclass(frozen=True)
class Slo:
    """One declarative threshold.

    ``stat`` picks the field of the metric snapshot to judge: a
    histogram statistic (``p50``/``p99``/``mean``/``min``/``max``) is
    compared entry-by-entry and the *worst* instrument decides;
    ``value``/``count``/``sum`` are summed across entries.  With
    ``per`` set, the SLO is a ratio: summed numerator over the summed
    ``value`` of the ``(component, metric)`` denominator.
    """

    name: str
    component: str
    metric: str
    stat: str = "p99"
    threshold: float = 0.0
    op: str = "<="
    per: Optional[Tuple[str, str]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ValueError(f"unsupported SLO op {self.op!r}")


@dataclass
class SloResult:
    """Verdict for one SLO against one report."""

    slo: Slo
    observed: Optional[float]
    ok: bool
    skipped: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.slo.name,
            "component": self.slo.component,
            "metric": self.slo.metric,
            "stat": self.slo.stat,
            "op": self.slo.op,
            "threshold": self.slo.threshold,
            "observed": self.observed,
            "ok": self.ok,
            "skipped": self.skipped,
            "description": self.slo.description,
        }


#: default objectives for a MITS deployment, thresholds sized to the
#: thesis's interactive-response and video-QoS targets
DEFAULT_SLOS: Tuple[Slo, ...] = (
    Slo("rpc-rtt-p99", "connection", "rtt_seconds", stat="p99",
        threshold=0.25,
        description="transport round-trip p99 stays interactive"),
    Slo("frame-lateness-p99", "player", "frame_lateness_seconds",
        stat="p99", threshold=0.1,
        description="video frames arrive within 100 ms of deadline"),
    Slo("cell-drop-rate", "link", "drops_total", stat="value",
        threshold=0.01, per=("link", "cells_transmitted"),
        description="cells dropped per cell transmitted stays under 1%"),
    Slo("preroll-p99", "player", "startup_delay_seconds", stat="p99",
        threshold=2.0,
        description="playback starts within 2 s of the first frame"),
)

#: counters whose presence marks a run that *survived with
#: degradation*: the recovery machinery (retries, reconnects, playout
#: concealment, bitrate downgrades) had to fire to keep the session
#: alive.  A passing run with any of these non-zero is judged
#: "degraded", not "ok" — the distinction a chaos report cares about.
DEGRADATION_METRICS: Tuple[Tuple[str, str], ...] = (
    ("rpc", "retries"),
    ("connection", "reconnects"),
    ("player", "frames_concealed"),
    ("player", "degradations"),
    ("streaming", "degradations"),
)


def _entries(report: Mapping[str, Any], component: str,
             metric: str) -> List[Dict[str, Any]]:
    return list(report.get(component, {}).get(metric, []))


def _sum_values(entries: List[Dict[str, Any]], stat: str) -> Optional[float]:
    values = [e[stat] for e in entries if e.get(stat) is not None]
    if not values:
        return None
    return float(sum(values))


class SloMonitor:
    """Evaluates a set of SLOs against metrics reports."""

    def __init__(self, slos: Optional[Sequence[Slo]] = None) -> None:
        self.slos: Tuple[Slo, ...] = tuple(slos) if slos is not None \
            else DEFAULT_SLOS

    def evaluate(self, report: Mapping[str, Any]) -> List[SloResult]:
        """Judge every SLO against a ``MetricsRegistry.report()`` dict."""
        return [self._evaluate_one(slo, report) for slo in self.slos]

    def evaluate_registry(self, registry: Any) -> List[SloResult]:
        return self.evaluate(registry.report())

    def summary(self, report: Mapping[str, Any], *,
                watchdog_alerts: Optional[Sequence[Mapping[str, Any]]] = None
                ) -> Dict[str, Any]:
        """JSON-stable pass/fail summary for snapshots and dumps.

        ``verdict`` is three-valued: ``"failed"`` when an SLO is
        violated, ``"degraded"`` when all SLOs hold but recovery
        machinery fired (see :data:`DEGRADATION_METRICS`), ``"ok"``
        for a clean run.  Watchdog alerts (see
        :class:`~repro.obs.watchdog.Watchdog`) also demote an ``"ok"``
        run to ``"degraded"`` — an anomaly detector firing means the
        session was not clean, even if every SLO held.
        """
        results = self.evaluate(report)
        passed = all(r.ok for r in results)
        degradations = self.degradations(report)
        verdict = "failed" if not passed \
            else ("degraded" if degradations or watchdog_alerts else "ok")
        out = {
            "pass": passed,
            "verdict": verdict,
            "degradations": degradations,
            "results": [r.to_dict() for r in results],
        }
        if watchdog_alerts is not None:
            out["watchdog_alerts"] = len(watchdog_alerts)
        return out

    @staticmethod
    def degradations(report: Mapping[str, Any]) -> Dict[str, float]:
        """Non-zero recovery counters, keyed ``component.metric``."""
        out: Dict[str, float] = {}
        for component, metric in DEGRADATION_METRICS:
            total = _sum_values(_entries(report, component, metric),
                                "value")
            if total:
                out[f"{component}.{metric}"] = total
        return out

    def _evaluate_one(self, slo: Slo, report: Mapping[str, Any]) -> SloResult:
        observed = self._observe(slo, report)
        if observed is None:
            return SloResult(slo=slo, observed=None, ok=True, skipped=True)
        ok = observed <= slo.threshold if slo.op == "<=" \
            else observed >= slo.threshold
        return SloResult(slo=slo, observed=observed, ok=ok)

    def _observe(self, slo: Slo,
                 report: Mapping[str, Any]) -> Optional[float]:
        entries = _entries(report, slo.component, slo.metric)
        if not entries:
            return None
        if slo.per is not None:
            numerator = _sum_values(entries, slo.stat)
            denominator = _sum_values(
                _entries(report, slo.per[0], slo.per[1]), "value")
            if numerator is None or not denominator:
                return None
            return numerator / denominator
        if slo.stat in _SUM_STATS:
            return _sum_values(entries, slo.stat)
        # distribution statistic: judge by the worst instrument, and
        # ignore instruments that recorded nothing
        values = [
            e[slo.stat] for e in entries
            if e.get(slo.stat) is not None and e.get("count", 0) > 0
        ]
        if not values:
            return None
        return float(max(values) if slo.op == "<=" else min(values))


def judge_report(report: Mapping[str, Any], *,
                 watchdog_alerts: Optional[Sequence[Mapping[str, Any]]]
                 = None) -> Dict[str, Any]:
    """Judge the default SLO set over any metrics report.

    The merge path's entry point: shard SLO verdicts are never
    combined — a fleet is judged only over the merged registry.
    """
    return SloMonitor().summary(report, watchdog_alerts=watchdog_alerts)
