"""Anomaly watchdogs evaluated on the telemetry tick.

A conservation audit proves the counters are *consistent*; the
watchdog notices when a consistent system is nonetheless *wedged* — a
queue that holds cells but never transmits, a stream that went silent
mid-playout, a drop rate that keeps climbing, a playout clock frozen
past the skip grace.  Detectors are declarative
(:class:`Detector` rows naming a severity and a predicate) and run
from the :class:`~repro.obs.timeseries.TelemetrySampler` tick, so
they cost nothing between samples and stay dormant with the sampler.

Each new alert is recorded as a severity-tagged FlightRecorder event
(``component="watchdog"``) and kept in :attr:`Watchdog.alerts`, which
the SLO verdict folds in: a run with watchdog alerts is at best
*degraded*, never *ok*.  Alert thresholds are deliberately set above
anything the recovery machinery resolves on its own (the default
clock-stall limit exceeds the player's skip grace), so a clean run —
and a chaos run that recovered — stays quiet.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Detector", "Watchdog", "DEFAULT_DETECTORS"]

Firing = Tuple[str, Dict[str, Any]]  # (entity, alert attributes)


@dataclass(frozen=True)
class Detector:
    name: str
    severity: str
    description: str
    check: Callable[["Watchdog", float], List[Firing]]


def _stuck_queue(w: "Watchdog", now: float) -> List[Firing]:
    out: List[Firing] = []
    n = w.stuck_window
    for label, (link, hist) in w._link_state.items():
        if len(hist) <= n:
            continue
        window = list(hist)[-(n + 1):]
        queued = [s[0] for s in window]
        transmitted = [s[1] for s in window]
        if queued[0] > 0 and len(set(queued)) == 1 \
                and transmitted[-1] == transmitted[0]:
            out.append((label, {"queued": queued[-1],
                                "ticks": n}))
    return out


def _rising_drop_rate(w: "Watchdog", now: float) -> List[Firing]:
    out: List[Firing] = []
    n = w.drop_window
    for label, (link, hist) in w._link_state.items():
        if len(hist) <= n:
            continue
        drops = [s[2] for s in list(hist)[-(n + 1):]]
        if all(b > a for a, b in zip(drops, drops[1:])):
            out.append((label, {"drops": drops[-1] - drops[0],
                                "ticks": n}))
    return out


def _silent_stream(w: "Watchdog", now: float) -> List[Firing]:
    out: List[Firing] = []
    n = w.silent_window
    for name, (player, hist) in w._player_state.items():
        if player.finished or player._first_arrival is None:
            continue
        if len(hist) <= n:
            continue
        received = list(hist)[-(n + 1):]
        quiet = len(set(received)) == 1
        wedged = player._stall_started is not None or not player._buffer
        if quiet and wedged:
            out.append((name, {"frames_received": received[-1],
                               "ticks": n}))
    return out


def _clock_stall(w: "Watchdog", now: float) -> List[Firing]:
    out: List[Firing] = []
    for name, (player, _hist) in w._player_state.items():
        started = player._stall_started
        if started is not None and now - started > w.stall_limit:
            out.append((name, {"stalled_for": now - started,
                               "frame": player._next_frame}))
    return out


def _ledger_divergence(w: "Watchdog", now: float) -> List[Firing]:
    ledger = getattr(w.sim, "ledger", None)
    if ledger is None or not ledger.enabled:
        return []
    return [(f"{d['kind']}:{d['key']}",
             {"field": d["field"], "ledger": d["ledger"],
              "registry": d["registry"]})
            for d in ledger.reconcile(w.sim.metrics)]


DEFAULT_DETECTORS: Tuple[Detector, ...] = (
    Detector("stuck_queue", "error",
             "link holds cells but transmits nothing", _stuck_queue),
    Detector("silent_stream", "warning",
             "started stream with no arrivals and nothing to play",
             _silent_stream),
    Detector("rising_drop_rate", "warning",
             "link drop count climbing every sample", _rising_drop_rate),
    Detector("clock_stall", "error",
             "playout stalled beyond the skip grace", _clock_stall),
    Detector("ledger_divergence", "error",
             "accounting ledger disagrees with the metrics registry",
             _ledger_divergence),
)


class Watchdog:
    """Evaluates :data:`DEFAULT_DETECTORS` on each telemetry sample.

    An alert fires once per (detector, entity) episode: while the
    condition persists it stays active without re-alerting, and when
    it clears a later recurrence alerts again.
    """

    def __init__(self, sim, *, network: Optional[Any] = None,
                 detectors: Optional[Tuple[Detector, ...]] = None,
                 stuck_window: int = 8, silent_window: int = 12,
                 drop_window: int = 4, stall_limit: float = 3.0) -> None:
        self.sim = sim
        self.network = network
        self.detectors = tuple(detectors) if detectors is not None \
            else DEFAULT_DETECTORS
        self.stuck_window = stuck_window
        self.silent_window = silent_window
        self.drop_window = drop_window
        self.stall_limit = stall_limit
        self.alerts: List[Dict[str, Any]] = []
        self._active: set = set()
        self._last_tick: Optional[float] = None
        maxlen = max(stuck_window, silent_window, drop_window) + 1
        self._maxlen = maxlen
        #: label -> (link, deque of (queued, transmitted, drops))
        self._link_state: Dict[str, Tuple[Any, deque]] = {}
        #: player name -> (player, deque of frames_received)
        self._player_state: Dict[str, Tuple[Any, deque]] = {}

    def attach(self, sampler) -> "Watchdog":
        sampler.add_listener(self.tick)
        return self

    # -- per-tick evaluation ---------------------------------------------

    def tick(self, now: float) -> None:
        if now == self._last_tick:
            # snapshot()/export flush re-samples at the same instant;
            # feeding the histories twice would shrink every window
            return
        self._last_tick = now
        self._observe()
        for det in self.detectors:
            firing = det.check(self, now)
            firing_keys = set()
            for entity, attrs in firing:
                key = (det.name, entity)
                firing_keys.add(key)
                if key in self._active:
                    continue
                self._active.add(key)
                alert = {"time": now, "detector": det.name,
                         "severity": det.severity, "entity": entity}
                alert.update(attrs)
                self.alerts.append(alert)
                self.sim.recorder.record("watchdog", det.name,
                                         severity=det.severity,
                                         entity=entity, **attrs)
            for key in [k for k in self._active
                        if k[0] == det.name and k not in firing_keys]:
                self._active.discard(key)

    def _observe(self) -> None:
        if self.network is not None:
            seen = set()
            for link in self.network.links.values():
                if id(link) in seen:
                    continue
                seen.add(id(link))
                state = self._link_state.get(link._label)
                if state is None:
                    state = (link, deque(maxlen=self._maxlen))
                    self._link_state[link._label] = state
                s = link.stats
                state[1].append((link.queue_length, s.transmitted,
                                 s.dropped_overflow + s.dropped_errors
                                 + s.dropped_down))
        for player in self.sim.entities.get("player", []):
            state = self._player_state.get(player.name)
            if state is None:
                state = (player, deque(maxlen=self._maxlen))
                self._player_state[player.name] = state
            state[1].append(player.stats.frames_received)

    # -- export ----------------------------------------------------------

    @property
    def active(self) -> List[str]:
        return sorted(f"{d}:{e}" for d, e in self._active)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "enabled": True,
            "detectors": [{"name": d.name, "severity": d.severity,
                           "description": d.description}
                          for d in self.detectors],
            "alerts": list(self.alerts),
            "active": self.active,
        }
