"""Overhead self-metering: what does the obs stack itself cost?

Observability is only trustworthy at scale if it can answer for its
own overhead.  An :class:`OverheadMeter` is a tiny meta-registry that
the instrumented collectors charge wall time and bytes to — the tracer
per finished span, the telemetry sampler per tick, the ledger and
auditor per snapshot/check, the streaming sink per flush (with the
bytes it wrote).  The result is an attribution table::

    component   seconds   calls   bytes
    tracer       0.0021    1840       0
    sampler      0.0048     181       0
    sink         0.0013       9   91233

plus ``obs_overhead_pct`` — metered obs seconds as a fraction of the
wall clock elapsed since the meter started — which ``python -m
repro.obs report`` prints in its health block and
``scripts/bench_gate.py`` gates (the gate additionally measures the
end-to-end obs-on vs obs-off wall delta, which catches costs the meter
cannot see from inside, like cache pressure).

Metering is coarse-grained by design: only O(ticks + spans + flushes)
``perf_counter`` pairs, never per-cell work, so the meter's own cost
stays far below what it measures.  A disabled meter is ``None`` at
every call site — the hot paths pay one identity test.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict

__all__ = ["OverheadMeter"]


class _ComponentCost:
    __slots__ = ("seconds", "calls", "nbytes")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.calls = 0
        self.nbytes = 0


class OverheadMeter:
    """Attributes wall time and bytes to obs-stack components."""

    def __init__(self, *, clock: Callable[[], float] =
                 _time.perf_counter) -> None:
        self._clock = clock
        self._started = clock()
        self._costs: Dict[str, _ComponentCost] = {}

    def add(self, component: str, seconds: float, *,
            nbytes: int = 0, calls: int = 1) -> None:
        """Charge *seconds* (and optionally bytes) to *component*."""
        cost = self._costs.get(component)
        if cost is None:
            cost = self._costs[component] = _ComponentCost()
        cost.seconds += seconds
        cost.calls += calls
        cost.nbytes += nbytes

    def charge(self, component: str, t0: float, *, nbytes: int = 0) -> None:
        """Charge the time elapsed since *t0* (a ``clock()`` reading)."""
        self.add(component, self._clock() - t0, nbytes=nbytes)

    def now(self) -> float:
        """A clock reading to later hand to :meth:`charge`."""
        return self._clock()

    @property
    def obs_seconds(self) -> float:
        """Total metered obs wall time across all components."""
        return sum(c.seconds for c in self._costs.values())

    @property
    def obs_bytes(self) -> int:
        """Total bytes written by obs sinks."""
        return sum(c.nbytes for c in self._costs.values())

    def wall_seconds(self) -> float:
        """Wall clock elapsed since the meter was created."""
        return self._clock() - self._started

    def overhead_pct(self) -> float:
        """Metered obs seconds as a percentage of elapsed wall time."""
        wall = self.wall_seconds()
        return (self.obs_seconds / wall * 100.0) if wall > 0 else 0.0

    def report(self) -> Dict[str, Any]:
        """JSON-stable attribution table plus the headline percentage."""
        return {
            "obs_seconds": self.obs_seconds,
            "obs_bytes": self.obs_bytes,
            "wall_seconds": self.wall_seconds(),
            "obs_overhead_pct": self.overhead_pct(),
            "components": {
                name: {"seconds": c.seconds, "calls": c.calls,
                       "bytes": c.nbytes}
                for name, c in sorted(self._costs.items())
            },
        }
