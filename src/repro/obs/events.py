"""Flight recorder: a bounded ring buffer of structured events.

Metrics say *how much*; traces say *how long*; the flight recorder
says *what happened* — typed, severity-tagged events for the rare but
diagnostic occurrences in a run (a cell dropped on a congested link, a
go-back-N retransmission burst, a VC torn down, a video frame arriving
late, an MHEG link firing).  Events carry the trace_id of the request
they belong to when one is known, so a slow span in a trace can be
correlated with the transport-level trouble that caused it.

The buffer is a fixed-capacity ring: recording is O(1), memory is
bounded no matter how pathological the run, and the ``dropped``
counter says how many old events were evicted.  One recorder is owned
by each :class:`~repro.atm.simulator.Simulator` and shared by every
component attached to it.

Under a :class:`~repro.obs.sampling.SamplingPolicy` (see
:meth:`FlightRecorder.apply_policy`) ring-evicted events can spill
into a seeded reservoir instead of vanishing, so a uniform sample of
the *early* run survives arbitrarily long scenarios; and a ``sink``
callable, when attached, receives every recorded event as it happens,
which is how the streaming sidecar persists full fidelity while the
in-memory window stays bounded.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["FlightEvent", "FlightRecorder", "SEVERITIES",
           "event_sort_key"]

#: allowed severity tags, in increasing order of gravity
SEVERITIES = ("debug", "info", "warning", "error")


@dataclass
class FlightEvent:
    """One recorded occurrence."""

    time: float
    component: str
    kind: str
    severity: str = "info"
    trace_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "component": self.component,
            "kind": self.kind,
            "severity": self.severity,
            "trace_id": self.trace_id,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FlightEvent":
        return cls(time=payload["time"],
                   component=payload["component"],
                   kind=payload["kind"],
                   severity=payload.get("severity", "info"),
                   trace_id=payload.get("trace_id"),
                   attrs=dict(payload.get("attrs") or {}))


def event_sort_key(event: Dict[str, Any]):
    """Total order over event dicts for k-way shard merges: sim time
    first, then content so equal-time events from different shards
    land deterministically."""
    return (event.get("time", 0.0), event.get("component", ""),
            event.get("kind", ""), event.get("severity", ""),
            event.get("trace_id") if event.get("trace_id") is not None
            else -1,
            json.dumps(event.get("attrs") or {}, sort_keys=True,
                       default=repr))


class FlightRecorder:
    """Fixed-capacity event ring against an injected clock."""

    def __init__(self, clock: Callable[[], float], *,
                 capacity: int = 4096, enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.dropped = 0
        self.recorded = 0
        self._events: Deque[FlightEvent] = deque(maxlen=capacity)
        #: overflow reservoir, installed by apply_policy(event_reservoir=N)
        self._overflow = None
        #: receives every recorded FlightEvent (streaming sidecar)
        self.sink: Optional[Callable[[FlightEvent], None]] = None

    def apply_policy(self, policy) -> None:
        """Install a :class:`~repro.obs.sampling.SamplingPolicy`.

        With ``event_reservoir`` set, events evicted from the ring
        spill into a seeded uniform reservoir instead of vanishing.
        """
        from repro.obs.sampling import Reservoir

        if policy.event_reservoir is not None:
            self._overflow = Reservoir(policy.event_reservoir,
                                       seed=policy.seed)
        else:
            self._overflow = None

    def record(self, component: str, kind: str, *, severity: str = "info",
               trace_id: Optional[int] = None, **attrs: Any) -> None:
        """Append one event; oldest events are evicted when full."""
        if not self.enabled:
            return
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
            if self._overflow is not None:
                self._overflow.offer(self._events[0])
        self.recorded += 1
        event = FlightEvent(
            time=self.clock(), component=component, kind=kind,
            severity=severity, trace_id=trace_id, attrs=attrs)
        self._events.append(event)
        if self.sink is not None:
            self.sink(event)

    @property
    def events(self) -> List[FlightEvent]:
        return list(self._events)

    @property
    def overflow(self) -> List[FlightEvent]:
        """Reservoir-kept evicted events, oldest-first (empty unless a
        policy with ``event_reservoir`` is applied)."""
        if self._overflow is None:
            return []
        return sorted(self._overflow.items(), key=lambda e: e.time)

    def for_trace(self, trace_id: int) -> List[FlightEvent]:
        """Events correlated to one trace."""
        return [e for e in self._events if e.trace_id == trace_id]

    def by_kind(self, kind: str) -> List[FlightEvent]:
        return [e for e in self._events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Per-kind event counts in the current window."""
        out: Dict[str, int] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def clear(self) -> None:
        self._events.clear()
        if self._overflow is not None:
            self._overflow.clear()
        self.dropped = 0
        self.recorded = 0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-stable dump of the ring (newest last).

        With an overflow reservoir installed the snapshot grows an
        ``overflow`` block; the default shape is unchanged.
        """
        snap: Dict[str, Any] = {
            "recorded": self.recorded,
            "dropped": self.dropped,
            "counts": self.counts(),
            "events": [e.to_dict() for e in self._events],
        }
        if self._overflow is not None:
            snap["overflow"] = {
                "capacity": self._overflow.capacity,
                "kept": len(self._overflow),
                "events": [e.to_dict() for e in self.overflow],
            }
        return snap

    def to_jsonl(self) -> str:
        """One event per line, for ``trace_*.jsonl`` sidecar dumps."""
        return "\n".join(
            json.dumps(e.to_dict(), sort_keys=True) for e in self._events)
