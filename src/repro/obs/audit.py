"""Conservation audit: prove the instruments agree with each other.

Every layer of the stack keeps flow counters, and every layer's
counters obey a conservation law — cells, PDUs, messages, and frames
move between buckets (queued, in flight, delivered, dropped), they
never vanish.  The :class:`ConservationAuditor` walks a live
deployment and checks those laws:

===========  =========================================================
layer        invariant
===========  =========================================================
Link buffer  enqueued == transmitted + shed + queued + in_service
Link wire    transmitted == delivered + errors + down + no_sink
Switch       received == emitted + crash + unroutable + policed + fabric
VC table     every open VC's label chain is installed; no orphans
AAL5         cells received == delivered + discarded + buffered
VC           pdus/bytes delivered <= pdus/bytes sent
Transport    seqs assigned == acked + in_flight + backlog + flushed
Playout      cursor == played + skipped + concealed;
             received == played + buffered
Ledger       per-entity totals match the metrics registry
===========  =========================================================

Because in-transit terms (queue depth, fabric occupancy, ARQ windows)
are part of each law, the audit holds at *any* event boundary — it can
run mid-scenario, from ``snapshot()``, or after a chaos run.  A fault
plan moves counts into drop buckets; it must never create or destroy
a count, which is exactly what the chaos suite now asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["ConservationAuditor", "Violation"]

#: at most this many correlated trace ids are attached per violation
TRACE_ID_CAP = 8


@dataclass
class Violation:
    """One broken invariant, with enough context to chase it."""

    component: str          # "link", "switch", "aal5", "transport", ...
    entity: str             # which instance (link label, conn name, ...)
    invariant: str          # short name of the law that failed
    expected: float
    actual: float
    detail: str = ""
    #: trace ids of recent FlightRecorder events touching this entity
    trace_ids: Tuple[int, ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "entity": self.entity,
            "invariant": self.invariant,
            "expected": self.expected,
            "actual": self.actual,
            "detail": self.detail,
            "trace_ids": list(self.trace_ids),
        }

    def __str__(self) -> str:
        return (f"{self.component}/{self.entity}: {self.invariant} "
                f"expected {self.expected} got {self.actual}"
                + (f" ({self.detail})" if self.detail else ""))


class ConservationAuditor:
    """Cross-checks live instruments against per-layer flow invariants.

    Construct from a :class:`~repro.core.system.MitsSystem` (or any
    object with ``.sim`` and ``.network``), or pass ``sim=``/
    ``network=`` directly; bare components for unit tests go in via
    ``links=``/``switches=``/``receivers=``.
    """

    def __init__(self, system: Optional[Any] = None, *,
                 sim: Optional[Any] = None, network: Optional[Any] = None,
                 links: Iterable = (), switches: Iterable = (),
                 receivers: Iterable = ()) -> None:
        if system is not None:
            sim = getattr(system, "sim", sim)
            network = getattr(system, "network", network)
        if sim is None:
            raise ValueError("ConservationAuditor needs a simulator "
                             "(pass a MitsSystem or sim=...)")
        self.sim = sim
        self.network = network
        self._extra_links = list(links)
        self._extra_switches = list(switches)
        self._extra_receivers = list(receivers)
        self.checks = 0
        self.violations: List[Violation] = []

    # -- running ---------------------------------------------------------

    def check(self) -> List[Violation]:
        """Evaluate every invariant; returns the violations found."""
        self.checks = 0
        self.violations = []
        for link in self._links():
            self._audit_link(link)
        for sw in self._switches():
            self._audit_switch(sw)
        if self.network is not None:
            self._audit_routes()
            for host in self.network.hosts.values():
                for vci, (rx, _handler, _vc) in host._rx.items():
                    self._audit_receiver(rx, f"{host.name}:vci{vci}")
            for vc in self.network.vcs.values():
                self._audit_vc(vc)
        for rx, label in self._extra_receivers:
            self._audit_receiver(rx, label)
        for conn in self.sim.entities.get("connection", []):
            self._audit_connection(conn)
        for player in self.sim.entities.get("player", []):
            self._audit_player(player)
        self._audit_ledger()
        return list(self.violations)

    def report(self) -> Dict[str, Any]:
        """``check()`` packaged for ``snapshot()`` / JSON export."""
        violations = self.check()
        return {
            "ok": not violations,
            "checks": self.checks,
            "violations": [v.to_dict() for v in violations],
        }

    # -- plumbing --------------------------------------------------------

    def _links(self):
        seen = set()
        candidates = list(self._extra_links)
        if self.network is not None:
            candidates.extend(self.network.links.values())
        for link in candidates:
            if id(link) not in seen:
                seen.add(id(link))
                yield link

    def _switches(self):
        seen = set()
        candidates = list(self._extra_switches)
        if self.network is not None:
            candidates.extend(self.network.switches.values())
        for sw in candidates:
            if id(sw) not in seen:
                seen.add(id(sw))
                yield sw

    def _expect(self, component: str, entity: str, invariant: str,
                expected: float, actual: float, detail: str = "") -> None:
        self.checks += 1
        if expected != actual:
            self.violations.append(Violation(
                component=component, entity=entity, invariant=invariant,
                expected=expected, actual=actual, detail=detail,
                trace_ids=self._trace_ids(entity)))

    def _trace_ids(self, entity: str) -> Tuple[int, ...]:
        """Recent FlightRecorder trace ids whose events mention *entity*."""
        ids: List[int] = []
        short = entity.split(":", 1)[0]
        for event in reversed(self.sim.recorder.events):
            if event.trace_id is None:
                continue
            values = event.attrs.values()
            if entity in values or short in values:
                if event.trace_id not in ids:
                    ids.append(event.trace_id)
                    if len(ids) >= TRACE_ID_CAP:
                        break
        return tuple(ids)

    # -- per-layer laws --------------------------------------------------

    def _audit_link(self, link) -> None:
        label = link._label
        s = link.stats
        self._expect(
            "link", label, "buffer_conservation",
            s.enqueued,
            s.transmitted + s.dropped_shed + link.queue_length
            + link.in_service,
            detail="enqueued == transmitted + shed + queued + in_service")
        self._expect(
            "link", label, "wire_conservation",
            s.transmitted,
            s.delivered + s.dropped_errors + s.dropped_down_wire
            + s.dropped_no_sink,
            detail="transmitted == delivered + errors + down + no_sink")
        self._expect(
            "link", label, "shed_subset",
            min(s.dropped_shed, s.dropped_overflow), s.dropped_shed,
            detail="shed cells are a subset of overflow drops")
        self._expect(
            "link", label, "down_wire_subset",
            min(s.dropped_down_wire, s.dropped_down), s.dropped_down_wire,
            detail="wire losses are a subset of link-down drops")
        if self.sim.metrics.enabled:
            self._expect("link", label, "metrics_mirror_enqueued",
                         s.enqueued, link._m_enqueued.value,
                         detail="stats.enqueued vs link.cells_enqueued")
            self._expect("link", label, "metrics_mirror_transmitted",
                         s.transmitted, link._m_transmitted.value,
                         detail="stats.transmitted vs link.cells_transmitted")
            self._expect(
                "link", label, "metrics_mirror_drops",
                s.dropped_overflow + s.dropped_errors + s.dropped_down
                + s.dropped_no_sink,
                link._m_drops.value,
                detail="summed stats drops vs link.drops_total")

    def _audit_switch(self, sw) -> None:
        s = sw.stats
        self._expect(
            "switch", sw.name, "receive_conservation",
            s.received,
            s.crash_dropped + s.unroutable + s.policed_dropped
            + s.emitted + sw.in_fabric,
            detail="received == crash + unroutable + policed + emitted "
                   "+ in_fabric")
        self._expect("switch", sw.name, "fabric_occupancy",
                     s.switched, s.emitted + sw.in_fabric,
                     detail="switched == emitted + in_fabric")
        if self.sim.metrics.enabled:
            self._expect("switch", sw.name, "metrics_mirror_received",
                         s.received, sw._m_received.value,
                         detail="stats.received vs switch.cells_received")
            self._expect("switch", sw.name, "metrics_mirror_unroutable",
                         s.unroutable, sw._m_unroutable.value,
                         detail="stats.unroutable vs switch.cells_unroutable")

    def _audit_routes(self) -> None:
        """Every open VC's label-swap chain must be installed end to
        end, terminate at the dst host's receive binding, and no table
        entry may exist that belongs to no open VC."""
        used = set()
        for vc in self.network.vcs.values():
            if not vc.open:
                continue
            entity = f"vc{vc.vc_id}"
            in_vci = vc.first_vci
            in_port = vc.path[0]
            broken = False
            for i in range(1, len(vc.path) - 1):
                sw_name = vc.path[i]
                sw = self.network.switches[sw_name]
                key = (in_port, 0, in_vci)
                entry = sw._table.get(key)
                self.checks += 1
                if entry is None:
                    self.violations.append(Violation(
                        "switch", sw_name, "missing_route", 1, 0,
                        detail=f"{entity}: no table entry for "
                               f"(in={in_port}, vci={in_vci})",
                        trace_ids=self._trace_ids(sw_name)))
                    broken = True
                    break
                used.add((sw_name,) + key)
                if entry.out_port != vc.path[i + 1]:
                    self.violations.append(Violation(
                        "switch", sw_name, "route_mismatch", 1, 0,
                        detail=f"{entity}: entry points at "
                               f"{entry.out_port}, path says "
                               f"{vc.path[i + 1]}",
                        trace_ids=self._trace_ids(sw_name)))
                    broken = True
                    break
                in_port = sw_name
                in_vci = entry.out_vci
            if broken:
                continue
            self._expect("atm", entity, "label_chain",
                         vc.last_vci, in_vci,
                         detail="walked label chain must end at the "
                                "VC's last VCI")
            self.checks += 1
            bound = vc.dst._rx.get(vc.last_vci)
            if bound is None or bound[2] is not vc:
                self.violations.append(Violation(
                    "atm", entity, "dst_binding", 1, 0,
                    detail=f"host {vc.dst.name} has no receive binding "
                           f"for vci {vc.last_vci}",
                    trace_ids=self._trace_ids(entity)))
        for sw_name, sw in self.network.switches.items():
            for key in sw._table:
                self.checks += 1
                if (sw_name,) + key not in used:
                    self.violations.append(Violation(
                        "switch", sw_name, "orphan_route", 0, 1,
                        detail=f"table entry (in={key[0]}, vci={key[2]}) "
                               f"belongs to no open VC",
                        trace_ids=self._trace_ids(sw_name)))

    def _audit_receiver(self, rx, label: str) -> None:
        self._expect(
            "aal5", label, "cell_conservation",
            rx.cells_received,
            rx.cells_delivered + rx.cells_discarded + rx.cells_buffered,
            detail="cells received == delivered + discarded + buffered")

    def _audit_vc(self, vc) -> None:
        self._expect("vc", f"vc{vc.vc_id}", "pdus_delivered_bound",
                     min(vc.stats.pdus_delivered, vc.stats.pdus_sent),
                     vc.stats.pdus_delivered,
                     detail="a VC cannot deliver more PDUs than were sent")
        self._expect("vc", f"vc{vc.vc_id}", "bytes_delivered_bound",
                     min(vc.stats.bytes_delivered, vc.stats.bytes_sent),
                     vc.stats.bytes_delivered,
                     detail="a VC cannot deliver more bytes than were sent")

    def _audit_connection(self, conn) -> None:
        s = conn.stats
        self._expect(
            "transport", conn._label, "seq_conservation",
            conn._next_seq,
            s.acked + len(conn._in_flight) + len(conn._backlog) + s.flushed,
            detail="seqs assigned == acked + in_flight + backlog + flushed")

    def _audit_player(self, player) -> None:
        s = player.stats
        self._expect(
            "playout", player.name, "cursor_conservation",
            player._next_frame,
            s.frames_played + s.frames_skipped + s.frames_concealed,
            detail="cursor == played + skipped + concealed")
        self._expect(
            "playout", player.name, "arrival_conservation",
            s.frames_received,
            s.frames_played + len(player._buffer),
            detail="frames received == played + buffered")

    def _audit_ledger(self) -> None:
        ledger = getattr(self.sim, "ledger", None)
        if ledger is None or not ledger.enabled:
            return
        for div in ledger.reconcile(self.sim.metrics):
            self.checks += 1
            self.violations.append(Violation(
                "ledger", f"{div['kind']}:{div['key']}",
                f"registry_divergence_{div['field']}",
                div["registry"], div["ledger"],
                detail="ledger total diverged from the metrics registry",
                trace_ids=self._trace_ids(str(div["key"]))))
        self.checks += 1  # the reconcile pass itself
