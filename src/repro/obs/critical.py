"""Critical-path analysis over span trees.

A Course-On-Demand request traverses navigator → RPC → database →
MHEG → streaming, and its end-to-end latency is a chain of dependent
stage delays.  This module extracts the **critical path** of a trace:
the longest blocking chain of spans that determines when the root
finishes.  Shrinking a span on the path shrinks the trace; shrinking
any other span does not.  That makes the path the attribution tool the
ROADMAP's perf arc is judged with — "which layer bounds latency" has
one deterministic answer per trace.

The algorithm is the classic backward walk (as used by Jaeger's
critical-path view): starting at a span's end, repeatedly yield to the
child that finishes last, attribute the gaps between child intervals
to the parent itself, and recurse into each blocking child clipped to
the frontier.  The result is a list of non-overlapping *segments*,
each charging an interval of simulated time to exactly one span; the
segments tile the root's duration exactly.

Derived quantities:

``self_time``
    per span, its duration minus the union of its children's
    intervals (clipped to the span) — time the span spent working,
    not waiting.  Path segments charge a span only for blocking
    self-time, so a span's path contribution is ≤ its self-time.
``slack``
    per span, ``parent.end − span.end`` (clamped ≥ 0): how much
    longer the span could have run before it alone delayed its
    parent.  Spans on the critical path have the smallest slack in
    their sibling set; a large slack marks work that can soak up an
    optimisation's budget without moving the end-to-end number.
``attribution``
    path seconds aggregated by *component* (the span-name prefix
    before the first dot: ``rpc``, ``streaming``, ``mheg``, …) and by
    *span kind* (the name with any ``:method`` suffix stripped, so
    ``rpc.client:GetContent`` pools with every other client call).
``tail exemplars``
    the traces whose root duration sits at or above a quantile
    (default p99) of all root durations — the concrete slow requests
    worth reading, auto-selected instead of hand-picked.

Everything here is pure functions over span dicts (the
``trace_*.jsonl`` / ``obs_*.jsonl`` line shape); live
:class:`~repro.obs.tracing.SpanRecord` objects are accepted too and
normalised up front.  Orphaned spans — parents dropped by sampling or
ring eviction — are treated as roots of their own subtree, so a
sampled archive still analyses instead of crashing.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "analyze_trace",
    "attribution",
    "component_of",
    "critical_segments",
    "kind_of",
    "normalize_spans",
    "render_attribution",
    "render_critical_path",
    "select_traces",
    "tail_trace_ids",
]

#: ignore segments shorter than this (simulated seconds): float noise
#: from clipping, not real work
EPSILON = 1e-12


def component_of(name: str) -> str:
    """``rpc.client:GetContent`` → ``rpc``; ``streaming.send`` →
    ``streaming``.  The prefix before the first dot is the layer the
    thesis's measurement chapter tabulates by."""
    return name.split(".", 1)[0].split(":", 1)[0]


def kind_of(name: str) -> str:
    """Span kind: the name with any ``:method`` suffix stripped, so
    every RPC method pools into ``rpc.client`` / ``rpc.server``."""
    return name.split(":", 1)[0]


def normalize_spans(spans: Sequence[Any]) -> List[Dict[str, Any]]:
    """Accept SpanRecord objects or dicts; return plain dicts."""
    return [s if isinstance(s, Mapping) else s.to_dict() for s in spans]


# -- tree building ---------------------------------------------------------


def _index(spans: Sequence[Mapping[str, Any]]
           ) -> Tuple[List[Mapping[str, Any]],
                      Dict[Any, List[Mapping[str, Any]]]]:
    """Roots and a parent_id → children map for ONE trace's spans.

    A span whose parent is absent (never traced, or dropped by
    sampling/eviction) roots its own subtree rather than vanishing.
    """
    ids = {s["span_id"] for s in spans}
    roots: List[Mapping[str, Any]] = []
    children: Dict[Any, List[Mapping[str, Any]]] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is None or parent not in ids:
            roots.append(s)
        else:
            children.setdefault(parent, []).append(s)
    return roots, children


def group_by_trace(spans: Sequence[Mapping[str, Any]]
                   ) -> Dict[Any, List[Mapping[str, Any]]]:
    by_trace: Dict[Any, List[Mapping[str, Any]]] = {}
    for s in spans:
        by_trace.setdefault(s.get("trace_id"), []).append(s)
    return by_trace


# -- the backward walk -----------------------------------------------------


def critical_segments(root: Mapping[str, Any],
                      children: Dict[Any, List[Mapping[str, Any]]]
                      ) -> List[Dict[str, Any]]:
    """Non-overlapping path segments tiling *root*'s duration.

    Each segment is ``{span_id, name, start, end, seconds, depth}``
    charging ``[start, end)`` of simulated time to one span.  Segments
    come back start-ordered and sum exactly to the root duration.
    """
    segments: List[Dict[str, Any]] = []

    def charge(span: Mapping[str, Any], start: float, end: float,
               depth: int) -> None:
        if end - start > EPSILON:
            segments.append({
                "span_id": span["span_id"], "name": span["name"],
                "start": start, "end": end, "seconds": end - start,
                "depth": depth,
            })

    def walk(span: Mapping[str, Any], clip_end: float,
             depth: int) -> None:
        frontier = min(_end(span), clip_end)
        kids = sorted(children.get(span["span_id"], ()),
                      key=lambda c: (_end(c), c["span_id"]),
                      reverse=True)
        for child in kids:
            if child["start"] >= frontier - EPSILON:
                continue  # fully shadowed by a later-finishing sibling
            child_end = min(_end(child), frontier)
            # the gap after the child is the parent's own blocking work
            charge(span, child_end, frontier, depth)
            walk(child, child_end, depth + 1)
            frontier = child["start"]
            if frontier <= span["start"] + EPSILON:
                break
        charge(span, span["start"], max(frontier, span["start"]), depth)

    walk(root, _end(root), 0)
    segments.reverse()  # emitted end-first; callers read start-ordered
    return segments


def _end(span: Mapping[str, Any]) -> float:
    return span["end"]


# -- derived per-span quantities -------------------------------------------


def self_times(spans: Sequence[Mapping[str, Any]],
               children: Dict[Any, List[Mapping[str, Any]]]
               ) -> Dict[Any, float]:
    """duration − union of child intervals (clipped), per span id."""
    out: Dict[Any, float] = {}
    for s in spans:
        intervals = sorted(
            (max(c["start"], s["start"]), min(_end(c), _end(s)))
            for c in children.get(s["span_id"], ()))
        covered = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for start, end in intervals:
            if end <= start:
                continue
            if cur_start is None or start > cur_end:
                if cur_start is not None:
                    covered += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_start is not None:
            covered += cur_end - cur_start
        out[s["span_id"]] = max(0.0, (_end(s) - s["start"]) - covered)
    return out


def slacks(spans: Sequence[Mapping[str, Any]]) -> Dict[Any, float]:
    """``parent.end − span.end`` clamped ≥ 0; 0 for roots/orphans."""
    by_id = {s["span_id"]: s for s in spans}
    out: Dict[Any, float] = {}
    for s in spans:
        parent = by_id.get(s.get("parent_id"))
        out[s["span_id"]] = max(0.0, _end(parent) - _end(s)) \
            if parent is not None else 0.0
    return out


# -- per-trace analysis ----------------------------------------------------


def analyze_trace(trace_spans: Sequence[Any]) -> Dict[str, Any]:
    """Full critical-path analysis of ONE trace's spans.

    Returns ``{trace_id, root, duration, segments, path_span_ids,
    self_time, slack, by_component, by_kind}``.  A trace fragmented by
    sampling has several roots; the longest root anchors the path and
    the others are listed in ``other_roots``.
    """
    spans = normalize_spans(trace_spans)
    if not spans:
        raise ValueError("analyze_trace needs at least one span")
    roots, children = _index(spans)
    root = max(roots, key=lambda s: (_end(s) - s["start"], -s["span_id"]))
    segments = critical_segments(root, children)
    result = {
        "trace_id": root.get("trace_id"),
        "root": root["name"],
        "root_span_id": root["span_id"],
        "duration": _end(root) - root["start"],
        "segments": segments,
        "path_span_ids": sorted({seg["span_id"] for seg in segments}),
        "self_time": self_times(spans, children),
        "slack": slacks(spans),
        "by_component": _aggregate(segments, component_of),
        "by_kind": _aggregate(segments, kind_of),
    }
    if len(roots) > 1:
        result["other_roots"] = [
            {"span_id": r["span_id"], "name": r["name"],
             "duration": _end(r) - r["start"]}
            for r in roots if r is not root]
    return result


def _aggregate(segments: Sequence[Mapping[str, Any]], key_fn
               ) -> Dict[str, Dict[str, Any]]:
    total = sum(seg["seconds"] for seg in segments)
    out: Dict[str, Dict[str, Any]] = {}
    for seg in segments:
        row = out.setdefault(key_fn(seg["name"]),
                             {"seconds": 0.0, "segments": 0})
        row["seconds"] += seg["seconds"]
        row["segments"] += 1
    for row in out.values():
        row["share"] = row["seconds"] / total if total > 0 else 0.0
    return out


# -- whole-archive attribution ---------------------------------------------


def attribution(all_spans: Sequence[Any],
                trace_ids: Optional[Sequence[Any]] = None
                ) -> Dict[str, Any]:
    """Critical-path attribution aggregated across traces.

    Every trace (or just *trace_ids*) contributes its path segments;
    shares are of the summed path seconds.  This is the compact block
    ``dump_observability`` embeds in ``metrics_*.json`` and the
    ``repro.obs diff`` attribution section compares across runs.
    """
    spans = normalize_spans(all_spans)
    by_trace = group_by_trace(spans)
    if trace_ids is not None:
        wanted = set(trace_ids)
        by_trace = {t: g for t, g in by_trace.items() if t in wanted}
    segments: List[Dict[str, Any]] = []
    total_root_seconds = 0.0
    for group in by_trace.values():
        analysis = analyze_trace(group)
        segments.extend(analysis["segments"])
        total_root_seconds += analysis["duration"]
    return {
        "traces": len(by_trace),
        "path_seconds": sum(seg["seconds"] for seg in segments),
        "root_seconds": total_root_seconds,
        "by_component": _aggregate(segments, component_of),
        "by_kind": _aggregate(segments, kind_of),
    }


def tail_trace_ids(all_spans: Sequence[Any],
                   quantile: float = 0.99) -> List[Any]:
    """Traces whose root duration is at/above the given quantile.

    Nearest-rank over the per-trace root durations, so at least one
    trace — the slowest — is always selected.  These are the
    exemplars a diagnosis should read first: the tail is where an SLO
    dies, and the median trace rarely explains it.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    spans = normalize_spans(all_spans)
    durations: List[Tuple[float, Any]] = []
    for trace_id, group in group_by_trace(spans).items():
        roots, _ = _index(group)
        dur = max(_end(r) - r["start"] for r in roots)
        durations.append((dur, trace_id))
    if not durations:
        return []
    durations.sort(key=lambda pair: pair[0])
    idx = max(0, math.ceil(quantile * len(durations)) - 1)
    threshold = durations[idx][0]
    return [trace_id for dur, trace_id in durations
            if dur >= threshold]


def select_traces(all_spans: Sequence[Any], *,
                  trace_id: Optional[Any] = None,
                  tail: bool = False,
                  quantile: float = 0.99) -> List[Any]:
    """Which traces should a rendering show?  One explicit id, the
    tail exemplars, or (default) the single longest-rooted trace."""
    spans = normalize_spans(all_spans)
    if trace_id is not None:
        if not any(s.get("trace_id") == trace_id for s in spans):
            raise ValueError(f"trace {trace_id!r} not in this archive")
        return [trace_id]
    if tail:
        return tail_trace_ids(spans, quantile)
    return tail_trace_ids(spans, 1.0)[-1:]


# -- rendering -------------------------------------------------------------


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def render_critical_path(trace_spans: Sequence[Any]) -> str:
    """One trace's path as an indented table: step, path time (the
    blocking seconds the step charges), self-time, and slack."""
    analysis = analyze_trace(trace_spans)
    spans = normalize_spans(trace_spans)
    names = {s["span_id"]: s["name"] for s in spans}
    lines = [f"critical path · trace {analysis['trace_id']} · root "
             f"{analysis['root']} · {_fmt_seconds(analysis['duration'])}",
             f"  {'step':<44}{'path':>10}{'self':>10}{'slack':>10}",
             "  " + "-" * 74]
    # merge consecutive segments of the same span into one step
    steps: List[Dict[str, Any]] = []
    for seg in analysis["segments"]:
        if steps and steps[-1]["span_id"] == seg["span_id"]:
            steps[-1]["seconds"] += seg["seconds"]
        else:
            steps.append(dict(seg))
    for step in steps:
        sid = step["span_id"]
        indent = "  " * step["depth"]
        label = (indent + names.get(sid, "?"))[:44]
        lines.append(
            f"  {label:<44}"
            f"{_fmt_seconds(step['seconds']):>10}"
            f"{_fmt_seconds(analysis['self_time'].get(sid, 0.0)):>10}"
            f"{_fmt_seconds(analysis['slack'].get(sid, 0.0)):>10}")
    off_path = [s for s in spans
                if s["span_id"] not in set(analysis["path_span_ids"])]
    if off_path:
        worst = max(off_path,
                    key=lambda s: analysis["self_time"].get(s["span_id"], 0.0))
        lines.append(
            f"  ({len(off_path)} spans off the path; largest self-time "
            f"{worst['name']} "
            f"{_fmt_seconds(analysis['self_time'].get(worst['span_id'], 0.0))}"
            f", slack "
            f"{_fmt_seconds(analysis['slack'].get(worst['span_id'], 0.0))})")
    if "other_roots" in analysis:
        lines.append(f"  ({len(analysis['other_roots'])} orphaned "
                     f"subtrees analysed separately)")
    return "\n".join(lines)


def render_attribution(all_spans: Sequence[Any], *,
                       trace_ids: Optional[Sequence[Any]] = None,
                       top: int = 10) -> str:
    """Attribution tables (by component, by span kind) for an archive."""
    attr = attribution(all_spans, trace_ids)
    if not attr["traces"]:
        return "(no spans to attribute)"
    lines = [f"critical-path attribution · {attr['traces']} traces · "
             f"{_fmt_seconds(attr['path_seconds'])} on path"]
    for title, table in (("component", attr["by_component"]),
                         ("span kind", attr["by_kind"])):
        lines.append(f"  {'by ' + title:<36}{'seconds':>12}{'share':>8}"
                     f"{'segs':>7}")
        lines.append("  " + "-" * 63)
        ranked = sorted(table.items(),
                        key=lambda kv: kv[1]["seconds"], reverse=True)
        for key, row in ranked[:top]:
            lines.append(f"  {key:<36}"
                         f"{_fmt_seconds(row['seconds']):>12}"
                         f"{row['share'] * 100:>7.1f}%"
                         f"{row['segments']:>7}")
    return "\n".join(lines)
