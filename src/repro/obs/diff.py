"""Differential run comparison: what changed between two archives?

``bench_gate`` can say *that* ``events_per_sec`` regressed; this
module says *why* — which span kinds got slower, which profiler
callsites grew, which SLOs flipped, where the critical path moved,
and whose traffic share shifted.  It compares two archived runs end
to end and emits one ranked attribution table plus a machine-readable
``diff_*.json``, so every regression (and every claimed speedup in
the ROADMAP's 10× arc) arrives with a layer-level explanation.

A *run archive* is any of the artefact shapes the repo produces:

* ``metrics_<name>.json`` — the monolithic sidecar; the sibling
  ``trace_``/``accounting_`` sidecars are auto-discovered;
* ``obs_<name>.jsonl`` — the streamed sidecar (spans, fin summary,
  last ledger checkpoint);
* ``BENCH_<scenario>.json`` — a bench-gate baseline (scalar metric
  vector + ``profile_top``, no spans);
* a merged fleet archive (``repro.obs merge`` / ``scripts/fleet.py``)
  — spans, ledger, and critical block are embedded, so two
  same-partition fleets diff exactly like two single runs.

Sections degrade gracefully: a side missing spans still diffs
metrics, a BENCH baseline still diffs callsites.  Sections are
classed **deterministic** (metrics registry, span kinds, SLO
verdicts, critical-path attribution, ledger, deterministic bench
metrics) or **wall** (profiler seconds, wall-clock bench metrics);
only deterministic changes count toward
``deterministic_delta_count``, which is the CI determinism smoke's
verdict — two same-seed runs must report zero.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import critical
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    find_accounting_sidecar,
    find_trace_sidecar,
    fmt_seconds,
    load_metrics_file,
    load_trace_file,
)
from repro.obs.sink import is_obs_sidecar, load_obs_sidecar

__all__ = ["RunArchive", "diff_runs", "load_run", "render_diff_report",
           "write_diff"]

#: bench-vector metrics that are reproducible given the seed; the rest
#: of the vector (wall seconds, events/sec, obs overhead) is hardware
BENCH_DETERMINISTIC = ("events_run", "sim_time", "peak_queue_depth",
                      "peak_link_queue", "peak_player_buffer")

#: changes smaller than this (absolute) are float noise, not deltas
EPSILON = 1e-9


@dataclass
class RunArchive:
    """One archived run, normalised from any artefact shape."""

    path: str
    name: str = ""
    metrics: Dict[str, Any] = field(default_factory=dict)
    slo: Optional[Dict[str, Any]] = None
    spans: List[Dict[str, Any]] = field(default_factory=list)
    profile: List[Dict[str, Any]] = field(default_factory=list)
    accounting: Optional[Dict[str, Any]] = None
    critical: Optional[Dict[str, Any]] = None
    bench: Optional[Dict[str, Any]] = None

    def fill_missing(self, other: Optional["RunArchive"]) -> "RunArchive":
        """Backfill sections this archive lacks from *other* (e.g. a
        BENCH baseline borrowing the previous gate run's sidecars)."""
        if other is None:
            return self
        if not self.metrics:
            self.metrics = other.metrics
        if self.slo is None:
            self.slo = other.slo
        if not self.spans:
            self.spans = other.spans
        if not self.profile:
            self.profile = other.profile
        if self.accounting is None:
            self.accounting = other.accounting
        if self.critical is None:
            self.critical = other.critical
        if self.bench is None:
            self.bench = other.bench
        return self

    def critical_attribution(self) -> Optional[Dict[str, Any]]:
        """Prefer recomputing from spans; fall back to the compact
        block ``dump_observability`` embeds."""
        if self.spans:
            return critical.attribution(self.spans)
        return self.critical


def load_run(path: str) -> RunArchive:
    """Normalise one archive file into a :class:`RunArchive`."""
    if is_obs_sidecar(path):
        payload = load_obs_sidecar(path)
        fin = payload["meta"]
        acct = payload["accounting"]
        return RunArchive(
            path=path, name=payload["name"] or os.path.basename(path),
            metrics=fin.get("metrics", {}), slo=fin.get("slo"),
            spans=payload["spans"],
            accounting=acct.get("kinds") if acct else None,
            critical=fin.get("critical"))
    with open(path) as fh:
        payload = json.load(fh)
    if "profile_top" in payload and "scenario" in payload:
        # a BENCH_<scenario>.json bench-gate baseline
        return RunArchive(
            path=path, name=payload.get("scenario", ""),
            profile=list(payload.get("profile_top", [])),
            bench=dict(payload.get("metrics", {})))
    if payload.get("merged"):
        # a merged fleet archive: everything is embedded, so two
        # same-partition fleets diff exactly like two single runs
        acct = payload.get("accounting")
        return RunArchive(
            path=path, name=payload.get("name")
            or os.path.basename(path),
            metrics=payload.get("metrics", {}),
            slo=payload.get("slo"),
            spans=list(payload.get("spans") or []),
            accounting=acct.get("kinds") if acct else None,
            critical=payload.get("critical"))
    meta, metrics = load_metrics_file(path)
    archive = RunArchive(
        path=path, name=meta.get("name") or os.path.basename(path),
        metrics=metrics, slo=meta.get("slo"),
        critical=meta.get("critical"))
    profile = meta.get("profile")
    if profile:
        archive.profile = list(profile.get("hotspots", []))
    trace_path = find_trace_sidecar(path)
    if trace_path:
        archive.spans, _ = load_trace_file(trace_path)
    acct_path = find_accounting_sidecar(path)
    if acct_path:
        try:
            with open(acct_path) as fh:
                archive.accounting = json.load(fh).get("kinds")
        except (OSError, ValueError):
            pass
    return archive


# -- section diffs ---------------------------------------------------------


def _span_kind_stats(spans: Sequence[Mapping[str, Any]]
                     ) -> Dict[str, Dict[str, float]]:
    durations: Dict[str, List[float]] = {}
    for s in spans:
        durations.setdefault(critical.kind_of(s["name"]), []).append(
            s["end"] - s["start"])
    out: Dict[str, Dict[str, float]] = {}
    for kind, durs in durations.items():
        durs.sort()
        n = len(durs)
        out[kind] = {
            "count": n,
            "total": sum(durs),
            "mean": sum(durs) / n,
            "p50": durs[max(0, (n + 1) // 2 - 1)],
            "p99": durs[max(0, -(-99 * n // 100) - 1)],
        }
    return out


def _diff_span_kinds(a: RunArchive, b: RunArchive
                     ) -> List[Dict[str, Any]]:
    sa, sb = _span_kind_stats(a.spans), _span_kind_stats(b.spans)
    rows = []
    for kind in sorted(set(sa) | set(sb)):
        before, after = sa.get(kind), sb.get(kind)
        row: Dict[str, Any] = {"kind": kind, "before": before,
                               "after": after}
        if before is None or after is None:
            row["only"] = "after" if before is None else "before"
            present = after or before or {}
            row["delta_total"] = (present.get("total", 0.0)
                                  * (1 if before is None else -1))
        else:
            row["delta_total"] = after["total"] - before["total"]
            row["delta"] = {stat: after[stat] - before[stat]
                            for stat in ("count", "mean", "p50", "p99")}
        rows.append(row)
    rows.sort(key=lambda r: abs(r["delta_total"]), reverse=True)
    return rows


def _diff_profile(a: RunArchive, b: RunArchive) -> List[Dict[str, Any]]:
    pa = {h["callsite"]: h for h in a.profile}
    pb = {h["callsite"]: h for h in b.profile}
    rows = []
    for callsite in sorted(set(pa) | set(pb)):
        ha, hb = pa.get(callsite), pb.get(callsite)
        row: Dict[str, Any] = {
            "callsite": callsite,
            "before_cum": ha["cum_seconds"] if ha else None,
            "after_cum": hb["cum_seconds"] if hb else None,
            "before_calls": ha.get("calls") if ha else None,
            "after_calls": hb.get("calls") if hb else None,
            "status": "changed" if ha and hb
            else ("new" if hb else "gone"),
        }
        row["delta_cum"] = ((hb["cum_seconds"] if hb else 0.0)
                            - (ha["cum_seconds"] if ha else 0.0))
        row["delta_calls"] = ((hb.get("calls", 0) if hb else 0)
                              - (ha.get("calls", 0) if ha else 0))
        rows.append(row)
    rows.sort(key=lambda r: abs(r["delta_cum"]), reverse=True)
    return rows


def _slo_results(archive: RunArchive) -> Dict[str, bool]:
    if not archive.slo:
        return {}
    return {r["name"]: bool(r["ok"])
            for r in archive.slo.get("results", [])}


def _diff_slo(a: RunArchive, b: RunArchive) -> Dict[str, Any]:
    ra, rb = _slo_results(a), _slo_results(b)
    transitions = []
    for name in sorted(set(ra) | set(rb)):
        va, vb = ra.get(name), rb.get(name)
        if va != vb:
            transitions.append({"name": name, "before": va, "after": vb})
    verdict_a = (a.slo or {}).get("verdict")
    verdict_b = (b.slo or {}).get("verdict")
    return {
        "verdict_before": verdict_a,
        "verdict_after": verdict_b,
        "verdict_changed": verdict_a != verdict_b,
        "transitions": transitions,
    }


def _diff_critical(a: RunArchive, b: RunArchive) -> List[Dict[str, Any]]:
    ca, cb = a.critical_attribution(), b.critical_attribution()
    table_a = (ca or {}).get("by_component", {})
    table_b = (cb or {}).get("by_component", {})
    rows = []
    for comp in sorted(set(table_a) | set(table_b)):
        ra = table_a.get(comp, {"seconds": 0.0, "share": 0.0})
        rb = table_b.get(comp, {"seconds": 0.0, "share": 0.0})
        rows.append({
            "component": comp,
            "before_seconds": ra["seconds"], "after_seconds": rb["seconds"],
            "delta_seconds": rb["seconds"] - ra["seconds"],
            "before_share": ra["share"], "after_share": rb["share"],
            "delta_share": rb["share"] - ra["share"],
        })
    rows.sort(key=lambda r: abs(r["delta_seconds"]), reverse=True)
    return rows


def _diff_ledger(a: RunArchive, b: RunArchive, *,
                 top: int = 8) -> List[Dict[str, Any]]:
    """Largest per-account ``bytes_sent`` movements, across kinds."""
    rows = []
    kinds_a = a.accounting or {}
    kinds_b = b.accounting or {}
    for kind in sorted(set(kinds_a) | set(kinds_b)):
        acc_a = {r["key"]: r for r in kinds_a.get(kind, [])}
        acc_b = {r["key"]: r for r in kinds_b.get(kind, [])}
        for key in sorted(set(acc_a) | set(acc_b)):
            ba = acc_a.get(key, {}).get("bytes_sent", 0)
            bb = acc_b.get(key, {}).get("bytes_sent", 0)
            if abs(bb - ba) <= EPSILON and key in acc_a and key in acc_b:
                continue
            row = {"kind": kind, "key": key, "before_bytes": ba,
                   "after_bytes": bb, "delta_bytes": bb - ba}
            if key not in acc_a:
                row["only"] = "after"
            elif key not in acc_b:
                row["only"] = "before"
            rows.append(row)
    rows.sort(key=lambda r: abs(r["delta_bytes"]), reverse=True)
    return rows[:top]


def _diff_bench(a: RunArchive, b: RunArchive) -> List[Dict[str, Any]]:
    va, vb = a.bench or {}, b.bench or {}
    rows = []
    for metric in sorted(set(va) | set(vb)):
        mb, mc = va.get(metric), vb.get(metric)
        rows.append({
            "metric": metric, "before": mb, "after": mc,
            "delta": (mc or 0) - (mb or 0),
            "deterministic": metric in BENCH_DETERMINISTIC,
        })
    return rows


# -- the top-level diff ----------------------------------------------------


def diff_runs(a: RunArchive, b: RunArchive, *,
              top: int = 10) -> Dict[str, Any]:
    """Compare two archives end to end.

    Returns a JSON-stable payload whose ``attribution`` section is one
    ranked table of time-attributed movements (span kinds by Δ total
    seconds, profiler callsites by Δ cumulative seconds, critical-path
    components by Δ path seconds) — the "what explains the regression"
    answer, largest mover first.
    """
    metrics_delta = MetricsRegistry.delta(a.metrics, b.metrics) \
        if (a.metrics or b.metrics) else {}
    moved = {key: row for key, row in metrics_delta.items()
             if abs(row["delta"]) > EPSILON or "only" in row}
    span_kinds = _diff_span_kinds(a, b)
    slo = _diff_slo(a, b)
    crit = _diff_critical(a, b)
    ledger = _diff_ledger(a, b)
    profile = _diff_profile(a, b)
    bench = _diff_bench(a, b)

    attribution: List[Dict[str, Any]] = []
    for row in span_kinds:
        attribution.append({
            "source": "span-kind", "key": row["kind"],
            "delta_seconds": row["delta_total"],
            "detail": f"count {_count(row, 'before')} -> "
                      f"{_count(row, 'after')}",
            "deterministic": True,
        })
    for row in crit:
        attribution.append({
            "source": "critical-path", "key": row["component"],
            "delta_seconds": row["delta_seconds"],
            "detail": f"share {row['before_share'] * 100:.1f}% -> "
                      f"{row['after_share'] * 100:.1f}%",
            "deterministic": True,
        })
    for row in profile:
        attribution.append({
            "source": "callsite", "key": row["callsite"],
            "delta_seconds": row["delta_cum"],
            "detail": f"calls {row['before_calls']} -> "
                      f"{row['after_calls']} [{row['status']}]",
            "deterministic": False,
        })
    attribution.sort(key=lambda r: abs(r["delta_seconds"]), reverse=True)
    attribution = attribution[:3 * top]

    deterministic = (
        len(moved)
        + sum(1 for r in span_kinds
              if abs(r["delta_total"]) > EPSILON or "only" in r)
        + len(slo["transitions"])
        + (1 if slo["verdict_changed"] else 0)
        + sum(1 for r in crit if abs(r["delta_seconds"]) > EPSILON)
        + len(ledger)
        + sum(1 for r in bench
              if r["deterministic"] and abs(r["delta"]) > EPSILON)
    )
    return {
        "runs": {"before": {"path": a.path, "name": a.name},
                 "after": {"path": b.path, "name": b.name}},
        "bench": bench,
        "metrics": moved,
        "span_kinds": span_kinds,
        "profile": profile,
        "slo": slo,
        "critical": crit,
        "ledger": ledger,
        "attribution": attribution,
        "deterministic_delta_count": deterministic,
    }


def _count(row: Mapping[str, Any], side: str) -> Any:
    stats = row.get(side)
    return stats["count"] if stats else "-"


# -- rendering -------------------------------------------------------------


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_attribution_table(payload: Mapping[str, Any], *,
                             top: int = 10) -> str:
    """The ranked table alone — what bench_gate prints on failure."""
    rows = payload["attribution"][:top]
    if not rows:
        return "(no attribution rows — neither run carried spans or " \
               "profile data)"
    lines = [f"ranked attribution (largest movers, "
             f"{'Δ':>1} seconds of blocking/cumulative time):",
             f"  {'#':>2} {'source':<14}{'where':<40}{'Δ seconds':>12}"
             f"  detail",
             "  " + "-" * 92]
    for i, row in enumerate(rows, 1):
        sign = "+" if row["delta_seconds"] >= 0 else "-"
        lines.append(
            f"  {i:>2} {row['source']:<14}{row['key'][:39]:<40}"
            f"{sign}{fmt_seconds(abs(row['delta_seconds'])):>11}"
            f"  {row['detail']}")
    return "\n".join(lines)


def render_diff_report(payload: Mapping[str, Any], *,
                       top: int = 10) -> str:
    """Full human-readable diff: header, bench vector, attribution,
    SLO transitions, metric movers, ledger movements."""
    runs = payload["runs"]
    lines = [f"== diff: {runs['before']['name'] or runs['before']['path']}"
             f" -> {runs['after']['name'] or runs['after']['path']} ==",
             f"   before: {runs['before']['path']}",
             f"   after:  {runs['after']['path']}", ""]
    bench = [r for r in payload["bench"]
             if r["before"] is not None or r["after"] is not None]
    if bench:
        lines.append(f"  {'bench metric':<24}{'before':>14}{'after':>14}"
                     f"{'delta':>12}  class")
        lines.append("  " + "-" * 72)
        for r in bench:
            klass = "deterministic" if r["deterministic"] else "wall"
            lines.append(f"  {r['metric']:<24}{_fmt(r['before']):>14}"
                         f"{_fmt(r['after']):>14}{r['delta']:>+12.4g}"
                         f"  {klass}")
        lines.append("")
    lines.append(render_attribution_table(payload, top=top))
    slo = payload["slo"]
    if slo["transitions"] or slo["verdict_changed"]:
        lines.append("")
        lines.append(f"  SLO verdict: {slo['verdict_before']} -> "
                     f"{slo['verdict_after']}")
        for t in slo["transitions"]:
            fmt_v = lambda v: {True: "PASS", False: "FAIL",  # noqa: E731
                               None: "absent"}[v]
            lines.append(f"    {t['name']}: {fmt_v(t['before'])} -> "
                         f"{fmt_v(t['after'])}")
    moved = payload["metrics"]
    if moved:
        lines.append("")
        lines.append(f"  top instrument movements "
                     f"({len(moved)} instruments moved):")
        ranked = sorted(moved.items(),
                        key=lambda kv: abs(kv[1]["delta"]), reverse=True)
        for key, row in ranked[:top]:
            tag = f"  [{row['only']} only]" if "only" in row else ""
            tag += "  [reset]" if row.get("reset") else ""
            lines.append(f"    {key:<52} {row['before']:>10.4g} -> "
                         f"{row['after']:>10.4g}  "
                         f"({row['delta']:+.4g}){tag}")
    if payload["ledger"]:
        lines.append("")
        lines.append("  top ledger movements (bytes sent):")
        for row in payload["ledger"]:
            tag = f"  [{row['only']} only]" if "only" in row else ""
            lines.append(f"    {row['kind']}/{row['key']:<30} "
                         f"{row['before_bytes']:>12} -> "
                         f"{row['after_bytes']:>12}  "
                         f"({row['delta_bytes']:+d}){tag}")
    lines.append("")
    n = payload["deterministic_delta_count"]
    lines.append(f"  deterministic deltas: {n}"
                 + ("  (runs are equivalent modulo wall clock)"
                    if n == 0 else ""))
    return "\n".join(lines)


def write_diff(payload: Mapping[str, Any], out_dir: str,
               name: str) -> str:
    """Write the machine-readable ``diff_<name>.json``; returns path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"diff_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
