"""Metrics registry: counters, gauges, and time-bucketed histograms.

Every measurable quantity in the reproduction flows through one
:class:`MetricsRegistry`, keyed by ``(component, name, labels)`` — the
same triple the thesis's evaluation chapters report per layer (cell
delays at the ATM layer, retransmits at the transport layer, sync skew
at the MHEG layer).  Components fetch their instruments once at
construction and update them on the hot path with a single attribute
mutation; the registry itself is only walked when a report is
exported.

Design points:

* **Instruments are memoised** — asking for the same
  ``(component, name, labels)`` twice returns the same object, so
  call-site code never has to thread instrument handles around.
* **Histograms are time-bucketed** — the default bucket ladder is a
  geometric progression of seconds (1 µs … 64 s) suited to everything
  from cell times on an OC-3 to courseware download times.  Custom
  ladders can be passed for non-temporal quantities.
* **A disabled registry is near-free** — every instrument request
  returns one shared no-op object whose mutators do nothing.
* **Export is JSON-stable** — :meth:`MetricsRegistry.report` produces
  plain dicts/lists so ``BENCH_*.json`` trajectories are comparable
  across PRs.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "TIME_BUCKETS",
    "iter_report",
]

#: default histogram ladder: 1 µs .. 64 s in powers of four, a spread
#: wide enough for cell times (~2.7 µs on OC-3) and whole-courseware
#: downloads (tens of seconds) alike.
TIME_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 4 ** i for i in range(13))

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def iter_report(report: Mapping[str, Any]
                ) -> Iterable[Tuple[str, str, LabelKey, Dict[str, Any]]]:
    """Walk a :meth:`MetricsRegistry.report` dump instrument by
    instrument, yielding ``(component, name, label_key, entry)`` —
    the flat view merge operators and shard partitioners fold over."""
    for component, names in report.items():
        for name, entries in names.items():
            for entry in entries:
                yield (component, name,
                       _label_key(entry.get("labels", {})), entry)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Point-in-time level, with min/max watermarks since creation."""

    __slots__ = ("value", "min", "max")

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def set(self, value: float) -> None:
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> Dict[str, Any]:
        empty = self.min > self.max
        return {
            "type": "gauge",
            "value": self.value,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
        }


class Histogram:
    """Bucketed distribution with count/sum/min/max.

    ``buckets`` are upper bounds; an observation lands in the first
    bucket whose bound is >= the value, or in the implicit overflow
    bucket.  Bounded memory regardless of sample count — this is what
    replaces the unbounded per-VC ``delays`` lists.
    """

    __slots__ = ("bounds", "counts", "overflow", "count", "sum",
                 "min", "max")

    kind = "histogram"

    def __init__(self, buckets: Optional[Iterable[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = tuple(buckets) if buckets is not None \
            else TIME_BUCKETS
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.counts: List[int] = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        if value != value:  # NaN: e.g. a delay whose send time was evicted
            return
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        i = bisect_left(self.bounds, value)
        if i < len(self.counts):
            self.counts[i] += 1
        else:
            self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket bounds (upper-bound biased)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            if running >= target:
                return bound
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        empty = self.count == 0
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self.bounds, self.counts) if n
            ],
            "overflow": self.overflow,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


class _NullInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    __slots__ = ()

    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "null"}


NULL_COUNTER = _NullInstrument()
NULL_GAUGE = _NullInstrument()
NULL_HISTOGRAM = _NullInstrument()


class MetricsRegistry:
    """Home of every instrument for one simulated deployment.

    ``enabled`` is fixed at construction: components cache instrument
    references, so flipping it later would not affect already-wired
    hot paths.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, str, LabelKey], Any] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, factory, component: str, name: str,
             labels: Mapping[str, Any], kind: str):
        key = (component, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = factory()
            self._instruments[key] = inst
        elif inst.kind != kind:
            raise TypeError(
                f"metric {component}.{name}{dict(labels)!r} already "
                f"registered as a {inst.kind}, requested {kind}")
        return inst

    def counter(self, component: str, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        return self._get(Counter, component, name, labels, "counter")

    def gauge(self, component: str, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        return self._get(Gauge, component, name, labels, "gauge")

    def histogram(self, component: str, name: str,
                  buckets: Optional[Iterable[float]] = None,
                  **labels: Any) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        return self._get(lambda: Histogram(buckets), component, name,
                         labels, "histogram")

    def find(self, component: Optional[str] = None,
             name: Optional[str] = None) -> Dict[Tuple[str, str, LabelKey], Any]:
        """All instruments matching the given component/name filters."""
        return {
            key: inst for key, inst in self._instruments.items()
            if (component is None or key[0] == component)
            and (name is None or key[1] == name)
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh run on the same registry)."""
        self._instruments.clear()

    def report(self) -> Dict[str, Any]:
        """Nested ``{component: {name: [{labels, ...snapshot}]}}`` dump."""
        out: Dict[str, Dict[str, List[Dict[str, Any]]]] = {}
        for (component, name, labels), inst in sorted(
                self._instruments.items(), key=lambda kv: kv[0]):
            entry = {"labels": dict(labels)}
            entry.update(inst.snapshot())
            out.setdefault(component, {}).setdefault(name, []).append(entry)
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.report(), indent=indent, sort_keys=True)

    @staticmethod
    def delta(before: Mapping[str, Any],
              after: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
        """Per-instrument diff of two :meth:`report` dumps.

        Returns ``{"component.name{label=v,...}": {"kind", "before",
        "after", "delta"}}``; counters and gauges diff their ``value``,
        histograms their ``count``.  Instruments present on only one
        side diff against zero and carry ``"only": "before"|"after"``.

        Monotonic instruments (counters and histogram counts) that go
        *backwards* mean the instrument was reset between snapshots —
        a component rebuilt, a registry recycled — not negative work.
        Such rows carry ``"reset": True`` and their ``delta`` is the
        ``after`` value (everything accumulated since the reset, the
        same convention Prometheus ``rate()`` uses), so rates derived
        from deltas are clamped ≥ 0.  Gauges may legitimately fall
        and are never treated as resets.
        """

        def flatten(report: Mapping[str, Any]) -> Dict[str, Tuple[str, float]]:
            flat: Dict[str, Tuple[str, float]] = {}
            for component, names in report.items():
                for name, entries in names.items():
                    for e in entries:
                        labels = ",".join(f"{k}={v}" for k, v in
                                          sorted(e.get("labels", {}).items()))
                        key = f"{component}.{name}{{{labels}}}"
                        kind = e.get("type", "counter")
                        val = e.get("count" if kind == "histogram"
                                    else "value", 0) or 0
                        flat[key] = (kind, float(val))
            return flat

        b, a = flatten(before), flatten(after)
        out: Dict[str, Dict[str, Any]] = {}
        for key in sorted(set(b) | set(a)):
            kind = (a.get(key) or b.get(key))[0]
            bv = b.get(key, (kind, 0.0))[1]
            av = a.get(key, (kind, 0.0))[1]
            row: Dict[str, Any] = {"kind": kind, "before": bv, "after": av,
                                   "delta": av - bv}
            if key not in b:
                row["only"] = "after"
            elif key not in a:
                row["only"] = "before"
            elif kind in ("counter", "histogram") and av < bv:
                row["reset"] = True
                row["delta"] = av
            out[key] = row
        return out
