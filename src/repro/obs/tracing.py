"""Lightweight span tracing over simulated time.

A :class:`Tracer` records named spans — intervals of *simulated* time
with arbitrary attributes and parent/child nesting — so an end-to-end
flow (publish courseware → download → present) can be decomposed into
the per-layer intervals the thesis's measurement chapter tabulates.

The clock is injected (normally ``lambda: sim.now``) so the tracer
works for both simulator-attached components and the standalone MHEG
engine.  Tracing defaults to **off** and is zero-cost when disabled:
``span()`` then returns one shared no-op context manager, so the hot
path pays a single attribute test.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["Span", "SpanRecord", "Tracer", "NULL_SPAN"]


@dataclass
class SpanRecord:
    """A finished span, as exported."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared no-op span for a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """An open span; close it with ``end()`` or use it as a context
    manager.  Attributes added with ``set()`` land in the record."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "start",
                 "attrs", "_open")

    def __init__(self, tracer: "Tracer", span_id: int,
                 parent_id: Optional[int], name: str, start: float,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.attrs = attrs
        self._open = True

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self) -> None:
        if self._open:
            self._open = False
            self._tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()
        return False


class Tracer:
    """Collects spans against an injected clock.

    ``max_spans`` bounds memory: the oldest finished spans are evicted
    first (the ``dropped`` counter says how many).
    """

    def __init__(self, clock: Callable[[], float], *, enabled: bool = False,
                 max_spans: int = 10_000) -> None:
        self.clock = clock
        self.enabled = enabled
        self.dropped = 0
        self._ids = itertools.count(1)
        self._stack: List[int] = []          # open-span ids, innermost last
        self._finished: Deque[SpanRecord] = deque(maxlen=max_spans)

    def span(self, name: str, **attrs: Any):
        """Open a span.  Returns the shared no-op span when disabled."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        sp = Span(self, next(self._ids), parent, name, self.clock(), attrs)
        self._stack.append(sp.span_id)
        return sp

    def _finish(self, sp: Span) -> None:
        # spans normally close innermost-first; tolerate out-of-order
        # closes from interleaved event callbacks
        if sp.span_id in self._stack:
            self._stack.remove(sp.span_id)
        if len(self._finished) == self._finished.maxlen:
            self.dropped += 1
        self._finished.append(SpanRecord(
            span_id=sp.span_id, parent_id=sp.parent_id, name=sp.name,
            start=sp.start, end=self.clock(), attrs=sp.attrs))

    @property
    def spans(self) -> List[SpanRecord]:
        return list(self._finished)

    def by_name(self, name: str) -> List[SpanRecord]:
        return [s for s in self._finished if s.name == name]

    def clear(self) -> None:
        self._finished.clear()
        self._stack.clear()
        self.dropped = 0

    def report(self) -> Dict[str, Any]:
        """Aggregate + raw dump; stable for JSON export."""
        agg: Dict[str, Dict[str, float]] = {}
        for s in self._finished:
            a = agg.setdefault(s.name, {"count": 0, "total": 0.0,
                                        "max": 0.0})
            a["count"] += 1
            a["total"] += s.duration
            if s.duration > a["max"]:
                a["max"] = s.duration
        return {
            "enabled": self.enabled,
            "dropped": self.dropped,
            "aggregate": agg,
            "spans": [s.to_dict() for s in self._finished],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.report(), indent=indent, sort_keys=True)
