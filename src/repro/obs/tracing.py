"""Lightweight span tracing over simulated time.

A :class:`Tracer` records named spans — intervals of *simulated* time
with arbitrary attributes and parent/child nesting — so an end-to-end
flow (publish courseware → download → present) can be decomposed into
the per-layer intervals the thesis's measurement chapter tabulates.

Cross-component requests are stitched together with a
:class:`TraceContext` — a ``(trace_id, span_id)`` pair minted when a
root span opens and carried in transport message headers across sites.
The tracer holds at most one *current* context, managed with explicit
``attach``/``detach`` tokens rather than a stack: each ``attach``
returns the context it displaced, and ``detach`` restores exactly that
snapshot.  Interleaved simulator callbacks can therefore open and
close spans in any order without corrupting each other's parentage —
a span opened outside any attached context is simply a new root.

The clock is injected (normally ``lambda: sim.now``) so the tracer
works for both simulator-attached components and the standalone MHEG
engine.  Tracing defaults to **off** and is zero-cost when disabled:
``span()`` then returns one shared no-op context manager, so the hot
path pays a single attribute test.

At scale the tracer sheds load under a
:class:`~repro.obs.sampling.SamplingPolicy` (see :meth:`apply_policy`):
head-based trace sampling drops whole trace trees at finish time (the
decision is a pure seeded function of the trace id, so every child —
local or remote — inherits it and kept trees stay connected), and the
finished-span store can be a seeded reservoir (uniform over the run)
instead of the newest-wins ring.  A ``sink`` callable, when attached,
receives every *kept* finished :class:`SpanRecord` as it closes, which
is how the streaming sidecar gets full sampled fidelity on disk while
memory stays bounded.
"""

from __future__ import annotations

import itertools
import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Union

from repro.obs.sampling import trace_sampled

__all__ = ["Span", "SpanRecord", "TraceContext", "Tracer", "NULL_SPAN"]


@dataclass(frozen=True)
class TraceContext:
    """Wire-portable identity of one span within one trace."""

    trace_id: int
    span_id: int

    def to_dict(self) -> Dict[str, int]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}


@dataclass
class SpanRecord:
    """A finished span, as exported."""

    span_id: int
    parent_id: Optional[int]
    trace_id: int
    name: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        return cls(span_id=payload["span_id"],
                   parent_id=payload.get("parent_id"),
                   trace_id=payload["trace_id"],
                   name=payload["name"],
                   start=payload["start"],
                   end=payload["end"],
                   attrs=dict(payload.get("attrs") or {}))


class _NullSpan:
    """Shared no-op span for a disabled tracer."""

    __slots__ = ()

    #: a disabled span carries no trace identity to propagate
    context = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """An open span; close it with ``end()`` or use it as a context
    manager.  Attributes added with ``set()`` land in the record.

    Entering the span as a context manager attaches its context to the
    tracer (so spans opened inside become children); a bare ``span()``
    call leaves the ambient context untouched.
    """

    __slots__ = ("_tracer", "span_id", "parent_id", "trace_id", "name",
                 "start", "attrs", "_open", "_token", "_attached")

    def __init__(self, tracer: "Tracer", span_id: int,
                 parent_id: Optional[int], trace_id: int, name: str,
                 start: float, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.name = name
        self.start = start
        self.attrs = attrs
        self._open = True
        self._token: Optional[TraceContext] = None
        self._attached = False

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self) -> None:
        if self._open:
            self._open = False
            if self._attached:
                self._attached = False
                self._tracer.detach(self._token)
                self._token = None
            self._tracer._finish(self)

    def __enter__(self) -> "Span":
        if self._open and not self._attached:
            self._token = self._tracer.attach(self.context)
            self._attached = True
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()
        return False


def _quantile(sorted_values: List[float], q: float) -> float:
    """Exact nearest-rank quantile of a pre-sorted sample."""
    idx = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[idx]


class Tracer:
    """Collects spans against an injected clock.

    ``max_spans`` bounds memory: the oldest finished spans are evicted
    first (the ``dropped`` counter says how many).
    """

    def __init__(self, clock: Callable[[], float], *, enabled: bool = False,
                 max_spans: int = 10_000) -> None:
        self.clock = clock
        self.enabled = enabled
        self.dropped = 0
        #: spans discarded by head-based trace sampling (whole trees)
        self.sampled_out = 0
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._current: Optional[TraceContext] = None
        self._max_spans = max_spans
        self._finished: Deque[SpanRecord] = deque(maxlen=max_spans)
        #: reservoir store, installed by apply_policy(span_reservoir=N)
        self._reservoir = None
        self._sample_rate = 1.0
        self._sample_seed = 0
        #: receives every kept SpanRecord at finish (streaming sidecar)
        self.sink: Optional[Callable[[SpanRecord], None]] = None
        #: OverheadMeter charged per finished span, when attached
        self.meter = None

    def apply_policy(self, policy) -> None:
        """Install a :class:`~repro.obs.sampling.SamplingPolicy`.

        The default policy restores today's keep-everything behaviour;
        a ``span_reservoir`` switches the finished-span store to a
        seeded uniform reservoir over the whole run.
        """
        from repro.obs.sampling import Reservoir

        self._sample_rate = policy.trace_sample_rate
        self._sample_seed = policy.seed
        if policy.span_reservoir is not None:
            self._reservoir = Reservoir(policy.span_reservoir,
                                        seed=policy.seed)
        else:
            self._reservoir = None

    # -- context management ----------------------------------------------

    @property
    def current(self) -> Optional[TraceContext]:
        """The attached context new spans will parent to, if any."""
        return self._current

    def attach(self, ctx: Optional[TraceContext]) -> Optional[TraceContext]:
        """Make *ctx* the current context; returns a token (the
        displaced context) to hand back to :meth:`detach`."""
        token = self._current
        self._current = ctx
        return token

    def detach(self, token: Optional[TraceContext]) -> None:
        """Restore the context snapshot returned by :meth:`attach`."""
        self._current = token

    # -- spans -----------------------------------------------------------

    def span(self, name: str,
             parent: Optional[Union[TraceContext, "Span"]] = None,
             **attrs: Any):
        """Open a span.  Returns the shared no-op span when disabled.

        The parent is *parent* if given (a :class:`TraceContext` or an
        open :class:`Span`), else the currently attached context; with
        neither, the span roots a fresh trace.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = self._current
        elif isinstance(parent, Span):
            parent = parent.context
        if parent is not None:
            trace_id = parent.trace_id
            parent_id: Optional[int] = parent.span_id
        else:
            trace_id = next(self._trace_ids)
            parent_id = None
        return Span(self, next(self._ids), parent_id, trace_id, name,
                    self.clock(), attrs)

    def _finish(self, sp: Span) -> None:
        meter = self.meter
        t0 = meter.now() if meter is not None else 0.0
        if self._sample_rate < 1.0 and not trace_sampled(
                sp.trace_id, self._sample_rate, self._sample_seed):
            # head-based: the whole tree shares this decision, so a
            # dropped span never orphans a kept child
            self.sampled_out += 1
            if meter is not None:
                meter.charge("tracer", t0)
            return
        rec = SpanRecord(
            span_id=sp.span_id, parent_id=sp.parent_id,
            trace_id=sp.trace_id, name=sp.name, start=sp.start,
            end=self.clock(), attrs=sp.attrs)
        if self.sink is not None:
            self.sink(rec)
        if self._reservoir is not None:
            self._reservoir.offer(rec)
            self.dropped = self._reservoir.evicted
        else:
            if len(self._finished) == self._finished.maxlen:
                self.dropped += 1
            self._finished.append(rec)
        if meter is not None:
            meter.charge("tracer", t0)

    @property
    def spans(self) -> List[SpanRecord]:
        if self._reservoir is not None:
            return sorted(self._reservoir.items(),
                          key=lambda s: s.span_id)
        return list(self._finished)

    def by_name(self, name: str) -> List[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    def by_trace(self, trace_id: int) -> List[SpanRecord]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def clear(self) -> None:
        self._finished.clear()
        if self._reservoir is not None:
            self._reservoir.clear()
        self._current = None
        self.dropped = 0
        self.sampled_out = 0

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-name duration stats (count/total/min/mean/max/p50/p99)."""
        durations: Dict[str, List[float]] = {}
        for s in self.spans:
            durations.setdefault(s.name, []).append(s.duration)
        agg: Dict[str, Dict[str, float]] = {}
        for name, durs in durations.items():
            durs.sort()
            total = sum(durs)
            agg[name] = {
                "count": len(durs),
                "total": total,
                "min": durs[0],
                "mean": total / len(durs),
                "max": durs[-1],
                "p50": _quantile(durs, 0.5),
                "p99": _quantile(durs, 0.99),
            }
        return agg

    def critical(self, trace_id: Optional[int] = None) -> Dict[str, Any]:
        """Critical-path analysis of the finished spans.

        With *trace_id*, the full analysis of that one trace (see
        :func:`repro.obs.critical.analyze_trace`); without, the
        cross-trace attribution summary — the live-tracer entry point
        to the same analysis the ``repro.obs critical`` CLI runs on
        archives.
        """
        from repro.obs import critical as _critical

        spans = [s.to_dict() for s in self.spans]
        if trace_id is not None:
            group = [s for s in spans if s["trace_id"] == trace_id]
            if not group:
                raise ValueError(f"no finished spans for trace {trace_id}")
            return _critical.analyze_trace(group)
        return _critical.attribution(spans)

    def report(self) -> Dict[str, Any]:
        """Aggregate + raw dump; stable for JSON export."""
        return {
            "enabled": self.enabled,
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
            "aggregate": self.aggregate(),
            "spans": [s.to_dict() for s in self.spans],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.report(), indent=indent, sort_keys=True)
