"""Rendering for metrics / trace / SLO dumps (the ``repro.obs`` CLI).

Everything here is pure string building over the JSON artefacts the
benchmarks and ``MitsSystem.snapshot()`` produce:

* ``metrics_<scenario>.json`` — a ``MetricsRegistry.report()`` dump,
  possibly wrapped in ``{"name", "sim_time", "metrics": ...}``;
* ``trace_<scenario>.jsonl`` — one span or flight event per line.

The renderers are deliberately plain ASCII so output is stable in CI
logs and easy to assert on in tests.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.slo import SloResult

__all__ = [
    "find_accounting_sidecar",
    "find_timeseries_sidecar",
    "find_trace_sidecar",
    "fmt_seconds",
    "load_metrics_file",
    "load_trace_file",
    "render_metrics_summary",
    "render_overhead",
    "render_slo_table",
    "render_slow_spans",
    "render_telemetry_health",
    "render_trace_tree",
    "render_traces",
]

#: character cells in a waterfall bar
BAR_WIDTH = 32


def load_metrics_file(path: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Returns ``(meta, metrics_report)``.

    Accepts both the benchmark wrapper (``{"name", "sim_time",
    "events_run", "metrics": {...}}``) and a bare registry report.
    """
    with open(path) as fh:
        payload = json.load(fh)
    if "metrics" in payload and isinstance(payload["metrics"], dict):
        meta = {k: v for k, v in payload.items() if k != "metrics"}
        return meta, payload["metrics"]
    return {}, payload


def load_trace_file(path: str) -> Tuple[List[Dict[str, Any]],
                                        List[Dict[str, Any]]]:
    """Returns ``(spans, events)`` from a ``trace_*.jsonl`` dump.

    Lines are classified by their ``record`` tag when present, else by
    shape (a span has ``span_id``, an event has ``component``).  The
    tag is deliberately NOT called ``kind`` — flight events already
    carry a ``kind`` field of their own.
    """
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            tag = rec.pop("record", None)
            if tag == "span" or (tag is None and "span_id" in rec):
                spans.append(rec)
            elif tag == "event" or (tag is None and "component" in rec):
                events.append(rec)
    return spans, events


def find_trace_sidecar(metrics_path: str) -> Optional[str]:
    """``metrics_<name>.json`` → sibling ``trace_<name>.jsonl``, if any."""
    directory, base = os.path.split(metrics_path)
    if not base.startswith("metrics_"):
        return None
    candidate = os.path.join(
        directory, "trace_" + base[len("metrics_"):].rsplit(".", 1)[0]
        + ".jsonl")
    return candidate if os.path.exists(candidate) else None


def find_timeseries_sidecar(metrics_path: str) -> Optional[str]:
    """``metrics_<name>.json`` → sibling ``timeseries_<name>.json``."""
    directory, base = os.path.split(metrics_path)
    if not base.startswith("metrics_"):
        return None
    candidate = os.path.join(directory,
                             "timeseries_" + base[len("metrics_"):])
    return candidate if os.path.exists(candidate) else None


def find_accounting_sidecar(metrics_path: str) -> Optional[str]:
    """``metrics_<name>.json`` → sibling ``accounting_<name>.json``."""
    directory, base = os.path.split(metrics_path)
    if not base.startswith("metrics_"):
        return None
    candidate = os.path.join(directory,
                             "accounting_" + base[len("metrics_"):])
    return candidate if os.path.exists(candidate) else None


# -- formatting helpers ----------------------------------------------------


def fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _fmt_number(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value):
        return str(int(value))
    return f"{value:.4g}"


def _pad(text: str, width: int) -> str:
    return text[:width].ljust(width)


# -- metrics ----------------------------------------------------------------


def render_metrics_summary(report: Mapping[str, Any]) -> str:
    """One line per metric name: series count plus headline stats."""
    lines = ["metric                                   kind       series  "
             "headline",
             "-" * 78]
    for component in sorted(report):
        for name in sorted(report[component]):
            entries = report[component][name]
            kinds = {e.get("type", "?") for e in entries}
            kind = kinds.pop() if len(kinds) == 1 else "mixed"
            if kind == "counter":
                headline = f"total {_fmt_number(sum(e['value'] for e in entries))}"
            elif kind == "gauge":
                peaks = [e["max"] for e in entries if e.get("max") is not None]
                headline = f"peak {_fmt_number(max(peaks))}" if peaks else "-"
            elif kind == "histogram":
                samples = sum(e.get("count", 0) for e in entries)
                p99s = [e["p99"] for e in entries if e.get("count", 0)]
                headline = f"{samples} samples"
                if p99s:
                    headline += (f"  worst p99 {fmt_seconds(max(p99s))}")
            else:
                headline = "-"
            lines.append(f"{_pad(component + '.' + name, 41)}"
                         f"{_pad(kind, 11)}{len(entries):>6}  {headline}")
    return "\n".join(lines)


# -- telemetry health -------------------------------------------------------


def render_telemetry_health(health: Mapping[str, Any]) -> str:
    """Loss accounting: is any of this run's telemetry truncated?

    Works on the ``telemetry`` block ``dump_observability`` writes into
    ``metrics_*.json`` (or the equivalent live dict).  Dropped flight
    events, dropped spans, and sampler ring evictions are flagged with
    a leading ``!`` so silent truncation is visible in every summary.
    """
    lines = ["telemetry health"]
    flight_dropped = health.get("flight_dropped", 0)
    marker = "!" if flight_dropped else " "
    lines.append(f" {marker} flight recorder: "
                 f"{health.get('flight_recorded', 0)} events recorded, "
                 f"{flight_dropped} evicted from the ring")
    if "flight_overflow_kept" in health:
        lines.append(f"   overflow reservoir: "
                     f"{health.get('flight_overflow_kept', 0)} evicted "
                     f"events salvaged")
    tracer_dropped = health.get("tracer_dropped", 0)
    marker = "!" if tracer_dropped else " "
    lines.append(f" {marker} tracer: {health.get('tracer_spans', 0)} "
                 f"spans kept, {tracer_dropped} dropped")
    evictions = health.get("sampler_evictions", 0)
    marker = "!" if evictions else " "
    lines.append(f" {marker} sampler: {health.get('sampler_samples', 0)} "
                 f"samples, {evictions} ring evictions")
    if flight_dropped or tracer_dropped or evictions:
        lines.append("   (!) telemetry was truncated — oldest data is "
                     "gone; raise capacities to keep it")
    return "\n".join(lines)


def render_overhead(overhead: Mapping[str, Any]) -> str:
    """What the obs stack itself cost (the ``overhead`` block an
    :class:`~repro.obs.meter.OverheadMeter` exports into
    ``metrics_*.json``)."""
    pct = overhead.get("obs_overhead_pct", 0.0)
    lines = [f"observability overhead: {pct:.2f}% of wall "
             f"({fmt_seconds(overhead.get('obs_seconds', 0.0))} of "
             f"{fmt_seconds(overhead.get('wall_seconds', 0.0))}, "
             f"{overhead.get('obs_bytes', 0)} bytes written)"]
    components = overhead.get("components", {})
    for name in sorted(components):
        cost = components[name]
        line = (f"    {_pad(name, 12)}"
                f"{fmt_seconds(cost.get('seconds', 0.0)):>10}  "
                f"{cost.get('calls', 0):>8} calls")
        if cost.get("bytes"):
            line += f"  {cost['bytes']} bytes"
        lines.append(line)
    return "\n".join(lines)


# -- SLOs -------------------------------------------------------------------


def render_slo_table(results: Sequence[SloResult]) -> str:
    lines = [_pad("SLO", 22) + _pad("objective", 44)
             + _pad("observed", 12) + "verdict",
             "-" * 88]
    for r in results:
        slo = r.slo
        target = f"{slo.component}.{slo.metric} {slo.stat} " \
                 f"{slo.op} {_fmt_number(slo.threshold)}"
        if r.skipped:
            verdict = "SKIP (no data)"
        else:
            verdict = "PASS" if r.ok else "FAIL"
        lines.append(f"{_pad(slo.name, 22)}{_pad(target, 44)}"
                     f"{_pad(_fmt_number(r.observed), 12)}{verdict}")
    status = "all SLOs met" if all(r.ok for r in results) \
        else "SLO VIOLATIONS PRESENT"
    lines.append(status)
    return "\n".join(lines)


# -- traces -----------------------------------------------------------------


def _children_index(spans: Sequence[Mapping[str, Any]]
                    ) -> Tuple[List[Mapping[str, Any]],
                               Dict[int, List[Mapping[str, Any]]]]:
    """Roots and a parent_id -> children map, both start-ordered."""
    ids = {s["span_id"] for s in spans}
    roots = []
    children: Dict[int, List[Mapping[str, Any]]] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is None or parent not in ids:
            roots.append(s)
        else:
            children.setdefault(parent, []).append(s)
    key = lambda s: (s["start"], s["span_id"])  # noqa: E731
    roots.sort(key=key)
    for lst in children.values():
        lst.sort(key=key)
    return roots, children


def _bar(span: Mapping[str, Any], t0: float, extent: float) -> str:
    if extent <= 0:
        return "#" * BAR_WIDTH
    lead = int((span["start"] - t0) / extent * BAR_WIDTH)
    lead = min(lead, BAR_WIDTH - 1)
    fill = max(1, round((span["end"] - span["start"]) / extent * BAR_WIDTH))
    fill = min(fill, BAR_WIDTH - lead)
    return "." * lead + "#" * fill + "." * (BAR_WIDTH - lead - fill)


def render_trace_tree(spans: Sequence[Mapping[str, Any]],
                      events: Sequence[Mapping[str, Any]] = ()) -> str:
    """Indented tree + waterfall bars for the spans of ONE trace."""
    if not spans:
        return "(no spans)"
    t0 = min(s["start"] for s in spans)
    t1 = max(s["end"] for s in spans)
    extent = t1 - t0
    roots, children = _children_index(spans)
    lines: List[str] = []

    def walk(span: Mapping[str, Any], depth: int) -> None:
        name = "  " * depth + span["name"]
        dur = fmt_seconds(span["end"] - span["start"])
        lines.append(f"{_pad(name, 44)}{dur:>10}  "
                     f"|{_bar(span, t0, extent)}|")
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    for ev in sorted(events, key=lambda e: e["time"]):
        lines.append(f"  ! {ev['severity']}: {ev['component']}."
                     f"{ev['kind']} at {fmt_seconds(ev['time'] - t0)} "
                     f"{ev.get('attrs', {})}")
    return "\n".join(lines)


def render_slow_spans(spans: Sequence[Mapping[str, Any]],
                      top: int = 10) -> str:
    """The *top* longest spans across all traces."""
    ranked = sorted(spans, key=lambda s: s["end"] - s["start"],
                    reverse=True)[:top]
    lines = [f"top {len(ranked)} slow spans",
             "-" * 60]
    for s in ranked:
        lines.append(f"{_pad(s['name'], 36)}"
                     f"{fmt_seconds(s['end'] - s['start']):>10}  "
                     f"trace {s.get('trace_id', '-')}")
    return "\n".join(lines)


def render_traces(spans: Sequence[Mapping[str, Any]],
                  events: Sequence[Mapping[str, Any]] = (),
                  *, top: int = 10, max_traces: int = 5) -> str:
    """Group spans by trace and render the largest trees first."""
    if not spans:
        return "(no spans recorded)"
    by_trace: Dict[Any, List[Mapping[str, Any]]] = {}
    for s in spans:
        by_trace.setdefault(s.get("trace_id"), []).append(s)
    events_by_trace: Dict[Any, List[Mapping[str, Any]]] = {}
    for e in events:
        if e.get("trace_id") is not None:
            events_by_trace.setdefault(e["trace_id"], []).append(e)
    ordered = sorted(by_trace.items(),
                     key=lambda kv: len(kv[1]), reverse=True)
    sections: List[str] = []
    for trace_id, group in ordered[:max_traces]:
        t0 = min(s["start"] for s in group)
        t1 = max(s["end"] for s in group)
        sections.append(
            f"trace {trace_id} · {len(group)} spans · "
            f"{fmt_seconds(t1 - t0)}")
        sections.append(render_trace_tree(
            group, events_by_trace.get(trace_id, [])))
        sections.append("")
    hidden = len(ordered) - min(len(ordered), max_traces)
    if hidden:
        sections.append(f"({hidden} smaller traces not shown)")
    sections.append(render_slow_spans(spans, top=top))
    return "\n".join(sections)
