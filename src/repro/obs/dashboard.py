"""ASCII dashboard: sparkline panels over time-series telemetry.

Renders the :class:`~repro.obs.timeseries.TelemetrySampler` rings —
live from a running deployment or reloaded from an archived
``timeseries_*.json`` sidecar — as fixed-width ASCII panels, one per
watched metric, plus the event-loop profiler's top-N table when a
profile is available.  Everything is plain ASCII string building (like
:mod:`repro.obs.report`) so output is stable in CI logs and easy to
assert on in tests.

The default panel set covers the signals the thesis's evaluation
watched during a session: link queue occupancy, transport window
occupancy, player buffer fill, simulator queue depth, and the event /
cell rates.  Extra panels are picked up automatically for any metric
named in :data:`DEFAULT_PANELS`; pass your own panel list for other
views.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.timeseries import Series, load_timeseries

__all__ = [
    "DEFAULT_PANELS",
    "Panel",
    "load_timeseries_file",
    "render_dashboard",
    "render_panel",
    "render_profile",
    "sparkline",
]

#: density ramp for sparkline cells, lightest to heaviest (pure ASCII)
RAMP = " .:-=+*#%@"

#: sparkline width in character cells
WIDTH = 60


class Panel:
    """One dashboard panel: a metric plus how to read it.

    ``channel`` picks the series ring to plot: ``values`` (gauges,
    levels), ``rates`` (counters, units/s), or ``p99s`` (histograms,
    latency trajectory).
    """

    def __init__(self, title: str, component: str, name: str,
                 channel: str = "values", unit: str = "") -> None:
        self.title = title
        self.component = component
        self.name = name
        self.channel = channel
        self.unit = unit


DEFAULT_PANELS: Tuple[Panel, ...] = (
    Panel("link queue occupancy", "link", "queue_occupancy",
          unit="cells"),
    Panel("transport window occupancy", "connection", "window_occupancy",
          unit="pdus"),
    Panel("player buffer", "player", "buffer_frames", unit="frames"),
    Panel("simulator queue depth", "simulator", "queue_depth",
          unit="events"),
    Panel("event rate", "simulator", "events_run", channel="rates",
          unit="events/s"),
    Panel("cell rate", "link", "cells_transmitted", channel="rates",
          unit="cells/s"),
    Panel("MHEG link firings", "mheg", "links_fired", channel="rates",
          unit="links/s"),
    Panel("RPC round-trip p99", "connection", "rtt_seconds",
          channel="p99s", unit="s"),
)


def load_timeseries_file(path: str) -> Dict[str, Any]:
    """Load a ``timeseries_*.json`` sidecar (or a ``MitsSystem``
    snapshot — its ``timeseries`` section is unwrapped)."""
    with open(path) as fh:
        payload = json.load(fh)
    if "series" not in payload and isinstance(
            payload.get("timeseries"), dict):
        payload = payload["timeseries"]
    return payload


# -- sparklines -------------------------------------------------------------


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1e6:
        return f"{value / 1e6:.2f}M"
    if abs(value) >= 1e4:
        return f"{value / 1e3:.1f}k"
    if abs(value) >= 1 and value == int(value):
        return str(int(value))
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.3g}"


def sparkline(values: Sequence[float], width: int = WIDTH,
              lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Resample *values* to *width* cells and map onto the ramp.

    A flat non-zero series renders mid-ramp (a visible plateau), an
    all-zero series renders as spaces, an empty one as dots.
    """
    if not values:
        return "." * width
    vals = list(values)
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    cells: List[str] = []
    n = len(vals)
    for i in range(width):
        # average the value window this cell covers (simple decimation)
        start = i * n // width
        end = max(start + 1, (i + 1) * n // width)
        v = sum(vals[start:end]) / (end - start)
        if hi <= lo:
            cells.append(RAMP[len(RAMP) // 2] if v else " ")
            continue
        frac = (v - lo) / (hi - lo)
        idx = int(frac * (len(RAMP) - 1) + 0.5)
        cells.append(RAMP[max(0, min(idx, len(RAMP) - 1))])
    return "".join(cells)


def _merge(series_list: Sequence[Series], channel: str
           ) -> Tuple[List[float], List[float]]:
    """Sum a channel across the instruments of one metric, aligned by
    sample timestamp (series may start at different ticks)."""
    acc: Dict[float, float] = {}
    for series in series_list:
        ring = getattr(series, channel, None)
        if ring is None:
            continue
        for t, v in zip(series.times, ring):
            acc[t] = acc.get(t, 0.0) + v
    times = sorted(acc)
    return times, [acc[t] for t in times]


# -- panels -----------------------------------------------------------------


def render_panel(panel: Panel, series_list: Sequence[Series],
                 width: int = WIDTH) -> Optional[str]:
    """Two lines: a header with headline stats and the sparkline.

    Returns None when no series carries the panel's metric — the
    dashboard simply omits panels a scenario never exercised.
    """
    matching = [s for s in series_list
                if s.component == panel.component and s.name == panel.name]
    if not matching:
        return None
    times, values = _merge(matching, panel.channel)
    if not values:
        return None
    unit = f" {panel.unit}" if panel.unit else ""
    head = (f"-- {panel.title} [{panel.component}.{panel.name}"
            f"{'/' + panel.channel if panel.channel != 'values' else ''}]"
            f" · {len(matching)} series")
    stats = (f"   last {_fmt(values[-1])}{unit}  min {_fmt(min(values))}"
             f"  max {_fmt(max(values))}"
             f"  mean {_fmt(sum(values) / len(values))}")
    span = f"t={times[0]:.2f}s..{times[-1]:.2f}s" if times else ""
    return "\n".join([
        head,
        f"  |{sparkline(values, width)}|  {span}",
        stats,
    ])


def render_profile(profile: Mapping[str, Any], top: int = 10) -> str:
    """The event-loop profiler's top-N hotspot table."""
    hotspots = list(profile.get("hotspots", []))[:top]
    if not profile.get("enabled") or not hotspots:
        return "(profiler disabled — run with profile=True " \
               "or --profile for hotspots)"
    ratio = profile.get("sim_to_wall")
    lines = [
        f"event-loop profile: {profile.get('events', 0)} events, "
        f"{profile.get('wall_seconds', 0.0):.3f}s wall, "
        f"{profile.get('sim_seconds', 0.0):.3f}s simulated"
        + (f"  ({ratio:.0f}x real time)" if ratio else ""),
        f"{'callsite':<44}{'calls':>8}{'cum':>10}{'self':>10}"
        f"{'mean':>10}",
        "-" * 82,
    ]
    for h in hotspots:
        lines.append(
            f"{h['callsite'][:43]:<44}{h['calls']:>8}"
            f"{h['cum_seconds'] * 1e3:>9.2f}m"
            f"{h['self_seconds'] * 1e3:>9.2f}m"
            f"{h['mean_us']:>8.1f}us")
    return "\n".join(lines)


# -- the dashboard ----------------------------------------------------------


def render_dashboard(source: Any, *,
                     profile: Optional[Mapping[str, Any]] = None,
                     panels: Sequence[Panel] = DEFAULT_PANELS,
                     width: int = WIDTH, top: int = 10,
                     title: str = "") -> str:
    """Render every applicable panel plus telemetry health + profile.

    *source* is a :class:`TelemetrySampler`, a list of
    :class:`Series`, or a snapshot/sidecar dict.
    """
    meta: Dict[str, Any] = {}
    if hasattr(source, "series") and callable(source.series):
        series_list = source.series()
        meta = {"samples": source.samples, "evictions": source.evictions,
                "interval": source.interval}
    elif isinstance(source, Mapping):
        series_list = load_timeseries(source)
        meta = {k: source.get(k) for k in
                ("samples", "evictions", "interval") if k in source}
    else:
        series_list = list(source)

    lines: List[str] = []
    header = f"== dashboard{': ' + title if title else ''} =="
    if meta:
        header += (f"  ({meta.get('samples', '?')} samples @ "
                   f"{meta.get('interval', '?')}s"
                   f", {meta.get('evictions', 0)} ring evictions)")
    lines.append(header)
    if meta.get("evictions"):
        lines.append(f"  ! {meta['evictions']} samples evicted from "
                     f"full rings — oldest history is gone")
    rendered = 0
    for panel in panels:
        block = render_panel(panel, series_list, width)
        if block is not None:
            lines.append("")
            lines.append(block)
            rendered += 1
    if not rendered:
        lines.append("(no series match any panel — is telemetry "
                     "enabled on this run?)")
    if profile is not None:
        lines.append("")
        lines.append(render_profile(profile, top=top))
    return "\n".join(lines)
