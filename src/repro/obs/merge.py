"""Shard-ready merge operators: one view over many runs.

The thesis's trial ran telelearning across many OCRInet sites at once;
every observability store in this repo (PRs 1-8) assumed a single
process.  This module closes that gap with **deterministic,
order-insensitive** merge operators over archived observability — the
merge-at-boundary contract ROADMAP item 2 (sharded parallel
simulation) and item 3 (campus-scale fleets) both need, de-risked
before any simulator sharding lands.

Per store, the merge semantics are:

=================  ======================================================
store              merged how
=================  ======================================================
counters           values sum
histograms         bucket-wise count add; count/sum/overflow sum;
                   min/max combine; mean and p50/p99 recomputed from
                   the merged buckets (same upper-bound-biased
                   quantile the live :class:`Histogram` uses)
gauges             the shard with the **latest sim time** wins the
                   value (ties broken by shard name, then value);
                   min/max watermarks combine; the winning shard is
                   recorded per gauge in the ``provenance.gauges``
                   block so re-merging a merged archive ranks by the
                   *original* source time, keeping the operator
                   associative
trace forests      trace ids must be pairwise disjoint; colliding
                   trace/span ids in later shards (canonical order)
                   are remapped above the global max — parent links
                   and event correlations follow — and the remap
                   count lands in ``provenance``
flight events      k-way merged by sim time (ties broken by
                   component/kind/severity/trace/attrs so the order
                   is total); ring-overflow accounting sums in the
                   merged telemetry-health block
telemetry series   same-key series are tick-aligned on the union of
                   sample times with carry-forward; counter and
                   histogram-count values sum (so the re-derived
                   rates are the sum of shard rates on a shared
                   grid), gauge values and histogram p99s take the
                   max; a series seen by exactly one shard passes
                   through verbatim
ledger (exact)     accounts union by ``(kind, key)``, every charged
                   field sums, shares and rates recomputed over the
                   merged totals
ledger (sketch)    space-saving summaries merge: estimates sum over
                   the shards that kept the entity, the error bound
                   grows by each kept shard's own error **plus the
                   minimum kept weight of every shard that evicted
                   in that kind but lacks the entity**, then the
                   union is re-trimmed to the smallest shard ``top_k``
                   (trims count as evictions).  The documented bound:
                   ``|true - estimate| <= error`` for every kept row,
                   and a row's merged error is never smaller than any
                   shard's error for it
watchdog           alerts concatenate into canonical (time, detector,
                   content) order; ``active`` keys union; detectors
                   dedupe
overhead meter     per-component seconds/calls/bytes sum; the merged
                   ``obs_overhead_pct`` is summed obs seconds over
                   summed wall seconds (aggregate utilisation across
                   the fleet, not elapsed time)
audit              checks sum, violations concatenate, ``ok`` is the
                   conjunction
SLOs               **never merged verdict-wise** — re-judged by
                   :class:`~repro.obs.slo.SloMonitor` over the merged
                   registry (with the merged watchdog alert count)
=================  ======================================================

Order-insensitivity is structural, not hoped-for: shards are first
sorted into a canonical order (name, sim time, events, metrics
digest), so ``merge([a, b]) == merge([b, a])`` byte for byte, and the
property suite (``tests/obs/test_merge_properties.py``) pins
commutativity, associativity, and identity.

:func:`merge_archives` produces one merged-archive dict — a
``metrics_*.json``-shaped payload tagged ``"merged": true`` with the
spans/events/timeseries/accounting embedded plus a per-shard
provenance block — which every ``repro.obs`` renderer accepts.
:func:`split_shard` is the inverse used by the split-run equivalence
harness: partition one run's observability by entity (VC, site,
stream...), merge the parts back, and the canonical content must
equal the identity-merged monolithic run exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.accounting import ACCOUNT_SUM_FIELDS, account_weight
from repro.obs.events import event_sort_key
from repro.obs.metrics import iter_report
from repro.obs.slo import judge_report
from repro.obs.timeseries import Series

__all__ = [
    "MERGE_VERSION",
    "is_merged_archive",
    "load_shard",
    "merge_archives",
    "merge_audit",
    "merge_events",
    "merge_ledger",
    "merge_metrics",
    "merge_overhead",
    "merge_spans",
    "merge_telemetry",
    "merge_timeseries",
    "merge_watchdog",
    "merged_canonical_form",
    "remap_disjoint",
    "shard_from_mits",
    "sketch_trim",
    "span_sort_key",
    "split_shard",
    "write_merged",
]

#: bump when the merged-archive shape changes incompatibly
MERGE_VERSION = 1

#: label keys that name a shardable entity, in partition priority
#: order (the split harness assigns an instrument to the shard its
#: first entity label hashes to)
ENTITY_LABELS = ("vc", "site", "host", "link", "stream", "player",
                 "trace", "student")


# -- canonical ordering -----------------------------------------------------


def _digest(payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.md5(blob.encode()).hexdigest()


def shard_sort_key(shard: Mapping[str, Any]) -> Tuple[Any, ...]:
    """Canonical shard order: the same fold regardless of input order."""
    return (str(shard.get("name", "")),
            float(shard.get("sim_time") or 0.0),
            int(shard.get("events_run") or 0),
            _digest(shard.get("metrics", {})))


def _canonical(shards: Iterable[Mapping[str, Any]]
               ) -> List[Mapping[str, Any]]:
    return sorted(shards, key=shard_sort_key)


def _flat_key(component: str, name: str,
              labels: Tuple[Tuple[str, str], ...]) -> str:
    body = ",".join(f"{k}={v}" for k, v in labels)
    return f"{component}.{name}{{{body}}}"


# -- metrics ----------------------------------------------------------------


def _sparse_quantile(buckets: List[Tuple[float, int]], count: int,
                     max_value: Optional[float], q: float) -> float:
    """The live :meth:`Histogram.quantile` over a sparse bucket list.

    Zero-count buckets can never be the *first* bound whose running
    total crosses the target, so iterating only the non-zero buckets
    reproduces the dense walk exactly.
    """
    if count == 0:
        return 0.0
    target = q * count
    running = 0
    for bound, n in buckets:
        running += n
        if running >= target:
            return bound
    return max_value if max_value is not None else 0.0


def _min_opt(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _max_opt(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def merge_metrics(shards: List[Mapping[str, Any]]
                  ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Merge shard metrics reports into one registry report.

    Returns ``(report, gauge_provenance)``.  *shards* must already be
    in canonical order; each is a shard dict carrying ``metrics``,
    ``sim_time``, ``name``, and (for re-merged inputs) an optional
    ``gauge_provenance`` naming each gauge's original source so the
    latest-sim-time rule stays associative across groupings.
    """
    state: Dict[Tuple[str, str, Tuple], Dict[str, Any]] = {}
    provenance: Dict[str, Dict[str, Any]] = {}
    for shard in shards:
        shard_name = str(shard.get("name", ""))
        shard_time = float(shard.get("sim_time") or 0.0)
        gprov = shard.get("gauge_provenance") or {}
        for component, name, labels, entry in iter_report(
                shard.get("metrics", {})):
            key = (component, name, labels)
            kind = entry.get("type")
            cur = state.get(key)
            if cur is not None and cur.get("type") != kind:
                # two shards of one deployment can't disagree on an
                # instrument's kind; merging anyway would corrupt both
                raise ValueError(
                    f"instrument kind conflict at "
                    f"{_flat_key(component, name, labels)}: "
                    f"{cur.get('type')} vs {kind} "
                    f"(shard {shard_name!r})")
            if kind == "counter":
                if cur is None:
                    cur = state[key] = {"type": "counter", "value": 0}
                cur["value"] += entry.get("value", 0)
            elif kind == "gauge":
                flat = _flat_key(component, name, labels)
                src = gprov.get(flat) or {"shard": shard_name,
                                          "sim_time": shard_time}
                rank = (float(src.get("sim_time") or 0.0),
                        str(src.get("shard", "")),
                        repr(entry.get("value")))
                if cur is None:
                    cur = state[key] = {
                        "type": "gauge", "value": entry.get("value"),
                        "min": entry.get("min"), "max": entry.get("max"),
                        "_rank": rank, "_src": src}
                else:
                    cur["min"] = _min_opt(cur["min"], entry.get("min"))
                    cur["max"] = _max_opt(cur["max"], entry.get("max"))
                    if rank > cur["_rank"]:
                        cur["value"] = entry.get("value")
                        cur["_rank"] = rank
                        cur["_src"] = src
            elif kind == "histogram":
                if cur is None:
                    cur = state[key] = {
                        "type": "histogram", "count": 0, "sum": 0.0,
                        "overflow": 0, "min": None, "max": None,
                        "_buckets": {}}
                cur["count"] += entry.get("count", 0)
                cur["sum"] += entry.get("sum", 0.0)
                cur["overflow"] += entry.get("overflow", 0)
                cur["min"] = _min_opt(cur["min"], entry.get("min"))
                cur["max"] = _max_opt(cur["max"], entry.get("max"))
                for b in entry.get("buckets", []):
                    le = b["le"]
                    cur["_buckets"][le] = (cur["_buckets"].get(le, 0)
                                           + b["count"])
            else:  # unknown instrument kind: keep the last seen entry
                state[key] = {k: v for k, v in entry.items()
                              if k != "labels"}

    report: Dict[str, Any] = {}
    for (component, name, labels) in sorted(state):
        cur = state[(component, name, labels)]
        entry: Dict[str, Any] = {"labels": dict(labels)}
        if cur.get("type") == "gauge":
            entry.update({"type": "gauge", "value": cur["value"],
                          "min": cur["min"], "max": cur["max"]})
            provenance[_flat_key(component, name, labels)] = \
                dict(cur["_src"])
        elif cur.get("type") == "histogram":
            buckets = sorted(cur["_buckets"].items())
            count = cur["count"]
            entry.update({
                "type": "histogram",
                "count": count,
                "sum": cur["sum"],
                "mean": cur["sum"] / count if count else 0.0,
                "min": cur["min"],
                "max": cur["max"],
                "buckets": [{"le": le, "count": n}
                            for le, n in buckets if n],
                "overflow": cur["overflow"],
                "p50": _sparse_quantile(buckets, count, cur["max"], 0.5),
                "p99": _sparse_quantile(buckets, count, cur["max"], 0.99),
            })
        else:
            entry.update(cur)
        report.setdefault(component, {}).setdefault(name, []).append(entry)
    return report, provenance


# -- trace forests & flight events ------------------------------------------


def span_sort_key(span: Mapping[str, Any]) -> Tuple[Any, ...]:
    """Total order over span dicts (start, trace, span id)."""
    return (span.get("start", 0.0), span.get("trace_id", 0),
            span.get("span_id", 0))


def remap_disjoint(shards: List[Dict[str, Any]]
                   ) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
    """Enforce pairwise-disjoint trace/span ids across shards.

    Shards that collide with an earlier shard (canonical order) have
    the colliding trace ids — and colliding span ids, with parent
    links following — remapped above the global max.  Event
    ``trace_id`` correlations are remapped consistently.  Returns the
    (possibly rewritten) shard list plus remap counts for the
    provenance block; disjoint inputs pass through untouched.
    """
    seen_traces: set = set()
    seen_spans: set = set()
    remapped_traces = 0
    remapped_spans = 0
    out: List[Dict[str, Any]] = []
    for shard in shards:
        spans = shard.get("spans") or []
        events = shard.get("events") or []
        shard_traces = {s["trace_id"] for s in spans} | {
            e["trace_id"] for e in events
            if e.get("trace_id") is not None}
        shard_spans = {s["span_id"] for s in spans}
        t_collide = sorted(t for t in shard_traces if t in seen_traces)
        s_collide = sorted(s for s in shard_spans if s in seen_spans)
        if t_collide or s_collide:
            nxt_t = max(seen_traces | shard_traces, default=0) + 1
            tmap = {}
            for t in t_collide:
                tmap[t] = nxt_t
                nxt_t += 1
            nxt_s = max(seen_spans | shard_spans, default=0) + 1
            smap = {}
            for s in s_collide:
                smap[s] = nxt_s
                nxt_s += 1
            remapped_traces += len(tmap)
            remapped_spans += len(smap)
            spans = [dict(s, trace_id=tmap.get(s["trace_id"],
                                               s["trace_id"]),
                          span_id=smap.get(s["span_id"], s["span_id"]),
                          parent_id=smap.get(s.get("parent_id"),
                                             s.get("parent_id")))
                     for s in spans]
            events = [dict(e, trace_id=tmap.get(e["trace_id"],
                                                e["trace_id"]))
                      if e.get("trace_id") is not None else e
                      for e in events]
            shard = dict(shard, spans=spans, events=events)
            shard_traces = {tmap.get(t, t) for t in shard_traces}
            shard_spans = {smap.get(s, s) for s in shard_spans}
        seen_traces |= shard_traces
        seen_spans |= shard_spans
        out.append(shard)
    return out, {"trace_id_remaps": remapped_traces,
                 "span_id_remaps": remapped_spans}


def merge_spans(shards: List[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Concatenate shard span forests into canonical start order."""
    spans = [s for shard in shards for s in (shard.get("spans") or [])]
    return sorted(spans, key=span_sort_key)


def merge_events(shards: List[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """K-way merge of flight-event lists by sim time (total order)."""
    events = [e for shard in shards for e in (shard.get("events") or [])]
    return sorted(events, key=event_sort_key)


# -- telemetry series -------------------------------------------------------


def _carry_forward(times: List[float], values: List[Any],
                   grid: List[float]) -> List[Optional[Any]]:
    """Value at or before each grid tick (None before the first)."""
    out: List[Optional[Any]] = []
    i = 0
    last: Optional[Any] = None
    for t in grid:
        while i < len(times) and times[i] <= t:
            last = values[i]
            i += 1
        out.append(last)
    return out


def _align_series(sources: List[Mapping[str, Any]]) -> Dict[str, Any]:
    """Tick-align same-key series from several shards onto the union
    grid: sum for cumulative kinds, max for levels and p99s."""
    first = sources[0]
    kind = first.get("kind", "gauge")
    grid = sorted({t for s in sources for t in s.get("times", [])})
    carried = [_carry_forward(s.get("times", []), s.get("values", []),
                              grid) for s in sources]
    p99_carried = None
    if kind == "histogram":
        p99_carried = [_carry_forward(s.get("times", []),
                                      s.get("p99s", []), grid)
                       for s in sources]
    merged = Series(first["component"], first["name"],
                    first.get("labels") or {}, kind,
                    capacity=max(2, len(grid)))
    for gi, t in enumerate(grid):
        at_tick = [c[gi] for c in carried]
        if kind in ("counter", "histogram"):
            # cumulative-from-zero: a shard with no sample yet
            # contributes 0, so the merged trajectory is the sum and
            # the re-derived rate on the union grid is the sum of the
            # shard rates
            value = sum(v for v in at_tick if v is not None)
        else:
            known = [v for v in at_tick if v is not None]
            value = max(known) if known else 0.0
        p99 = None
        if p99_carried is not None:
            known = [c[gi] for c in p99_carried if c[gi] is not None]
            p99 = max(known) if known else 0.0
        merged.record(t, value, p99=p99)
    out = merged.to_dict()
    out["evicted"] = sum(s.get("evicted", 0) for s in sources)
    if any("coalesced" in s for s in sources):
        out["coalesced"] = sum(s.get("coalesced", 0) for s in sources)
    return out


def merge_timeseries(shards: List[Mapping[str, Any]]
                     ) -> Optional[Dict[str, Any]]:
    """Merge sampler snapshots; a series held by one shard passes
    through verbatim, shared keys are tick-aligned."""
    snaps = [shard.get("timeseries") for shard in shards
             if shard.get("timeseries")]
    if not snaps:
        return None
    groups: Dict[Tuple, List[Mapping[str, Any]]] = {}
    for snap in snaps:
        for s in snap.get("series", []):
            key = (s["component"], s["name"],
                   tuple(sorted((s.get("labels") or {}).items())))
            groups.setdefault(key, []).append(s)
    series = [dict(groups[key][0]) if len(groups[key]) == 1
              else _align_series(groups[key])
              for key in sorted(groups)]
    intervals = [s.get("interval") for s in snaps
                 if s.get("interval") is not None]
    out: Dict[str, Any] = {
        "enabled": True,
        "interval": min(intervals) if intervals else None,
        "capacity": max(s.get("capacity", 0) for s in snaps),
        "samples": sum(s.get("samples", 0) for s in snaps),
        "evictions": sum(s.get("evictions", 0) for s in snaps),
        "series": series,
    }
    strides = [s["stride"] for s in snaps if "stride" in s]
    if strides:
        out["stride"] = max(strides)
        out["coalesced"] = sum(s.get("coalesced", 0) for s in snaps)
    return out


# -- ledger -----------------------------------------------------------------


def sketch_trim(snapshot: Mapping[str, Any], top_k: int
                ) -> Dict[str, Any]:
    """Project an exact ledger snapshot into sketch form: keep the
    ``top_k`` heaviest accounts per kind, count the rest as evictions.

    The result satisfies the space-saving absence property the merge's
    error rule leans on — any entity missing from a kind that evicted
    has true weight no larger than the minimum kept weight — which is
    what lets the equivalence harness check sketch-mode bounds against
    the exact monolithic ledger without a second run.
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    kinds: Dict[str, List[Dict[str, Any]]] = {}
    evictions: Dict[str, int] = {}
    for kind, rows in (snapshot.get("kinds") or {}).items():
        ranked = sorted(rows,
                        key=lambda r: (-account_weight(r), r["key"]))
        kept = sorted(ranked[:top_k], key=lambda r: r["key"])
        if len(ranked) > top_k:
            evictions[kind] = len(ranked) - top_k
        out_rows = []
        for r in kept:
            row = dict(r)
            row.setdefault("weight", account_weight(r))
            row.setdefault("error", 0.0)
            row["approx"] = row["error"] > 0
            out_rows.append(row)
        kinds[kind] = out_rows
    return {"enabled": snapshot.get("enabled", True), "kinds": kinds,
            "top_k": top_k,
            "evictions": dict(sorted(evictions.items()))}


def merge_ledger(shards: List[Mapping[str, Any]], *,
                 sim_time: Optional[float] = None
                 ) -> Optional[Dict[str, Any]]:
    """Merge ledger snapshots — exact when every shard is exact,
    space-saving sketch merge (with propagated error bounds) when any
    shard is a ``top_k`` sketch."""
    snaps = [shard.get("accounting") for shard in shards
             if shard.get("accounting")]
    snaps = [s for s in snaps if s.get("kinds") is not None]
    if not snaps:
        return None
    sketch = any(s.get("top_k") is not None for s in snaps)

    rows_by: Dict[Tuple[str, str], Dict[str, Any]] = {}
    present: Dict[Tuple[str, str], set] = {}
    for i, snap in enumerate(snaps):
        for kind, rows in (snap.get("kinds") or {}).items():
            for r in rows:
                rkey = (kind, r["key"])
                m = rows_by.get(rkey)
                if m is None:
                    m = rows_by[rkey] = {"kind": kind, "key": r["key"],
                                         "note": ""}
                    for f in ACCOUNT_SUM_FIELDS:
                        m[f] = 0 if f != "residency_seconds" else 0.0
                    if sketch:
                        m["weight"] = 0.0
                        m["error"] = 0.0
                for f in ACCOUNT_SUM_FIELDS:
                    m[f] += r.get(f, 0)
                if not m["note"] and r.get("note"):
                    m["note"] = r["note"]
                if sketch:
                    m["weight"] += r.get("weight", account_weight(r))
                    m["error"] += r.get("error", 0.0)
                present.setdefault(rkey, set()).add(i)

    evictions: Dict[str, int] = {}
    top_k: Optional[int] = None
    if sketch:
        # a shard that evicted in a kind may have charged any *absent*
        # entity up to its minimum kept weight before losing it — that
        # uncertainty propagates into the merged error bound
        min_weight: List[Dict[str, float]] = []
        for snap in snaps:
            ev = snap.get("evictions") or {}
            mw: Dict[str, float] = {}
            for kind, rows in (snap.get("kinds") or {}).items():
                if ev.get(kind, 0) > 0 and rows:
                    mw[kind] = min(r.get("weight", account_weight(r))
                                   for r in rows)
            min_weight.append(mw)
            for kind, n in ev.items():
                evictions[kind] = evictions.get(kind, 0) + n
        for (kind, key), m in rows_by.items():
            for i in range(len(snaps)):
                if i not in present[(kind, key)]:
                    m["error"] += min_weight[i].get(kind, 0.0)
            m["approx"] = m["error"] > 0
        top_k = min(s["top_k"] for s in snaps
                    if s.get("top_k") is not None)

    by_kind: Dict[str, List[Dict[str, Any]]] = {}
    for (kind, _key), m in rows_by.items():
        by_kind.setdefault(kind, []).append(m)
    kinds_out: Dict[str, List[Dict[str, Any]]] = {}
    for kind in sorted(by_kind):
        rows = sorted(by_kind[kind], key=lambda r: r["key"])
        if sketch and top_k is not None and len(rows) > top_k:
            kept = sorted(rows,
                          key=lambda r: (-r["weight"], r["key"]))[:top_k]
            evictions[kind] = (evictions.get(kind, 0)
                               + len(rows) - len(kept))
            rows = sorted(kept, key=lambda r: r["key"])
        total_bytes = sum(r["bytes_sent"] for r in rows)
        for r in rows:
            r["share"] = (r["bytes_sent"] / total_bytes
                          if total_bytes else 0.0)
            if sim_time:
                r["bits_per_sec"] = r["bytes_sent"] * 8.0 / sim_time
        kinds_out[kind] = rows
    merged: Dict[str, Any] = {"enabled": True, "kinds": kinds_out}
    if sketch:
        merged["top_k"] = top_k
        merged["evictions"] = dict(sorted(evictions.items()))
    return merged


# -- watchdog / overhead / audit / health -----------------------------------


def _alert_key(alert: Mapping[str, Any]) -> Tuple[Any, ...]:
    return (alert.get("time", 0.0), str(alert.get("detector", "")),
            json.dumps(alert, sort_keys=True, default=repr))


def merge_watchdog(shards: List[Mapping[str, Any]]
                   ) -> Optional[Dict[str, Any]]:
    """Alerts in canonical order, active keys unioned, detectors
    deduped (identical detector lists pass through as-is)."""
    snaps = [shard.get("watchdog") for shard in shards
             if shard.get("watchdog")]
    if not snaps:
        return None
    detectors = snaps[0].get("detectors", [])
    if any(s.get("detectors", []) != detectors for s in snaps[1:]):
        by_name: Dict[str, Any] = {}
        for s in snaps:
            for d in s.get("detectors", []):
                by_name.setdefault(str(d.get("name")), d)
        detectors = [by_name[n] for n in sorted(by_name)]
    alerts = sorted((a for s in snaps for a in s.get("alerts", [])),
                    key=_alert_key)
    active = sorted({x for s in snaps for x in s.get("active", [])})
    return {"enabled": any(s.get("enabled") for s in snaps),
            "detectors": detectors, "alerts": alerts, "active": active}


def merge_overhead(shards: List[Mapping[str, Any]]
                   ) -> Optional[Dict[str, Any]]:
    """Sum the meter attribution across shards.  ``wall_seconds`` sums
    too (shards may have run in parallel), so the merged percentage is
    aggregate obs utilisation of the fleet's total compute, not a
    fraction of elapsed time."""
    reports = [shard.get("overhead") for shard in shards
               if shard.get("overhead")]
    if not reports:
        return None
    components: Dict[str, Dict[str, Any]] = {}
    for r in reports:
        for name, cost in (r.get("components") or {}).items():
            m = components.setdefault(
                name, {"seconds": 0.0, "calls": 0, "bytes": 0})
            m["seconds"] += cost.get("seconds", 0.0)
            m["calls"] += cost.get("calls", 0)
            m["bytes"] += cost.get("bytes", 0)
    obs_seconds = sum(r.get("obs_seconds", 0.0) for r in reports)
    wall = sum(r.get("wall_seconds", 0.0) for r in reports)
    return {
        "obs_seconds": obs_seconds,
        "obs_bytes": sum(r.get("obs_bytes", 0) for r in reports),
        "wall_seconds": wall,
        "obs_overhead_pct": (obs_seconds / wall * 100.0) if wall > 0
        else 0.0,
        "components": {name: components[name]
                       for name in sorted(components)},
    }


def merge_audit(shards: List[Mapping[str, Any]]
                ) -> Optional[Dict[str, Any]]:
    """Checks sum, violations concatenate, ``ok`` conjoins."""
    reports = [shard.get("audit") for shard in shards
               if shard.get("audit") is not None]
    if not reports:
        return None
    violations = sorted(
        (v for r in reports for v in r.get("violations", [])),
        key=lambda v: json.dumps(v, sort_keys=True, default=repr))
    return {"ok": all(r.get("ok", True) for r in reports),
            "checks": sum(r.get("checks", 0) for r in reports),
            "violations": violations}


def merge_telemetry(shards: List[Mapping[str, Any]]
                    ) -> Optional[Dict[str, Any]]:
    """Sum every telemetry-health counter across shards (including the
    overflow-reservoir kept count when any shard reports one)."""
    healths = [shard.get("telemetry") for shard in shards
               if shard.get("telemetry") is not None]
    if not healths:
        return None
    out: Dict[str, Any] = {}
    for h in healths:
        for key, value in h.items():
            out[key] = out.get(key, 0) + (value or 0)
    return {key: out[key] for key in sorted(out)}


# -- the merged archive -----------------------------------------------------


def _shard_meta(shard: Mapping[str, Any]) -> Dict[str, Any]:
    meta: Dict[str, Any] = {
        "name": shard.get("name", ""),
        "path": shard.get("path", ""),
        "sim_time": shard.get("sim_time", 0.0),
        "events_run": shard.get("events_run", 0),
        "spans": len(shard.get("spans") or []),
        "events": len(shard.get("events") or []),
    }
    for key in ("scenario", "seed", "wall_seconds", "peak_rss_kb"):
        if shard.get(key) is not None:
            meta[key] = shard[key]
    overhead = shard.get("overhead")
    if overhead is not None:
        meta["obs_overhead_pct"] = overhead.get("obs_overhead_pct")
    return meta


def merge_archives(shards: Iterable[Mapping[str, Any]], *,
                   name: str = "merged") -> Dict[str, Any]:
    """Merge normalised shard dicts into one merged-archive payload.

    Deterministic and order-insensitive: shards are folded in
    canonical order whatever order the caller passes them in.  SLOs
    are re-judged over the merged registry (with the merged watchdog
    alerts), never combined verdict-wise.
    """
    ordered = [dict(s) for s in _canonical(shards)]
    ordered, remaps = remap_disjoint(ordered)
    metrics, gauge_prov = merge_metrics(ordered)
    sim_time = max((float(s.get("sim_time") or 0.0) for s in ordered),
                   default=0.0)
    watchdog = merge_watchdog(ordered)
    spans = merge_spans(ordered)
    merged: Dict[str, Any] = {
        "merged": True,
        "merge_version": MERGE_VERSION,
        "name": name,
        "sim_time": sim_time,
        "events_run": sum(int(s.get("events_run") or 0)
                          for s in ordered),
        "metrics": metrics,
        "slo": judge_report(
            metrics,
            watchdog_alerts=watchdog["alerts"]
            if watchdog is not None else None),
        "spans": spans,
        "events": merge_events(ordered),
        "provenance": {"gauges": gauge_prov, **remaps},
        "shards": [_shard_meta(s) for s in ordered],
    }
    for key, value in (
            ("audit", merge_audit(ordered)),
            ("telemetry", merge_telemetry(ordered)),
            ("watchdog", watchdog),
            ("overhead", merge_overhead(ordered)),
            ("timeseries", merge_timeseries(ordered)),
            ("accounting", merge_ledger(ordered, sim_time=sim_time))):
        if value is not None:
            merged[key] = value
    from repro.obs.export import critical_block
    crit = critical_block(spans)
    if crit is not None:
        merged["critical"] = crit
    return merged


def merged_canonical_form(merged: Mapping[str, Any]) -> str:
    """The byte string two equivalent merges must agree on exactly.

    The ``shards``/``provenance`` blocks (and the archive's own name)
    describe *how* the view was assembled, not what happened on the
    network, so they are excluded — the same exclusion rule
    :mod:`repro.obs.equivalence` applies to execution artefacts.
    """
    body = {k: v for k, v in merged.items()
            if k not in ("shards", "provenance", "name")}
    return json.dumps(body, sort_keys=True, default=repr)


def write_merged(merged: Mapping[str, Any], path: str) -> str:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# -- loading shards ---------------------------------------------------------


def is_merged_archive(path: str) -> bool:
    """Sniff: a JSON file tagged ``"merged": true``."""
    if not path.endswith(".json"):
        return False
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return False
    return isinstance(payload, dict) and payload.get("merged") is True


def load_shard(path: str, *,
               extras: Optional[Mapping[str, Any]] = None
               ) -> Dict[str, Any]:
    """Normalise any archive the CLI accepts into a shard dict.

    Accepts a streamed ``obs_*.jsonl`` sidecar, a monolithic
    ``metrics_*.json`` (sibling trace/timeseries/accounting sidecars
    auto-discovered), or a previously merged archive (re-merging is
    how fleets of fleets roll up).  *extras* (e.g. the fleet runner's
    per-shard ``wall_seconds`` / ``peak_rss_kb`` / ``overhead``)
    overlay the result.
    """
    from repro.obs.sink import is_obs_sidecar, load_obs_sidecar

    if is_obs_sidecar(path):
        payload = load_obs_sidecar(path)
        fin = payload["meta"]
        acct = payload["accounting"]
        if acct is not None:
            acct = {k: v for k, v in acct.items() if k != "sim_time"}
        shard: Dict[str, Any] = {
            "name": payload["name"] or os.path.basename(path),
            "path": path,
            "sim_time": fin.get("sim_time", 0.0),
            "events_run": fin.get("events_run", 0),
            "metrics": fin.get("metrics", {}),
            "spans": payload["spans"],
            "events": payload["events"],
            "timeseries": payload["timeseries"],
            "accounting": acct,
            "watchdog": fin.get("watchdog"),
            "audit": fin.get("audit"),
            "telemetry": fin.get("telemetry"),
            "overhead": None,  # wall clock never rides in the stream
        }
    else:
        with open(path) as fh:
            payload = json.load(fh)
        if isinstance(payload, dict) and payload.get("merged"):
            acct = payload.get("accounting")
            shard = {
                "name": payload.get("name") or os.path.basename(path),
                "path": path,
                "sim_time": payload.get("sim_time", 0.0),
                "events_run": payload.get("events_run", 0),
                "metrics": payload.get("metrics", {}),
                "spans": payload.get("spans") or [],
                "events": payload.get("events") or [],
                "timeseries": payload.get("timeseries"),
                "accounting": acct,
                "watchdog": payload.get("watchdog"),
                "audit": payload.get("audit"),
                "telemetry": payload.get("telemetry"),
                "overhead": payload.get("overhead"),
                "gauge_provenance":
                    (payload.get("provenance") or {}).get("gauges"),
            }
        else:
            from repro.obs.report import (
                find_accounting_sidecar,
                find_timeseries_sidecar,
                find_trace_sidecar,
                load_metrics_file,
                load_trace_file,
            )
            meta, metrics = load_metrics_file(path)
            spans: List[Dict[str, Any]] = []
            events: List[Dict[str, Any]] = []
            trace_path = find_trace_sidecar(path)
            if trace_path:
                spans, events = load_trace_file(trace_path)
            timeseries = None
            ts_path = find_timeseries_sidecar(path)
            if ts_path:
                with open(ts_path) as fh:
                    timeseries = {k: v for k, v in json.load(fh).items()
                                  if k != "name"}
            acct = None
            acct_path = find_accounting_sidecar(path)
            if acct_path:
                with open(acct_path) as fh:
                    acct = {k: v for k, v in json.load(fh).items()
                            if k not in ("name", "sim_time")}
            shard = {
                "name": meta.get("name") or os.path.basename(path),
                "path": path,
                "sim_time": meta.get("sim_time", 0.0),
                "events_run": meta.get("events_run", 0),
                "metrics": metrics,
                "spans": spans,
                "events": events,
                "timeseries": timeseries,
                "accounting": acct,
                "watchdog": meta.get("watchdog"),
                "audit": meta.get("audit"),
                "telemetry": meta.get("telemetry"),
                "overhead": meta.get("overhead"),
            }
    if extras:
        shard.update(extras)
    return shard


def shard_from_mits(mits, name: str) -> Dict[str, Any]:
    """Snapshot a live deployment into a shard dict (the equivalence
    harness's monolithic side; wall-clock overhead is deliberately
    excluded so the shard is deterministic)."""
    from repro.obs.audit import ConservationAuditor
    from repro.obs.export import telemetry_health

    sim = mits.sim
    sampler = getattr(mits, "sampler", None)
    watchdog = getattr(mits, "watchdog", None)
    ledger = getattr(sim, "ledger", None)
    metrics = sim.metrics.report()
    events = [e.to_dict() for e in sim.recorder.events]
    events += [e.to_dict() for e in sim.recorder.overflow]
    return {
        "name": name,
        "path": f"<live:{name}>",
        "sim_time": sim.now,
        "events_run": sim.events_run,
        "metrics": metrics,
        "spans": [s.to_dict() for s in sim.tracer.spans],
        "events": events,
        "timeseries": sampler.snapshot() if sampler is not None
        else None,
        "accounting": ledger.snapshot(sim_time=sim.now)
        if ledger is not None and ledger.enabled else None,
        "watchdog": watchdog.snapshot() if watchdog is not None
        else None,
        "audit": ConservationAuditor(mits).report(),
        "telemetry": telemetry_health(mits),
        "overhead": None,
    }


# -- the split harness ------------------------------------------------------


def _bucket(key: str, n: int) -> int:
    """Stable partition hash (md5, not ``hash()`` — PYTHONHASHSEED-
    proof, so split assignments are reproducible run over run)."""
    return int(hashlib.md5(key.encode()).hexdigest()[:8], 16) % n


def _entity_bucket(labels: Mapping[str, Any], n: int) -> int:
    for label in ENTITY_LABELS:
        if label in labels:
            return _bucket(f"{label}={labels[label]}", n)
    return 0


def _split_int(value: int, n: int) -> List[int]:
    """Partition an integer so the parts re-sum exactly."""
    part = value // n
    parts = [part] * n
    parts[0] += value - part * n
    return parts


def split_shard(shard: Mapping[str, Any], n: int = 2
                ) -> List[Dict[str, Any]]:
    """Partition one shard's observability into *n* entity shards.

    The split-run equivalence harness's other half: instruments,
    series, accounts and alerts go to the shard their entity label
    (VC, site, stream...) hashes to — unlabelled instruments to shard
    0 — spans and events follow their trace id, and pure counts
    (checks, events_run, health counters) are partitioned so they
    re-sum exactly.  ``merge_archives(split_shard(s, n))`` must then
    reproduce ``merge_archives([s])`` byte for byte (sketch-mode
    ledgers within the documented error bound).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    base_name = shard.get("name", "shard")
    shards: List[Dict[str, Any]] = [
        {"name": f"{base_name}-shard{i}",
         "path": f"<split:{base_name}:{i}>",
         "sim_time": shard.get("sim_time", 0.0),
         "events_run": 0,
         "metrics": {}, "spans": [], "events": [],
         "timeseries": None, "accounting": None, "watchdog": None,
         "audit": None, "telemetry": None, "overhead": None}
        for i in range(n)]

    for i, part in enumerate(_split_int(
            int(shard.get("events_run") or 0), n)):
        shards[i]["events_run"] = part

    for component, mname, labels, entry in iter_report(
            shard.get("metrics", {})):
        i = _entity_bucket(dict(labels), n)
        shards[i]["metrics"].setdefault(component, {}) \
            .setdefault(mname, []).append(entry)

    for span in shard.get("spans") or []:
        i = _bucket(f"trace={span.get('trace_id')}", n)
        shards[i]["spans"].append(span)
    for event in shard.get("events") or []:
        tid = event.get("trace_id")
        i = (_bucket(f"trace={tid}", n) if tid is not None
             else _bucket(f"component={event.get('component')}", n))
        shards[i]["events"].append(event)

    ts = shard.get("timeseries")
    if ts:
        buckets: List[List[Any]] = [[] for _ in range(n)]
        for s in ts.get("series", []):
            buckets[_entity_bucket(s.get("labels") or {}, n)].append(s)
        samples = _split_int(int(ts.get("samples", 0)), n)
        for i in range(n):
            part: Dict[str, Any] = {
                "enabled": True,
                "interval": ts.get("interval"),
                "capacity": ts.get("capacity", 0),
                "samples": samples[i],
                "evictions": sum(s.get("evicted", 0)
                                 for s in buckets[i]),
                "series": buckets[i],
            }
            if "stride" in ts:
                part["stride"] = ts["stride"]
                part["coalesced"] = sum(s.get("coalesced", 0)
                                        for s in buckets[i])
            shards[i]["timeseries"] = part

    acct = shard.get("accounting")
    if acct and acct.get("kinds") is not None:
        kind_buckets: List[Dict[str, List]] = [{} for _ in range(n)]
        for kind, rows in acct["kinds"].items():
            for r in rows:
                i = _bucket(f"{kind}:{r['key']}", n)
                kind_buckets[i].setdefault(kind, []).append(r)
        for i in range(n):
            shards[i]["accounting"] = {
                "enabled": acct.get("enabled", True),
                "kinds": kind_buckets[i]}

    wd = shard.get("watchdog")
    if wd:
        alert_buckets: List[List[Any]] = [[] for _ in range(n)]
        for a in wd.get("alerts", []):
            alert_buckets[_bucket(
                f"entity={a.get('entity')}", n)].append(a)
        active_buckets: List[List[Any]] = [[] for _ in range(n)]
        for key in wd.get("active", []):
            active_buckets[_bucket(f"active={key}", n)].append(key)
        for i in range(n):
            shards[i]["watchdog"] = {
                "enabled": wd.get("enabled", True),
                "detectors": list(wd.get("detectors", [])),
                "alerts": alert_buckets[i],
                "active": active_buckets[i]}

    audit = shard.get("audit")
    if audit is not None:
        checks = _split_int(int(audit.get("checks", 0)), n)
        v_buckets: List[List[Any]] = [[] for _ in range(n)]
        for v in audit.get("violations", []):
            v_buckets[_bucket(json.dumps(v, sort_keys=True,
                                         default=repr), n)].append(v)
        for i in range(n):
            shards[i]["audit"] = {"ok": not v_buckets[i],
                                  "checks": checks[i],
                                  "violations": v_buckets[i]}

    health = shard.get("telemetry")
    if health is not None:
        parts = {key: _split_int(int(value or 0), n)
                 for key, value in health.items()}
        for i in range(n):
            shards[i]["telemetry"] = {key: parts[key][i]
                                      for key in sorted(parts)}
    return shards
