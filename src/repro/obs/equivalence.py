"""Fidelity equivalence: canonical snapshots and differential checks.

The cell-train fast path (``fidelity="batched"``) claims to be *exact*:
same cells, same timestamps, same counters, same SLO verdict as the
legacy per-cell event loop (``fidelity="cell"``), just fewer scheduled
events.  This module defines what "same" means operationally and gives
the differential harness one shared vocabulary:

* :func:`canonical_snapshot` — a :meth:`MitsSystem.snapshot` projected
  onto its deterministic, fidelity-independent content.  Three keys
  are execution artefacts of *how* the run was driven, not *what*
  happened on the network, and are excluded:

  - ``events_run`` (and the ``simulator`` metrics component that
    mirrors it): the batched loop runs the same per-cell work in
    fewer callbacks, and its continuation/deferral events shift the
    raw event count by a few dozen.  Per-cell *equivalents* are still
    billed via ``Simulator.charge_cells`` so profiler attribution and
    events/sec floors stay comparable — but the raw counter is an
    event-loop implementation detail.
  - ``profile`` / ``timeseries`` wall-clock fields: hardware noise.
  - ``fidelity`` itself: the label under test.

  Everything else — per-VC delay sums, link/switch/host counters,
  gauges (including queue-occupancy max/min), AAL5 stats, SLO results,
  the conservation audit, the ledger, the flight-recorder ring — must
  match **byte for byte** between cell and batched fidelities.

* :func:`canonical_form` — the JSON string compared for byte equality.

* :func:`archive_of` / :func:`fidelity_diff` — adapt two snapshots to
  :mod:`repro.obs.diff`, whose ``deterministic_delta_count`` must be
  zero for equivalent runs; on mismatch its ranked attribution table
  names the layer that diverged.

Hybrid fidelity (``fidelity="hybrid"``) is checked to a weaker
contract (see :func:`ledger_totals`): SLO verdicts must match and
ledger totals must agree within a tolerance, because background flows
are collapsed to rate × duration segments rather than cells.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from repro.obs.diff import RunArchive, diff_runs

__all__ = [
    "CANONICAL_EXCLUDED_KEYS",
    "archive_of",
    "canonical_form",
    "canonical_snapshot",
    "fidelity_diff",
    "ledger_totals",
    "snapshots_equivalent",
]

#: top-level snapshot keys that describe the execution engine, not the
#: simulated network — excluded from the equivalence contract
CANONICAL_EXCLUDED_KEYS = ("events_run", "profile", "timeseries",
                           "fidelity")

#: the metrics component that mirrors the raw event count
_ENGINE_METRICS_COMPONENT = "simulator"


def canonical_snapshot(snap: Mapping[str, Any]) -> Dict[str, Any]:
    """Project a snapshot onto its fidelity-independent content."""
    out = {k: v for k, v in snap.items()
           if k not in CANONICAL_EXCLUDED_KEYS}
    metrics = out.get("metrics")
    if isinstance(metrics, Mapping):
        out["metrics"] = {k: v for k, v in metrics.items()
                          if k != _ENGINE_METRICS_COMPONENT}
    return out


def canonical_form(snap: Mapping[str, Any]) -> str:
    """The byte string two equivalent runs must agree on exactly."""
    return json.dumps(canonical_snapshot(snap), sort_keys=True,
                      default=repr)


def snapshots_equivalent(a: Mapping[str, Any],
                         b: Mapping[str, Any]) -> bool:
    """Byte-identical canonical snapshots?  (The cell/batched bar.)"""
    return canonical_form(a) == canonical_form(b)


def archive_of(snap: Mapping[str, Any], name: str) -> RunArchive:
    """Adapt a live snapshot to a :class:`repro.obs.diff.RunArchive`.

    Only canonical sections are carried, so ``diff_runs`` judges the
    same contract :func:`snapshots_equivalent` does — with attribution
    when they disagree.
    """
    canon = canonical_snapshot(snap)
    accounting = canon.get("accounting") or {}
    return RunArchive(
        path=f"<snapshot:{name}>", name=name,
        metrics=canon.get("metrics", {}),
        slo=canon.get("slo"),
        accounting=accounting.get("kinds")
        if accounting.get("enabled") else None)


def fidelity_diff(before: Mapping[str, Any], after: Mapping[str, Any],
                  name: str = "fidelity") -> Dict[str, Any]:
    """``repro.obs.diff`` payload between two snapshots' canonical
    content; ``deterministic_delta_count == 0`` iff equivalent."""
    return diff_runs(archive_of(before, f"{name}:before"),
                     archive_of(after, f"{name}:after"))


def ledger_totals(snap: Mapping[str, Any]) -> Dict[str, float]:
    """Ledger grand totals across every account kind.

    The hybrid contract: for each total, hybrid must be within
    tolerance of the batched run (cells/bytes conserved even though
    background VCs never became cells).
    """
    totals: Dict[str, float] = {}
    accounting: Optional[Mapping[str, Any]] = snap.get("accounting")
    if not accounting or not accounting.get("enabled"):
        return totals
    for rows in accounting.get("kinds", {}).values():
        for row in rows:
            for key in ("units_sent", "units_delivered", "cells_sent",
                        "cells_delivered", "bytes_sent",
                        "bytes_delivered", "drops"):
                totals[key] = totals.get(key, 0) + row.get(key, 0)
    return totals
