"""Streaming observability sidecar: append-as-you-go JSONL.

``dump_observability`` materialises a run's full telemetry in memory
and writes it once at the end — fine for the toy scenarios, hopeless
for the campus-scale runs the ROADMAP targets, where the interesting
spans and events number in the millions and the process would hold
them all just to serialise them.  An :class:`ObsSink` inverts that:
attach it to a :class:`~repro.core.system.MitsSystem` and every kept
span, every flight event, and every telemetry tick is appended to one
``obs_<name>.jsonl`` file *as it happens*, through a small bounded
write buffer.  In-memory rings can then be as small as the sampling
policy allows while the sidecar keeps full sampled fidelity.

Record grammar (one JSON object per line, tagged ``"record"``):

``meta``
    first line — schema version, run name, and the
    :class:`~repro.obs.sampling.SamplingPolicy` the run used.
``span`` / ``event``
    one finished :class:`~repro.obs.tracing.SpanRecord` / recorded
    :class:`~repro.obs.events.FlightEvent`, same shape as the legacy
    ``trace_*.jsonl`` lines.
``telemetry``
    one sampler tick: the time plus one compact row per instrument —
    ``[component, name, labels, kind, value, rate, p99]``.
``ledger``
    a periodic accounting checkpoint (every ``ledger_every`` telemetry
    ticks) plus one final checkpoint at close, shaped like the
    ``accounting_*.json`` sidecar body.
``fin``
    last line — the end-of-run summary the monolithic
    ``metrics_*.json`` would have carried (metrics report, SLO
    verdicts, audit, telemetry health, watchdog).  Only *simulated*
    quantities appear in the file — never wall-clock readings — so
    same seed + same policy ⇒ byte-identical sidecars.

:func:`load_obs_sidecar` reads one back into the shapes the ``repro
.obs`` renderers consume, which is what lets ``report``, ``dashboard``
and ``top`` render identically from a streamed sidecar and from the
legacy monolithic dumps.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ObsSink", "is_obs_sidecar", "load_obs_sidecar"]

#: bump when the record grammar changes incompatibly
SCHEMA_VERSION = 1


class ObsSink:
    """Bounded-buffer JSONL writer for one run's observability stream.

    ``buffer_records`` lines are held at most before a flush;
    ``ledger_every`` telemetry ticks elapse between accounting
    checkpoints (0 disables periodic checkpoints — the final one at
    :meth:`close` is always written when the ledger is enabled).
    """

    def __init__(self, path: str, *, name: str = "",
                 buffer_records: int = 256,
                 ledger_every: int = 16) -> None:
        if buffer_records < 1:
            raise ValueError("buffer_records must be >= 1")
        if ledger_every < 0:
            raise ValueError("ledger_every must be >= 0")
        self.path = path
        self.name = name or os.path.basename(path)
        self.buffer_records = buffer_records
        self.ledger_every = ledger_every
        self.records = 0
        self.bytes_written = 0
        self.flushes = 0
        self.closed = False
        self._buf: List[str] = []
        self._ticks = 0
        self._mits = None
        self.meter = None
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "w")

    # -- wiring ------------------------------------------------------------

    def attach(self, mits) -> None:
        """Wire the deployment's collectors into this sink.

        Writes the ``meta`` record, then every kept span, recorded
        event, and telemetry tick streams through :meth:`emit`.
        """
        self._mits = mits
        self.meter = getattr(mits, "meter", None)
        policy = getattr(mits, "sampling", None)
        meta: Dict[str, Any] = {
            "record": "meta",
            "version": SCHEMA_VERSION,
            "name": self.name,
            "seed": getattr(mits, "seed", None),
            "topology": mits.spec.name if hasattr(mits, "spec") else None,
            "policy": policy.to_dict() if policy is not None else None,
        }
        sampler = getattr(mits, "sampler", None)
        if sampler is not None:
            meta["telemetry"] = {"interval": sampler.interval,
                                 "capacity": sampler.capacity}
        self.emit(meta)
        sim = mits.sim
        sim.tracer.sink = self._span_sink
        sim.recorder.sink = self._event_sink
        if sampler is not None:
            sampler.sink = self._telemetry_sink

    def _span_sink(self, rec) -> None:
        self.emit({"record": "span", **rec.to_dict()})

    def _event_sink(self, event) -> None:
        self.emit({"record": "event", **event.to_dict()})

    def _telemetry_sink(self, now: float, rows: List[List[Any]]) -> None:
        self.emit({"record": "telemetry", "time": now, "rows": rows})
        self._ticks += 1
        if self.ledger_every and self._ticks % self.ledger_every == 0:
            self._ledger_checkpoint()

    def _ledger_checkpoint(self) -> None:
        mits = self._mits
        if mits is None:
            return
        ledger = getattr(mits.sim, "ledger", None)
        if ledger is None or not ledger.enabled:
            return
        meter = self.meter
        t0 = meter.now() if meter is not None else 0.0
        self.emit({"record": "ledger", "sim_time": mits.sim.now,
                   **ledger.snapshot(sim_time=mits.sim.now)})
        if meter is not None:
            meter.charge("ledger", t0)

    # -- the write path ----------------------------------------------------

    def emit(self, record: Dict[str, Any]) -> None:
        """Buffer one record; flushes when the buffer fills."""
        if self.closed:
            raise ValueError(f"sink {self.path} is closed")
        self._buf.append(json.dumps(record, sort_keys=True))
        self.records += 1
        if len(self._buf) >= self.buffer_records:
            self.flush()

    def flush(self) -> None:
        if not self._buf:
            return
        meter = self.meter
        t0 = meter.now() if meter is not None else 0.0
        chunk = "\n".join(self._buf) + "\n"
        self._buf.clear()
        self._fh.write(chunk)
        self._fh.flush()
        self.bytes_written += len(chunk)
        self.flushes += 1
        if meter is not None:
            meter.charge("sink", t0, nbytes=len(chunk))

    def close(self) -> None:
        """Write the final ledger checkpoint and ``fin`` record."""
        if self.closed:
            return
        mits = self._mits
        if mits is not None:
            sim = mits.sim
            sampler = getattr(mits, "sampler", None)
            if sampler is not None:
                sampler.sample()  # flush a final point at `now`
            self._ledger_checkpoint()
            from repro.obs.export import telemetry_health

            metrics_report = sim.metrics.report()
            watchdog = getattr(mits, "watchdog", None)
            fin: Dict[str, Any] = {
                "record": "fin",
                "name": self.name,
                "sim_time": sim.now,
                "events_run": sim.events_run,
                "metrics": metrics_report,
                "slo": mits.slos.summary(
                    metrics_report,
                    watchdog_alerts=watchdog.alerts
                    if watchdog is not None else None),
                "telemetry": telemetry_health(mits),
            }
            from repro.obs.audit import ConservationAuditor

            fin["audit"] = ConservationAuditor(mits).report()
            if watchdog is not None:
                fin["watchdog"] = watchdog.snapshot()
            from repro.obs.export import critical_block

            # attribution over the spans still held in memory — the
            # sampled view, same population the legacy dump would see
            crit = critical_block([s.to_dict()
                                   for s in sim.tracer.spans])
            if crit is not None:
                fin["critical"] = crit
            if sampler is not None:
                ts: Dict[str, Any] = {
                    "interval": sampler.interval,
                    "capacity": sampler.capacity,
                    "samples": sampler.samples,
                    "evictions": sampler.evictions,
                }
                if sampler._stride != 1 or sampler._coalesce:
                    ts["stride"] = sampler._stride
                    ts["coalesced"] = sampler.coalesced
                fin["timeseries"] = ts
            self.emit(fin)
            # detach so late spans/events cannot hit a closed sink
            sim.tracer.sink = None
            sim.recorder.sink = None
            if sampler is not None:
                sampler.sink = None
        self.flush()
        self._fh.close()
        self.closed = True

    def report(self) -> Dict[str, Any]:
        """Write-path counters, for tests and the health block."""
        return {"path": self.path, "records": self.records,
                "bytes_written": self.bytes_written,
                "flushes": self.flushes, "closed": self.closed}


# -- reading one back -------------------------------------------------------


def _rebuild_timeseries(meta: Dict[str, Any],
                        fin: Dict[str, Any],
                        ticks: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Replay streamed telemetry ticks into a sampler-snapshot shape.

    Rings are rebuilt with the run's real capacity and coalescing
    policy, so the result renders exactly like the live sampler's
    ``snapshot()`` (same evictions, same standing points).
    """
    from repro.obs.timeseries import Series

    policy = meta.get("policy") or {}
    ts_meta = dict(meta.get("telemetry") or {})
    ts_meta.update(fin.get("timeseries") or {})
    capacity = int(ts_meta.get("capacity", 512))
    coalesce = bool(policy.get("telemetry_coalesce", False))
    series_map: Dict[Tuple[str, str, Any], Series] = {}
    for tick in ticks:
        time = tick["time"]
        for component, name, labels, kind, value, _rate, p99 in \
                tick["rows"]:
            key = (component, name, tuple(sorted(labels.items())))
            series = series_map.get(key)
            if series is None:
                series = Series(component, name, labels, kind,
                                capacity, coalesce=coalesce)
                series_map[key] = series
            if series.times and series.times[-1] == time:
                continue  # a snapshot() flush re-emitted this tick
            series.record(time, value,
                          p99=p99 if kind == "histogram" else None)
    payload: Dict[str, Any] = {
        "enabled": True,
        "interval": ts_meta.get("interval"),
        "capacity": capacity,
        "samples": ts_meta.get("samples", len(ticks)),
        "evictions": sum(s.evicted for s in series_map.values()),
        "series": [s.to_dict() for s in sorted(
            series_map.values(), key=lambda s: s.key)],
    }
    if "stride" in ts_meta:
        payload["stride"] = ts_meta["stride"]
        payload["coalesced"] = sum(
            s.coalesced for s in series_map.values())
    return payload


def load_obs_sidecar(path: str) -> Dict[str, Any]:
    """Read one ``obs_*.jsonl`` stream back into renderer-ready shapes.

    Returns ``{"name", "policy", "meta", "spans", "events",
    "timeseries", "accounting"}`` where ``meta`` is the ``fin``
    summary (metrics report, SLO verdicts, audit, telemetry health,
    watchdog — everything the monolithic ``metrics_*.json`` carries),
    ``timeseries`` is a sampler-snapshot-shaped dict, and
    ``accounting`` is the last ledger checkpoint (None when the run
    had no ledger).
    """
    meta: Dict[str, Any] = {}
    fin: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    ticks: List[Dict[str, Any]] = []
    accounting: Optional[Dict[str, Any]] = None
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            tag = rec.pop("record", None)
            if tag == "meta":
                meta = rec
            elif tag == "span":
                spans.append(rec)
            elif tag == "event":
                events.append(rec)
            elif tag == "telemetry":
                ticks.append(rec)
            elif tag == "ledger":
                accounting = rec
            elif tag == "fin":
                fin = rec
    if not meta:
        raise ValueError(f"{path} does not look like an obs sidecar "
                         f"(no meta record)")
    return {
        "name": meta.get("name", ""),
        "policy": meta.get("policy"),
        "meta": fin,
        "spans": spans,
        "events": events,
        "timeseries": _rebuild_timeseries(meta, fin, ticks),
        "accounting": accounting,
    }


def is_obs_sidecar(path: str) -> bool:
    """Sniff: a JSONL file whose first line is a ``meta`` record."""
    if not path.endswith(".jsonl"):
        return False
    try:
        with open(path) as fh:
            first = fh.readline().strip()
        return bool(first) and json.loads(first).get("record") == "meta"
    except (OSError, ValueError):
        return False
