"""Event-loop profiler: where does a slow run spend its wall clock?

The simulator's event loop funnels every callback through
:meth:`Simulator._execute`; :class:`LoopProfiler` shadows that method
with a timing wrapper that attributes wall-clock cost to the callback's
qualified name.  It is the first tool in the reproduction that says
*where* a slow benchmark spends its time, not just that it was slow.

Zero overhead when disabled, by construction: nothing is wrapped until
:meth:`install` assigns the wrapper as an *instance* attribute shadowing
the class method.  The disabled path is the untouched class
``_execute`` — no flag check, no closure, no allocation per event
(``tests/obs/test_profiler.py`` pins this).  :meth:`uninstall` deletes
the shadow and the class method shows through again.

Per callsite the profiler tracks call count, cumulative time (the whole
callback, children included) and self time (cumulative minus time spent
in nested profiled executions — relevant when a callback re-enters the
loop via ``step()``-style helpers).  The report also carries the
sim-time-vs-wall-time ratio: how many simulated seconds one wall second
buys, the headline number for "as fast as the hardware allows".
"""

from __future__ import annotations

import functools
import time as _time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["CallsiteStats", "LoopProfiler", "callsite_name"]


def callsite_name(cb: Any) -> str:
    """Best-effort qualified name for an event callback.

    ``functools.partial`` objects carry no ``__qualname__`` and would
    be billed to an opaque ``functools.partial(...)`` repr; decorated
    callables would be billed to the decorator's wrapper.  Unwrap both
    (partials via ``.func``, decorators via ``__wrapped__``) so cost
    lands on the function that actually ran.  A bare lambda keeps its
    own qualname — ``Foo.bar.<locals>.<lambda>`` still says where it
    was defined.
    """
    for _ in range(8):  # defensive bound on pathological wrap chains
        if isinstance(cb, functools.partial):
            cb = cb.func
            continue
        wrapped = getattr(cb, "__wrapped__", None)
        if wrapped is None:
            break
        cb = wrapped
    return getattr(cb, "__qualname__", None) or repr(cb)


class CallsiteStats:
    """Accumulated cost of one callback qualname."""

    __slots__ = ("callsite", "calls", "cum_seconds", "self_seconds")

    def __init__(self, callsite: str) -> None:
        self.callsite = callsite
        self.calls = 0
        self.cum_seconds = 0.0
        self.self_seconds = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "callsite": self.callsite,
            "calls": self.calls,
            "cum_seconds": self.cum_seconds,
            "self_seconds": self.self_seconds,
            "mean_us": (self.cum_seconds / self.calls * 1e6)
            if self.calls else 0.0,
        }


class LoopProfiler:
    """Attributes event-loop wall time to callback qualnames."""

    def __init__(self, *, clock: Callable[[], float] =
                 _time.perf_counter) -> None:
        self._clock = clock
        self._sim = None
        self._orig_execute = None
        self._stats: Dict[str, CallsiteStats] = {}
        #: (callsite, start, child_seconds) frames for nested execution
        self._stack: List[list] = []
        self.events = 0
        self.wall_seconds = 0.0
        self.sim_seconds = 0.0
        self._wall_start: Optional[float] = None
        self._sim_start: Optional[float] = None

    @property
    def installed(self) -> bool:
        return self._sim is not None

    # -- install / uninstall ----------------------------------------------

    def install(self, sim) -> "LoopProfiler":
        """Shadow ``sim._execute`` with the timing wrapper."""
        if self._sim is not None:
            raise RuntimeError("profiler is already installed")
        self._sim = sim
        self._orig_execute = sim._execute  # bound class method
        self._wall_start = self._clock()
        self._sim_start = sim.now
        sim._execute = self._profiled_execute
        return self

    def uninstall(self) -> None:
        """Remove the shadow; the class ``_execute`` shows through."""
        sim = self._sim
        if sim is None:
            return
        self._flush_elapsed()
        sim.__dict__.pop("_execute", None)
        self._sim = None
        self._orig_execute = None
        self._wall_start = None
        self._sim_start = None

    def __enter__(self) -> "LoopProfiler":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.uninstall()

    def _flush_elapsed(self) -> None:
        if self._wall_start is not None:
            self.wall_seconds += self._clock() - self._wall_start
            self._wall_start = self._clock()
        if self._sim_start is not None and self._sim is not None:
            self.sim_seconds += self._sim.now - self._sim_start
            self._sim_start = self._sim.now

    # -- the hot wrapper ---------------------------------------------------

    def _profiled_execute(self, ev) -> None:
        callsite = callsite_name(ev.callback)
        sim = self._sim
        # batched handlers credit per-cell-equivalent events via
        # Simulator.charge_cells; bill them to this callsite so call
        # counts stay comparable with per-cell baselines
        base_extra = sim.event_extra
        frame = [callsite, self._clock(), 0.0]
        self._stack.append(frame)
        try:
            self._orig_execute(ev)
        finally:
            elapsed = self._clock() - frame[1]
            self._stack.pop()
            if self._stack:
                self._stack[-1][2] += elapsed
            stats = self._stats.get(callsite)
            if stats is None:
                stats = self._stats[callsite] = CallsiteStats(callsite)
            extra = sim.event_extra - base_extra
            if extra:
                sim.event_extra = base_extra
            stats.calls += 1 + extra
            stats.cum_seconds += elapsed
            stats.self_seconds += elapsed - frame[2]
            self.events += 1 + extra

    # -- reporting ---------------------------------------------------------

    def hotspots(self, top: int = 10) -> List[CallsiteStats]:
        """The *top* callsites by cumulative wall time."""
        ranked = sorted(self._stats.values(),
                        key=lambda s: s.cum_seconds, reverse=True)
        return ranked[:top] if top is not None else ranked

    def snapshot(self, top: int = 10) -> Dict[str, Any]:
        """JSON-stable report (embedded in ``MitsSystem.snapshot()``)."""
        self._flush_elapsed()
        ratio = (self.sim_seconds / self.wall_seconds) \
            if self.wall_seconds > 0 else None
        return {
            "enabled": self.installed or self.events > 0,
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "sim_to_wall": ratio,
            "hotspots": [s.to_dict() for s in self.hotspots(top)],
        }
