"""Per-entity accounting ledger.

The thesis costs the MITS deployment per *tenant*: each virtual
circuit, site, and media stream consumes cells, bytes, and buffer
residency that the operator must attribute.  The :class:`Ledger`
collects that attribution at the points where traffic actually moves —
host transmit/deliver, link drop/dwell, stream send/playout, and the
transport layer's per-trace byte counts — so a single snapshot answers
"who used the network, and how much".

The cost model follows ``metrics.py``: a disabled ledger hands every
caller the shared :data:`NULL_ACCOUNT`, whose mutators are no-ops, so
instrumented hot paths pay one attribute call and nothing else.

At scale, one account per entity ever seen is itself an unbounded
memory cost.  A ledger constructed with ``top_k=K`` switches to a
*space-saving* sketch (Metwally et al.): at most K accounts per kind
are kept; when a new entity arrives at a full kind the lightest
account (by ``weight``, a monotone sum of everything charged) is
evicted and the newcomer *inherits* its weight as an ``error`` bound.
Truly heavy entities are guaranteed to surface; any row whose error
bound is nonzero is rendered with a ``~`` marker because part of its
weight may belong to evicted predecessors.  ``reconcile`` is skipped
in this mode — evicted accounts would show as false divergences.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ACCOUNT_SUM_FIELDS",
    "Account",
    "Ledger",
    "NULL_ACCOUNT",
    "SORT_COLUMNS",
    "account_weight",
    "load_accounting_file",
    "render_top",
]

#: columns accepted by ``render_top(sort=...)`` / ``repro.obs top --sort``
SORT_COLUMNS = ("bytes", "cells", "units", "drops", "residency")

#: every additive charge field on an :class:`Account` row — shard
#: merges sum exactly these (share/bits_per_sec are derived, not summed)
ACCOUNT_SUM_FIELDS = ("units_sent", "units_delivered", "cells_sent",
                      "cells_delivered", "bytes_sent", "bytes_delivered",
                      "drops", "residency_seconds")


def account_weight(row: Dict[str, object]) -> float:
    """The space-saving rank of a snapshot row: the sum of everything
    charged (exactly what :class:`Account` accumulates into ``weight``
    live).  Falls back to recomputing when the snapshot was exact and
    carried no ``weight`` column."""
    if row.get("weight") is not None:
        return float(row["weight"])  # type: ignore[arg-type]
    return float(sum(row.get(f, 0) or 0  # type: ignore[arg-type]
                     for f in ACCOUNT_SUM_FIELDS))


class Account:
    """Running totals for one accountable entity.

    ``units`` are the entity's natural quantum (PDUs for a VC or site,
    frames for a stream, messages for a trace); cells and bytes are the
    ATM-level cost of moving them.
    """

    __slots__ = ("kind", "key", "note", "units_sent", "units_delivered",
                 "cells_sent", "cells_delivered", "bytes_sent",
                 "bytes_delivered", "drops", "residency_seconds",
                 "weight", "error")

    def __init__(self, kind: str, key: str, note: str = "") -> None:
        self.kind = kind
        self.key = key
        self.note = note
        self.units_sent = 0
        self.units_delivered = 0
        self.cells_sent = 0
        self.cells_delivered = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.drops = 0
        self.residency_seconds = 0.0
        #: monotone total of everything charged — the space-saving
        #: sketch's eviction rank (see Ledger top_k)
        self.weight = 0.0
        #: inherited weight ceiling: how much of ``weight`` may belong
        #: to evicted predecessors (0 for exact accounts)
        self.error = 0.0

    def sent(self, units: int = 0, cells: int = 0, nbytes: int = 0) -> None:
        self.units_sent += units
        self.cells_sent += cells
        self.bytes_sent += nbytes
        self.weight += units + cells + nbytes

    def delivered(self, units: int = 0, cells: int = 0, nbytes: int = 0) -> None:
        self.units_delivered += units
        self.cells_delivered += cells
        self.bytes_delivered += nbytes
        self.weight += units + cells + nbytes

    def drop(self, cells: int = 1) -> None:
        self.drops += cells
        self.weight += cells

    def dwell(self, seconds: float) -> None:
        """Charge queue-residency time (cell sat *seconds* buffered)."""
        self.residency_seconds += seconds
        self.weight += seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "key": self.key,
            "note": self.note,
            "units_sent": self.units_sent,
            "units_delivered": self.units_delivered,
            "cells_sent": self.cells_sent,
            "cells_delivered": self.cells_delivered,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "drops": self.drops,
            "residency_seconds": self.residency_seconds,
        }


class _NullAccount(Account):
    """Shared sink for disabled ledgers: every mutator is a no-op."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", "null")

    def sent(self, units: int = 0, cells: int = 0, nbytes: int = 0) -> None:
        pass

    def delivered(self, units: int = 0, cells: int = 0, nbytes: int = 0) -> None:
        pass

    def drop(self, cells: int = 1) -> None:
        pass

    def dwell(self, seconds: float) -> None:
        pass


NULL_ACCOUNT = _NullAccount()


class Ledger:
    """Registry of :class:`Account` rows keyed by ``(kind, key)``.

    Entity kinds used by the instrumented stack: ``vc`` (virtual
    circuits, keyed by numeric id), ``site`` (hosts), ``stream``
    (video senders/players), ``trace`` (per-request byte attribution),
    and ``link`` (drop + residency attribution at the buffer that
    measured it).
    """

    def __init__(self, *, enabled: bool = True,
                 top_k: Optional[int] = None) -> None:
        if top_k is not None and top_k < 1:
            raise ValueError("top_k must be >= 1 when set")
        self.enabled = enabled
        self.top_k = top_k
        self._accounts: Dict[Tuple[str, str], Account] = {}
        #: per-kind count of accounts evicted by the top-K sketch
        self.evictions: Dict[str, int] = {}

    def account(self, kind: str, key: str, note: str = "") -> Account:
        if not self.enabled:
            return NULL_ACCOUNT
        acct = self._accounts.get((kind, key))
        if acct is None:
            acct = Account(kind, key, note)
            if self.top_k is not None:
                held = [a for a in self._accounts.values()
                        if a.kind == kind]
                if len(held) >= self.top_k:
                    # space-saving: evict the lightest, the newcomer
                    # inherits its weight as an error bound — a truly
                    # heavy entity always climbs into the kept set
                    victim = min(held, key=lambda a: (a.weight, a.key))
                    del self._accounts[(victim.kind, victim.key)]
                    self.evictions[kind] = self.evictions.get(kind, 0) + 1
                    acct.weight = victim.weight
                    acct.error = victim.weight
            self._accounts[(kind, key)] = acct
        return acct

    def accounts(self, kind: Optional[str] = None) -> List[Account]:
        return [a for a in self._accounts.values()
                if kind is None or a.kind == kind]

    def kinds(self) -> List[str]:
        return sorted({a.kind for a in self._accounts.values()})

    def snapshot(self, sim_time: Optional[float] = None) -> Dict[str, object]:
        """Export every account, with per-kind bandwidth shares.

        ``share`` is the account's fraction of its kind's total bytes
        sent; ``bits_per_sec`` is its average offered rate over the
        run (only when *sim_time* is given and positive).
        """
        kinds: Dict[str, List[Dict[str, object]]] = {}
        for kind in self.kinds():
            accounts = sorted(self.accounts(kind), key=lambda a: a.key)
            rows = []
            for a in accounts:
                row = a.to_dict()
                if self.top_k is not None:
                    row["weight"] = a.weight
                    row["error"] = a.error
                    row["approx"] = a.error > 0
                rows.append(row)
            total_bytes = sum(r["bytes_sent"] for r in rows)
            for row in rows:
                row["share"] = (row["bytes_sent"] / total_bytes
                                if total_bytes else 0.0)
                if sim_time:
                    row["bits_per_sec"] = row["bytes_sent"] * 8.0 / sim_time
            kinds[kind] = rows
        snap: Dict[str, object] = {"enabled": self.enabled, "kinds": kinds}
        if self.top_k is not None:
            snap["top_k"] = self.top_k
            snap["evictions"] = dict(sorted(self.evictions.items()))
        return snap

    def reconcile(self, registry) -> List[Dict[str, object]]:
        """Cross-check ledger totals against the metrics registry.

        The ledger and the registry are fed at the same call sites but
        through independent objects; a refactor that loses one hook
        shows up here as a divergence.  Returns a list of divergence
        records (empty when consistent); byte totals must agree to
        within rounding (exactly, since both count integers).

        A top-K ledger cannot reconcile — evicted accounts would show
        as false divergences — so the check is skipped entirely.
        """
        out: List[Dict[str, object]] = []
        if (not self.enabled or self.top_k is not None
                or registry is None or not registry.enabled):
            return out

        def counter_by_label(component, name, label_key):
            found = {}
            for (comp, nm, labels), inst in registry.find(component, name).items():
                found[dict(labels).get(label_key)] = inst.value
            return found

        checks = [
            ("vc", "vc", counter_by_label("vc", "pdus_sent", "vc"),
             lambda a: a.units_sent, "pdus_sent"),
            ("vc", "vc", counter_by_label("vc", "pdus_delivered", "vc"),
             lambda a: a.units_delivered, "pdus_delivered"),
            ("stream", "stream", counter_by_label("streaming", "bytes_sent",
                                                  "stream"),
             lambda a: a.bytes_sent, "bytes_sent"),
            ("stream", "stream", counter_by_label("streaming", "frames_sent",
                                                  "stream"),
             lambda a: a.units_sent, "frames_sent"),
            ("link", "link", counter_by_label("link", "drops_total", "link"),
             lambda a: a.drops, "drops_total"),
        ]
        for kind, _label, registry_vals, getter, field in checks:
            for acct in self.accounts(kind):
                if acct.key not in registry_vals:
                    continue
                ledger_val = getter(acct)
                registry_val = registry_vals[acct.key]
                if abs(ledger_val - registry_val) > 0.5:
                    out.append({"kind": kind, "key": acct.key,
                                "field": field, "ledger": ledger_val,
                                "registry": registry_val})
        return out


# -- rendering --------------------------------------------------------------

def _pad(text: str, width: int) -> str:
    return text[:width].ljust(width)


def _fmt_bytes(n: float) -> str:
    if n >= 1e9:
        return f"{n / 1e9:.2f}G"
    if n >= 1e6:
        return f"{n / 1e6:.2f}M"
    if n >= 1e3:
        return f"{n / 1e3:.1f}k"
    return f"{int(n)}"


_SORT_KEYS = {
    "bytes": lambda r: r.get("bytes_sent", 0) + r.get("bytes_delivered", 0),
    "cells": lambda r: r.get("cells_sent", 0) + r.get("cells_delivered", 0),
    "units": lambda r: r.get("units_sent", 0) + r.get("units_delivered", 0),
    "drops": lambda r: r.get("drops", 0),
    "residency": lambda r: r.get("residency_seconds", 0.0),
}


def render_top(payload: Dict[str, object], *, kind: Optional[str] = None,
               sort: str = "bytes", limit: int = 20,
               title: str = "accounting") -> str:
    """Render a ledger snapshot as per-kind `top`-style tables."""
    if sort not in _SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_COLUMNS}, got {sort!r}")
    lines: List[str] = [f"== {title} =="]
    if not payload.get("enabled", False):
        lines.append("  accounting disabled (run with accounting enabled "
                     "or pass --live)")
        return "\n".join(lines)
    kinds: Dict[str, List[Dict]] = payload.get("kinds", {})  # type: ignore
    wanted: Iterable[str] = [kind] if kind else sorted(kinds)
    header = (f"  {_pad('entity', 26)} {'units s/d':>11} {'cells s/d':>13} "
              f"{'bytes s/d':>15} {'drops':>6} {'dwell':>8} {'share':>6}")
    for k in wanted:
        rows = kinds.get(k, [])
        lines.append(f"-- {k} ({len(rows)}) --")
        if not rows:
            lines.append("  (no accounts)")
            continue
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        ordered = sorted(rows, key=_SORT_KEYS[sort], reverse=True)[:limit]
        for r in ordered:
            # `~` flags a top-K row whose inherited error bound is
            # nonzero: part of its weight may belong to evicted rows
            marker = "~" if r.get("approx") else ""
            name = (marker + r["key"]
                    + (f" ({r['note']})" if r.get("note") else ""))
            units = f"{r['units_sent']}/{r['units_delivered']}"
            cells = f"{r['cells_sent']}/{r['cells_delivered']}"
            nbytes = (f"{_fmt_bytes(r['bytes_sent'])}/"
                      f"{_fmt_bytes(r['bytes_delivered'])}")
            lines.append(
                f"  {_pad(name, 26)} {units:>11} {cells:>13} {nbytes:>15} "
                f"{r['drops']:>6} {r['residency_seconds']:>7.3f}s "
                f"{r['share'] * 100:>5.1f}%")
        if len(rows) > limit:
            lines.append(f"  ... {len(rows) - limit} more "
                         f"(raise --limit to see them)")
    if payload.get("top_k") is not None:
        evictions = payload.get("evictions") or {}
        total_evicted = (sum(evictions.values())
                         if isinstance(evictions, dict) else 0)
        lines.append(f"  top-{payload['top_k']} space-saving sketch: "
                     f"~ rows carry an inherited error bound "
                     f"({total_evicted} accounts evicted)")
    return "\n".join(lines)


def load_accounting_file(path) -> Dict[str, object]:
    """Load an ``accounting_<name>.json`` sidecar, or the embedded
    ``accounting`` block of a merged archive (``repro.obs merge``)."""
    import json
    from pathlib import Path

    data = json.loads(Path(path).read_text())
    if data.get("merged") and isinstance(data.get("accounting"), dict):
        data = data["accounting"]
    if "kinds" not in data:
        raise ValueError(f"{path} does not look like an accounting sidecar")
    return data
