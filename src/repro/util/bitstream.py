"""Bit-level reader/writer.

The ATM cell header packs fields at sub-byte granularity (GFC is 4
bits, VPI 8, VCI 16, PTI 3, CLP 1) and the synthetic media codecs use
variable-length codes, so both need a small big-endian bit stream.
"""

from __future__ import annotations

from repro.util.errors import DecodingError


class BitWriter:
    """Accumulates bits most-significant-first and renders them to bytes."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bitpos = 0  # bits already used in the last byte (0..7)

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return len(self._bytes) * 8 - ((8 - self._bitpos) % 8)

    def write(self, value: int, nbits: int) -> None:
        """Append the *nbits* low-order bits of *value*, MSB first."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if value < 0 or (nbits < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        for shift in range(nbits - 1, -1, -1):
            bit = (value >> shift) & 1
            if self._bitpos == 0:
                self._bytes.append(0)
            if bit:
                self._bytes[-1] |= 1 << (7 - self._bitpos)
            self._bitpos = (self._bitpos + 1) % 8

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes.  Fast path when byte-aligned."""
        if self._bitpos == 0:
            self._bytes.extend(data)
        else:
            for b in data:
                self.write(b, 8)

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        self._bitpos = 0

    def getvalue(self) -> bytes:
        """Return the written bits as bytes (zero-padded to a boundary)."""
        return bytes(self._bytes)


class BitReader:
    """Reads bits most-significant-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # absolute bit position

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read(self, nbits: int) -> int:
        """Read *nbits* bits as an unsigned integer."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if nbits > self.bits_remaining:
            raise DecodingError(
                f"bit stream exhausted: wanted {nbits} bits, "
                f"have {self.bits_remaining}"
            )
        value = 0
        pos = self._pos
        for _ in range(nbits):
            byte = self._data[pos >> 3]
            bit = (byte >> (7 - (pos & 7))) & 1
            value = (value << 1) | bit
            pos += 1
        self._pos = pos
        return value

    def read_bytes(self, n: int) -> bytes:
        """Read *n* whole bytes.  Fast path when byte-aligned."""
        if self._pos % 8 == 0:
            start = self._pos >> 3
            if start + n > len(self._data):
                raise DecodingError("bit stream exhausted reading bytes")
            self._pos += n * 8
            return self._data[start : start + n]
        return bytes(self.read(8) for _ in range(n))

    def align(self) -> None:
        """Skip to the next byte boundary."""
        rem = self._pos % 8
        if rem:
            self._pos += 8 - rem
