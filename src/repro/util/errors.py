"""Common exception hierarchy for the MITS reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch domain failures without catching programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class EncodingError(ReproError):
    """Raised when a value cannot be encoded (ASN.1, media codec, cell)."""


class DecodingError(ReproError):
    """Raised when a byte stream cannot be decoded back into a value."""


class NetworkError(ReproError):
    """Raised by the ATM substrate and transport layer (VC setup failure,
    unroutable destination, connection teardown, delivery timeout)."""


class DatabaseError(ReproError):
    """Raised by the courseware database (unknown object, transaction
    conflict, constraint violation)."""


class AuthoringError(ReproError):
    """Raised by the authoring environment (inconsistent document
    structure, unresolvable reference, invalid template parameters)."""


class PresentationError(ReproError):
    """Raised by the MHEG engine and the navigator (invalid object state
    transition, unknown run-time object, unprepared content)."""
