"""CRC generators used by the ATM substrate.

Two checksums appear in the ATM standards that MITS rode on:

* the **HEC** (Header Error Control) byte of every ATM cell is a CRC-8
  over the first four header octets, generator ``x^8 + x^2 + x + 1``
  (0x107), with the coset ``0x55`` added per ITU-T I.432;
* the **AAL5 CPCS trailer** carries a CRC-32 (the IEEE 802.3 polynomial,
  reflected) over the whole CPCS-PDU.

Both are implemented with precomputed tables so that segmenting large
media objects into cells stays cheap (profiling showed table lookup is
~40x faster than bit-at-a-time for AAL5-sized frames).
"""

from __future__ import annotations

_HEC_POLY = 0x07  # x^8 + x^2 + x + 1 with the x^8 term implicit
_HEC_COSET = 0x55

def _build_crc8_table(poly: int) -> list[int]:
    table = []
    for byte in range(256):
        reg = byte
        for _ in range(8):
            if reg & 0x80:
                reg = ((reg << 1) ^ poly) & 0xFF
            else:
                reg = (reg << 1) & 0xFF
        table.append(reg)
    return table


_CRC8_TABLE = _build_crc8_table(_HEC_POLY)


def crc8_hec(header4: bytes) -> int:
    """Compute the HEC octet for the first four octets of a cell header.

    Returns the CRC-8 of *header4* with the I.432 coset 0x55 added, i.e.
    the value that goes into the fifth header octet.
    """
    if len(header4) != 4:
        raise ValueError(f"HEC is computed over exactly 4 octets, got {len(header4)}")
    reg = 0
    for b in header4:
        reg = _CRC8_TABLE[reg ^ b]
    return reg ^ _HEC_COSET


# CRC-32 (IEEE 802.3 / AAL5), reflected implementation.
_CRC32_POLY_REFLECTED = 0xEDB88320


def _build_crc32_table() -> list[int]:
    table = []
    for byte in range(256):
        reg = byte
        for _ in range(8):
            if reg & 1:
                reg = (reg >> 1) ^ _CRC32_POLY_REFLECTED
            else:
                reg >>= 1
        table.append(reg)
    return table


_CRC32_TABLE = _build_crc32_table()

#: Residue left in the (pre-inversion) register after running the CRC
#: over a frame *including* its trailing CRC field.  Receivers check
#: this instead of recomputing and comparing.
CRC32_AAL5_GOOD = 0xDEBB20E3


def crc32_aal5(data: bytes, crc: int = 0xFFFFFFFF) -> int:
    """Running CRC-32 over *data*.

    Call with the default initial value for a fresh frame; the final
    transmitted CRC is the bitwise complement of the returned register.
    Passing the previous return value as *crc* continues an incremental
    computation across fragments.
    """
    reg = crc
    for b in data:
        reg = _CRC32_TABLE[(reg ^ b) & 0xFF] ^ (reg >> 8)
    return reg


def crc32_final(reg: int) -> int:
    """Finalize an AAL5 CRC register into the transmitted 32-bit value."""
    return reg ^ 0xFFFFFFFF
