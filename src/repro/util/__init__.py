"""Shared low-level utilities for the MITS reproduction.

This subpackage holds the pieces every substrate needs: CRC generators
(ATM AAL5 uses CRC-32, the cell header HEC uses CRC-8), a bit-level
reader/writer used by the cell header and the media codecs, and the
common exception hierarchy.
"""

from repro.util.crc import crc8_hec, crc32_aal5, CRC32_AAL5_GOOD
from repro.util.bitstream import BitReader, BitWriter
from repro.util.errors import (
    ReproError,
    EncodingError,
    DecodingError,
    NetworkError,
    DatabaseError,
    AuthoringError,
    PresentationError,
)

__all__ = [
    "crc8_hec",
    "crc32_aal5",
    "CRC32_AAL5_GOOD",
    "BitReader",
    "BitWriter",
    "ReproError",
    "EncodingError",
    "DecodingError",
    "NetworkError",
    "DatabaseError",
    "AuthoringError",
    "PresentationError",
]
