"""Recovery policies: the defensive half of fault injection.

A :class:`RecoveryPolicy` is a bag of knobs the core wiring threads
into the transport and streaming layers when a system is built:

* connection auto-reconnect after VC teardown (``transport.connection``)
* RPC timeout/retry with exponential backoff + jitter (``transport.rpc``)
* playout concealment and bitrate downgrade (``streaming``)

The default policy disables everything, preserving the exact
pre-existing behaviour of clean runs (and their bench baselines); the
:data:`RESILIENT` preset is what the chaos scenarios use.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for how hard the system fights back against faults."""

    #: re-signal a replacement VC pair after a teardown
    auto_reconnect: bool = False
    max_reconnects: int = 8
    reconnect_delay: float = 0.05
    #: RPC client retries (0 = a timeout fails the call immediately)
    rpc_max_retries: int = 0
    rpc_timeout: float = 10.0
    backoff_base: float = 0.2
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    #: playout: conceal up to this many consecutive missing frames
    conceal_limit: int = 0
    #: ask the sender for a bitrate downgrade after this many stalls
    degrade_after_stalls: int = 0

    @property
    def enabled(self) -> bool:
        return (self.auto_reconnect or self.rpc_max_retries > 0
                or self.conceal_limit > 0 or self.degrade_after_stalls > 0)


#: everything on — what the faulty scenarios run with
RESILIENT = RecoveryPolicy(
    auto_reconnect=True, max_reconnects=8, reconnect_delay=0.05,
    rpc_max_retries=4, rpc_timeout=2.0,
    backoff_base=0.1, backoff_factor=2.0, backoff_jitter=0.5,
    conceal_limit=3, degrade_after_stalls=2,
)
