"""Deterministic fault injection and recovery policies.

The thesis runs MITS over OCRInet, where link outages, cell loss, and
congested or crashing switches are facts of life.  This package is the
adversary: a :class:`FaultPlan` describes *what goes wrong when*
(scheduled faults plus seeded random ones), a :class:`FaultInjector`
drives the plan off the simulator clock against a built
:class:`~repro.core.system.MitsSystem`, and a :class:`RecoveryPolicy`
dials in the defensive half — RPC retries, connection re-establishment,
playout concealment and bitrate downgrade.

Everything is seeded: the same plan and seed produce byte-identical
system snapshots, so chaos tests are as reproducible as clean ones.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS, FaultPlan, FaultSpec, PLANS, RandomFaults, resolve_plan,
)
from repro.faults.recovery import RecoveryPolicy, RESILIENT

__all__ = [
    "FAULT_KINDS", "FaultInjector", "FaultPlan", "FaultSpec",
    "PLANS", "RandomFaults", "RecoveryPolicy", "RESILIENT",
    "resolve_plan",
]
