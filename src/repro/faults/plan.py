"""Fault plans: what goes wrong, where, and when.

A plan is data, not behaviour — a list of :class:`FaultSpec` entries
(each one fault at one simulated time) plus optional
:class:`RandomFaults` generators that are expanded deterministically
from the plan seed when the plan is resolved.  The
:class:`~repro.faults.injector.FaultInjector` turns the resolved list
into scheduled simulator events.

Fault kinds and the thesis mechanism each one stresses:

``link_down``     link outage → go-back-N retransmission, reconnect
``burst_loss``    cell-loss burst → AAL5 CRC detection, ARQ recovery
``jitter``        propagation jitter → cell reordering, playout buffer
``switch_crash``  fabric blackout → end-to-end timeout paths
``vc_teardown``   circuit torn down → connection re-establishment
``server_stall``  content-server freeze → RPC timeout/retry/backoff
``server_slow``   degraded server CPU → queueing growth, SLO headroom
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

FAULT_KINDS = (
    "link_down", "burst_loss", "jitter", "switch_crash",
    "vc_teardown", "server_stall", "server_slow",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault at one simulated time.

    ``target`` names what breaks: ``"a->b"`` for links and VC pairs,
    a switch name for crashes, a site host for server faults.
    Transient faults clear after ``duration``; ``vc_teardown`` is
    instantaneous and permanent (recovery must re-signal).
    """

    at: float
    kind: str
    target: str
    duration: float = 0.0
    #: cell-loss probability for ``burst_loss``
    rate: float = 0.0
    #: extra propagation jitter bound (seconds) for ``jitter``
    jitter: float = 0.0
    #: service-time multiplier for ``server_slow``
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (have: {FAULT_KINDS})")
        if self.at < 0:
            raise ValueError("fault time must be >= 0")


@dataclass(frozen=True)
class RandomFaults:
    """A seeded generator of *count* faults inside a time window.

    Expansion picks, per fault, a kind and a target uniformly from the
    given pools and a time uniformly in ``window`` — all from the plan
    RNG, so the same seed always yields the same faults.
    """

    kinds: Tuple[str, ...]
    targets: Tuple[str, ...]
    window: Tuple[float, float]
    count: int = 1
    duration: float = 0.05
    rate: float = 0.05
    jitter: float = 0.001
    factor: float = 4.0

    def expand(self, rng: random.Random) -> List[FaultSpec]:
        out = []
        for _ in range(self.count):
            out.append(FaultSpec(
                at=rng.uniform(*self.window),
                kind=rng.choice(list(self.kinds)),
                target=rng.choice(list(self.targets)),
                duration=self.duration, rate=self.rate,
                jitter=self.jitter, factor=self.factor))
        return out


@dataclass
class FaultPlan:
    """A named, seeded collection of faults to inject into one run."""

    name: str = "plan"
    seed: int = 0
    faults: List[FaultSpec] = field(default_factory=list)
    random_faults: List[RandomFaults] = field(default_factory=list)

    def resolve(self) -> List[FaultSpec]:
        """Expand random generators and return all faults, time-sorted.

        Deterministic: the expansion RNG is seeded from ``self.seed``
        alone, and ties in time keep specification order.
        """
        rng = random.Random(self.seed)
        resolved = list(self.faults)
        for gen in self.random_faults:
            resolved.extend(gen.expand(rng))
        return sorted(resolved, key=lambda f: f.at)


def _classroom_chaos() -> FaultPlan:
    """One of each fault kind against the quickstart/classroom star
    topology, timed so the Course-On-Demand flow is mid-flight."""
    return FaultPlan(name="classroom-chaos", seed=42, faults=[
        # streaming leg takes cell loss + jitter: playout must conceal
        FaultSpec(at=6.0, kind="burst_loss", target="sw0->user1",
                  duration=1.5, rate=0.05),
        FaultSpec(at=8.0, kind="jitter", target="sw0->user1",
                  duration=2.0, jitter=0.002),
        # control plane takes an outage + a teardown: ARQ + reconnect
        FaultSpec(at=9.0, kind="link_down", target="user1->sw0",
                  duration=0.2),
        FaultSpec(at=11.0, kind="vc_teardown", target="user1->database"),
        # the fabric itself blinks
        FaultSpec(at=13.0, kind="switch_crash", target="sw0",
                  duration=0.05),
        # the single database CPU freezes (longer than the RESILIENT
        # RPC timeout, so retries must carry the call), then crawls
        FaultSpec(at=14.0, kind="server_stall", target="database",
                  duration=3.0),
        FaultSpec(at=16.0, kind="server_slow", target="database",
                  duration=3.0, factor=8.0),
    ])


def _link_flaps() -> FaultPlan:
    """Seeded random link outages — the bread-and-butter soak plan."""
    return FaultPlan(name="link-flaps", seed=7, random_faults=[
        RandomFaults(kinds=("link_down", "burst_loss"),
                     targets=("sw0->user1", "user1->sw0",
                              "sw0->database", "database->sw0"),
                     window=(5.0, 20.0), count=6,
                     duration=0.1, rate=0.03),
    ])


#: named plans usable from ``--faults <name>`` and the scenarios
PLANS: Dict[str, Callable[[], FaultPlan]] = {
    "classroom-chaos": _classroom_chaos,
    "link-flaps": _link_flaps,
}


def resolve_plan(plan: Union[str, FaultPlan, None]) -> Optional[FaultPlan]:
    """Accept a plan object, a registered plan name, or None."""
    if plan is None or isinstance(plan, FaultPlan):
        return plan
    try:
        return PLANS[plan]()
    except KeyError:
        raise ValueError(
            f"unknown fault plan {plan!r} (have: {sorted(PLANS)})") \
            from None
