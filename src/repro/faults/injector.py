"""The fault injector: a plan, armed against a live system.

:meth:`FaultInjector.attach` resolves the plan and schedules one
simulator event per fault.  Each injection gets a monotonically
increasing ``fault_id``, is recorded into the FlightRecorder (so a
post-mortem can line faults up with the retransmissions, stalls, and
retries they caused), and bumps the ``faults.injected`` counter the
SLO layer reads.  Transient faults schedule their own clearing.

Seeds for the per-fault RNGs (burst loss, jitter) are derived as
``plan.seed * 1000 + fault_id`` — stable across runs, distinct across
faults.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.faults.plan import FaultPlan, FaultSpec, resolve_plan
from repro.util.errors import ReproError


class FaultError(ReproError):
    """A fault spec does not match the attached system."""


@dataclass
class InjectedFault:
    """Book-keeping for one executed injection."""

    fault_id: int
    spec: FaultSpec
    injected_at: float
    cleared_at: Optional[float] = None


class FaultInjector:
    """Drives one :class:`FaultPlan` against one ``MitsSystem``."""

    def __init__(self, plan: Union[str, FaultPlan], *,
                 seed: Optional[int] = None) -> None:
        resolved = resolve_plan(plan)
        if resolved is None:
            raise FaultError("fault injector needs a plan")
        if seed is not None:
            resolved = FaultPlan(name=resolved.name, seed=seed,
                                 faults=resolved.faults,
                                 random_faults=resolved.random_faults)
        self.plan = resolved
        self.injected: List[InjectedFault] = []
        self._ids = itertools.count(1)
        self._mits = None
        self._m_injected = None

    # -- arming ----------------------------------------------------------

    def attach(self, mits) -> "FaultInjector":
        """Schedule every fault in the plan on *mits*'s simulator."""
        if self._mits is not None:
            raise FaultError("injector already attached")
        self._mits = mits
        sim = mits.sim
        metrics = sim.metrics
        self._m_injected = metrics.counter("faults", "injected",
                                           plan=self.plan.name)
        for spec in self.plan.resolve():
            self._validate(spec)
            sim.schedule(max(0.0, spec.at - sim.now), self._inject, spec)
        sim.recorder.record("faults", "plan_armed", plan=self.plan.name,
                            seed=self.plan.seed,
                            faults=len(self.plan.resolve()))
        return self

    def _validate(self, spec: FaultSpec) -> None:
        net = self._mits.network
        if spec.kind in ("link_down", "burst_loss", "jitter"):
            if self._link_key(spec.target) not in net.links:
                raise FaultError(
                    f"fault targets unknown link {spec.target!r}")
        elif spec.kind == "switch_crash":
            if spec.target not in net.switches:
                raise FaultError(
                    f"fault targets unknown switch {spec.target!r}")
        elif spec.kind == "vc_teardown":
            src, dst = self._pair(spec.target)
            if src not in net.hosts or dst not in net.hosts:
                raise FaultError(
                    f"fault targets unknown host pair {spec.target!r}")
        elif spec.kind in ("server_stall", "server_slow"):
            self._processor(spec.target)

    @staticmethod
    def _pair(target: str) -> tuple:
        if "->" not in target:
            raise FaultError(
                f"target {target!r} must be of the form 'src->dst'")
        src, dst = target.split("->", 1)
        return src, dst

    def _link_key(self, target: str) -> tuple:
        return self._pair(target)

    def _processor(self, target: str):
        mits = self._mits
        if target == mits.database.host:
            return mits.database.processor
        raise FaultError(
            f"no shared processor at site {target!r} "
            f"(have: {mits.database.host!r})")

    # -- injection -------------------------------------------------------

    def _inject(self, spec: FaultSpec) -> None:
        sim = self._mits.sim
        fault_id = next(self._ids)
        record = InjectedFault(fault_id=fault_id, spec=spec,
                               injected_at=sim.now)
        self.injected.append(record)
        self._m_injected.inc()
        sim.recorder.record(
            "faults", "injected", severity="warning",
            fault_id=fault_id, fault=spec.kind, target=spec.target,
            duration=spec.duration)
        derived_seed = self.plan.seed * 1000 + fault_id
        clear = None
        net = self._mits.network
        if spec.kind == "link_down":
            link = net.links[self._link_key(spec.target)]
            link.set_down(True)
            clear = lambda: link.set_down(False)
        elif spec.kind == "burst_loss":
            link = net.links[self._link_key(spec.target)]
            previous = link.error_rate
            link.set_error_rate(spec.rate, seed=derived_seed)
            clear = lambda: link.set_error_rate(previous)
        elif spec.kind == "jitter":
            link = net.links[self._link_key(spec.target)]
            link.set_jitter(spec.jitter, seed=derived_seed)
            clear = lambda: link.set_jitter(0.0)
        elif spec.kind == "switch_crash":
            switch = net.switches[spec.target]
            switch.set_crashed(True)
            clear = lambda: switch.set_crashed(False)
        elif spec.kind == "vc_teardown":
            src, dst = self._pair(spec.target)
            for vc in net.vcs_between(src, dst):
                net.close_vc(vc)
        elif spec.kind == "server_stall":
            self._processor(spec.target).stall(spec.duration)
        elif spec.kind == "server_slow":
            proc = self._processor(spec.target)
            previous_factor = proc.slowdown
            proc.set_slowdown(spec.factor)
            clear = lambda: proc.set_slowdown(previous_factor)
        if clear is not None and spec.duration > 0:
            sim.schedule(spec.duration, self._clear, record, clear)

    def _clear(self, record: InjectedFault, clear) -> None:
        clear()
        record.cleared_at = self._mits.sim.now
        self._mits.sim.recorder.record(
            "faults", "cleared", fault_id=record.fault_id,
            fault=record.spec.kind, target=record.spec.target)

    # -- reporting -------------------------------------------------------

    def correlate(self, *, slack: float = 0.5) -> Dict[int, List[int]]:
        """Map each fault_id to the trace_ids active in its window.

        A trace is considered affected when the FlightRecorder holds an
        event carrying that trace_id between the injection time and
        the clearing time (plus *slack* for aftershocks like delayed
        retransmissions).
        """
        out: Dict[int, List[int]] = {}
        events = self._mits.sim.recorder.events
        for record in self.injected:
            start = record.injected_at
            end = (record.cleared_at
                   if record.cleared_at is not None
                   else record.injected_at + record.spec.duration) + slack
            traces = sorted({
                e.trace_id for e in events
                if e.trace_id is not None and start <= e.time <= end})
            out[record.fault_id] = traces
        return out

    def snapshot(self) -> Dict[str, Any]:
        """JSON-stable summary for ``MitsSystem.snapshot()``."""
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "injected": [
                {
                    "fault_id": r.fault_id,
                    "kind": r.spec.kind,
                    "target": r.spec.target,
                    "at": r.injected_at,
                    "cleared_at": r.cleared_at,
                }
                for r in self.injected
            ],
            "affected_traces": {
                str(fid): traces
                for fid, traces in self.correlate().items()
            },
        }
