"""Named, deterministic driving scenarios for telemetry tooling.

The live dashboard (``python -m repro.obs dashboard --live``) and the
perf-regression gate (``scripts/bench_gate.py``) both need the same
thing: a deployment with known work scheduled on it and a known
simulated-time horizon to run to, so trajectories and baselines are
reproducible run over run.  Each scenario builds a
:class:`~repro.core.system.MitsSystem`, fast-forwards the setup
(publishing assets and courseware), schedules the interactive phase,
and returns a :class:`ScenarioRun` whose ``horizon`` the caller drives
the simulator to — in one go (bench gate) or in slices (live
dashboard refresh loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.atm.qos import ServiceCategory, TrafficContract
from repro.authoring import (
    InteractiveDocument, Scene, SceneObject, Section, TimelineEntry,
)
from repro.core.system import MitsSystem
from repro.media.video import VideoStream
from repro.streaming import VideoPlayer, VideoStreamSender

__all__ = ["SCENARIOS", "ScenarioRun", "build"]


@dataclass
class ScenarioRun:
    """A deployed system plus the horizon its scripted load runs to."""

    name: str
    mits: MitsSystem
    horizon: float

    def run_to_horizon(self) -> None:
        """Drive the whole scripted load in one go."""
        self.mits.sim.run(until=self.horizon)


def _publish_course(mits: MitsSystem, *, seconds: float = 2.0) -> None:
    """Standard assets + a one-scene video course, published."""
    assets = mits.produce_standard_assets("dash", seconds=seconds)
    author = mits.add_author("author1", "dash-101", catalog=assets)
    scene = Scene(name="welcome", objects=[
        SceneObject(name="clip", kind="video",
                    content_ref="dash-intro-video"),
        SceneObject(name="notes", kind="text", content_ref="dash-notes",
                    position=(0, 300)),
        SceneObject(name="skip", kind="choice", label="Skip the video"),
    ])
    scene.timeline.add(TimelineEntry("clip", 0.0))
    scene.timeline.add(TimelineEntry("notes", 0.5, 1.5))
    scene.behavior.when_selected("skip", ("stop", "clip"))
    course = InteractiveDocument("dash-101", title="Dashboard course")
    course.add_section(Section(name="intro", scenes=[scene]))
    compiled = author.editor.compile_imd(course)
    mits.wait(author.publish_courseware(
        compiled, courseware_id="dash-101", title="Dashboard course",
        program="telemetry", keywords=["telemetry"],
        introduction_ref="dash-intro-video"))
    mits.wait(author.publish_course(
        course_code="D101", name="Dashboard course", program="telemetry",
        courseware_id="dash-101"))


def _enroll(mits: MitsSystem, host: str, student: str):
    user = mits.add_user(host)
    nav = user.navigator
    nav.start()
    nav.register(student)
    mits.sim.run(until=mits.sim.now + 5)
    return nav


def _stream_video(mits: MitsSystem, host: str) -> VideoPlayer:
    """Stream the intro video from the database site to *host* over a
    dedicated VC — the classroom-streaming leg that drives the player
    buffer / frame-lateness trajectories."""
    sim = mits.sim
    video = mits.database.db.content.get("dash-intro-video").data
    stream = VideoStream(video)
    player = VideoPlayer(sim, preroll=0.5,
                         frames_expected=stream.frames,
                         name=f"classroom-{host}")
    contract = TrafficContract(ServiceCategory.UBR,
                               pcr=mits.spec.access_bps / 424)
    vc = mits.network.open_vc("database", host, contract, player.on_pdu)
    sender = VideoStreamSender(sim, vc, video, lead=0.25)
    sender.start()
    return player


def quickstart(**kwargs: Any) -> ScenarioRun:
    """One student takes the course on demand — the full pipeline."""
    kwargs.setdefault("topology", "star")
    kwargs.setdefault("tracing", True)
    mits = MitsSystem(**kwargs)
    _publish_course(mits)
    nav = _enroll(mits, "user1", "Dash Student")
    nav.enter_classroom("D101", "dash-101")
    _stream_video(mits, "user1")
    return ScenarioRun("quickstart", mits, mits.sim.now + 30.0)


def classroom(**kwargs: Any) -> ScenarioRun:
    """Three students enter the classroom at staggered offsets — the
    closest thing to the thesis's streamed classroom session."""
    kwargs.setdefault("topology", "star")
    kwargs.setdefault("extra_users", 2)
    kwargs.setdefault("tracing", True)
    mits = MitsSystem(**kwargs)
    _publish_course(mits)
    navs = [_enroll(mits, f"user{i + 1}", f"Student {i + 1}")
            for i in range(3)]
    for i, nav in enumerate(navs):
        mits.sim.schedule(2.0 * i, nav.enter_classroom,
                          "D101", "dash-101")
        mits.sim.schedule(2.0 * i, _stream_video, mits, f"user{i + 1}")
    return ScenarioRun("classroom", mits, mits.sim.now + 45.0)


SCENARIOS: Dict[str, Callable[..., ScenarioRun]] = {
    "quickstart": quickstart,
    "classroom": classroom,
}


def build(name: str, **kwargs: Any) -> ScenarioRun:
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (have: {sorted(SCENARIOS)})") \
            from None
    return factory(**kwargs)


def names() -> List[str]:
    return sorted(SCENARIOS)
