"""Named, deterministic driving scenarios for telemetry tooling.

The live dashboard (``python -m repro.obs dashboard --live``) and the
perf-regression gate (``scripts/bench_gate.py``) both need the same
thing: a deployment with known work scheduled on it and a known
simulated-time horizon to run to, so trajectories and baselines are
reproducible run over run.  Each scenario builds a
:class:`~repro.core.system.MitsSystem`, fast-forwards the setup
(publishing assets and courseware), schedules the interactive phase,
and returns a :class:`ScenarioRun` whose ``horizon`` the caller drives
the simulator to — in one go (bench gate) or in slices (live
dashboard refresh loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from repro.atm.qos import ServiceCategory, TrafficContract
from repro.authoring import (
    InteractiveDocument, Scene, SceneObject, Section, TimelineEntry,
)
from repro.core.system import MitsSystem
from repro.faults import FaultInjector, FaultPlan, RESILIENT
from repro.media.video import VideoStream
from repro.streaming import VideoPlayer, VideoStreamSender

__all__ = ["SCENARIOS", "ScenarioRun", "build"]


@dataclass
class ScenarioRun:
    """A deployed system plus the horizon its scripted load runs to."""

    name: str
    mits: MitsSystem
    horizon: float
    #: armed fault injector, when the scenario runs under a fault plan
    injector: Optional[FaultInjector] = None

    def run_to_horizon(self) -> None:
        """Drive the whole scripted load in one go."""
        self.mits.sim.run(until=self.horizon)


def _publish_course(mits: MitsSystem, *, seconds: float = 2.0) -> None:
    """Standard assets + a one-scene video course, published."""
    assets = mits.produce_standard_assets("dash", seconds=seconds)
    author = mits.add_author("author1", "dash-101", catalog=assets)
    scene = Scene(name="welcome", objects=[
        SceneObject(name="clip", kind="video",
                    content_ref="dash-intro-video"),
        SceneObject(name="notes", kind="text", content_ref="dash-notes",
                    position=(0, 300)),
        SceneObject(name="skip", kind="choice", label="Skip the video"),
    ])
    scene.timeline.add(TimelineEntry("clip", 0.0))
    scene.timeline.add(TimelineEntry("notes", 0.5, 1.5))
    scene.behavior.when_selected("skip", ("stop", "clip"))
    course = InteractiveDocument("dash-101", title="Dashboard course")
    course.add_section(Section(name="intro", scenes=[scene]))
    compiled = author.editor.compile_imd(course)
    mits.wait(author.publish_courseware(
        compiled, courseware_id="dash-101", title="Dashboard course",
        program="telemetry", keywords=["telemetry"],
        introduction_ref="dash-intro-video"))
    mits.wait(author.publish_course(
        course_code="D101", name="Dashboard course", program="telemetry",
        courseware_id="dash-101"))


def _enroll(mits: MitsSystem, host: str, student: str):
    user = mits.add_user(host)
    nav = user.navigator
    nav.start()
    nav.register(student)
    mits.sim.run(until=mits.sim.now + 5)
    return nav


def _stream_video(mits: MitsSystem, host: str) -> VideoPlayer:
    """Stream the intro video from the database site to *host* over a
    dedicated VC — the classroom-streaming leg that drives the player
    buffer / frame-lateness trajectories."""
    sim = mits.sim
    policy = mits.recovery
    video = mits.database.db.content.get("dash-intro-video").data
    stream = VideoStream(video)
    player = VideoPlayer(sim, preroll=0.5,
                         frames_expected=stream.frames,
                         name=f"classroom-{host}",
                         conceal_limit=policy.conceal_limit,
                         degrade_after_stalls=policy.degrade_after_stalls)
    contract = TrafficContract(ServiceCategory.UBR,
                               pcr=mits.spec.access_bps / 424)
    vc = mits.network.open_vc("database", host, contract, player.on_pdu)
    sender = VideoStreamSender(sim, vc, video, lead=0.25)
    # close the degradation loop: sustained stalls at the player ask
    # the sender for a coarser bitrate
    player.on_degrade = sender.downgrade
    sender.start()
    return player


def quickstart(**kwargs: Any) -> ScenarioRun:
    """One student takes the course on demand — the full pipeline."""
    kwargs.setdefault("topology", "star")
    kwargs.setdefault("tracing", True)
    mits = MitsSystem(**kwargs)
    _publish_course(mits)
    nav = _enroll(mits, "user1", "Dash Student")
    nav.enter_classroom("D101", "dash-101")
    _stream_video(mits, "user1")
    return ScenarioRun("quickstart", mits, mits.sim.now + 30.0)


def classroom(**kwargs: Any) -> ScenarioRun:
    """Three students enter the classroom at staggered offsets — the
    closest thing to the thesis's streamed classroom session."""
    kwargs.setdefault("topology", "star")
    kwargs.setdefault("extra_users", 2)
    kwargs.setdefault("tracing", True)
    mits = MitsSystem(**kwargs)
    _publish_course(mits)
    navs = [_enroll(mits, f"user{i + 1}", f"Student {i + 1}")
            for i in range(3)]
    for i, nav in enumerate(navs):
        mits.sim.schedule(2.0 * i, nav.enter_classroom,
                          "D101", "dash-101")
        mits.sim.schedule(2.0 * i, _stream_video, mits, f"user{i + 1}")
    return ScenarioRun("classroom", mits, mits.sim.now + 45.0)


def faulty_classroom(**kwargs: Any) -> ScenarioRun:
    """The quickstart flow under the ``classroom-chaos`` fault plan,
    with the RESILIENT recovery policy fighting back — the scenario
    every recovery path is benchmarked and chaos-tested against."""
    kwargs.setdefault("topology", "star")
    kwargs.setdefault("tracing", True)
    kwargs.setdefault("recovery", RESILIENT)
    faults = kwargs.pop("faults", "classroom-chaos")
    fault_seed = kwargs.pop("fault_seed", None)
    mits = MitsSystem(**kwargs)
    _publish_course(mits)
    nav = _enroll(mits, "user1", "Chaos Student")
    nav.enter_classroom("D101", "dash-101")
    _stream_video(mits, "user1")
    injector = FaultInjector(faults, seed=fault_seed).attach(mits)
    mits.injector = injector
    # keep the control plane busy through the fault window: these
    # catalogue queries land on torn-down VCs (forcing reconnects) and
    # on the stalled/slowed database CPU (forcing RPC retries)
    user = mits.users["user1"]
    for at in (10.5, 12.0, 14.5, 17.0, 19.5):
        mits.sim.schedule(max(0.0, at - mits.sim.now),
                          user.client.list_courses)
    return ScenarioRun("faulty-classroom", mits, mits.sim.now + 30.0,
                       injector=injector)


SCENARIOS: Dict[str, Callable[..., ScenarioRun]] = {
    "quickstart": quickstart,
    "classroom": classroom,
    "faulty-classroom": faulty_classroom,
}


def build(name: str, *, faults: Union[str, FaultPlan, None] = None,
          fault_seed: Optional[int] = None,
          sampling: Any = None, stream: Any = None,
          **kwargs: Any) -> ScenarioRun:
    """Build a named scenario, optionally arming a fault plan on it.

    *faults* is a plan name (see ``repro.faults.PLANS``) or a
    :class:`FaultPlan`; *fault_seed* overrides the plan's seed for
    reproducing a specific chaotic run.  *sampling* is an optional
    :class:`~repro.obs.sampling.SamplingPolicy` bounding observability
    memory, and *stream* an ``obs_*.jsonl`` path (or
    :class:`~repro.obs.sink.ObsSink`) to stream telemetry to — both
    forwarded to :class:`MitsSystem`.
    """
    if sampling is not None:
        kwargs["sampling"] = sampling
    if stream is not None:
        kwargs["stream"] = stream
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (have: {sorted(SCENARIOS)})") \
            from None
    if name == "faulty-classroom":
        # the factory arms its own (overridable) plan
        if faults is not None:
            kwargs["faults"] = faults
        if fault_seed is not None:
            kwargs["fault_seed"] = fault_seed
        return factory(**kwargs)
    run = factory(**kwargs)
    if faults is not None:
        injector = FaultInjector(faults, seed=fault_seed).attach(run.mits)
        run.mits.injector = injector
        run.injector = injector
    return run


def names() -> List[str]:
    return sorted(SCENARIOS)
