"""MitsSystem: one whole MITS deployment in one object.

Builds the network (campus star or OCRInet-like metro WAN), places the
five kinds of site on it (Fig 3.1), opens their connections, and
exposes the end-to-end flows: produce media, author and publish
courseware, register students, take a course on demand, ask the
facilitator.  The benchmarks and examples all start from here.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.atm.network import AtmNetwork
from repro.atm.simulator import Simulator
from repro.atm.topology import ocrinet_like, star_campus
from repro.core.sites import (
    AuthorSite, DatabaseSite, FacilitatorSite,
    ProductionSite, UserSite,
)
from repro.database.api import wait_for
from repro.faults.recovery import RecoveryPolicy
from repro.media.base import MediaObject
from repro.obs.accounting import Ledger
from repro.obs.audit import ConservationAuditor
from repro.obs.meter import OverheadMeter
from repro.obs.profiler import LoopProfiler
from repro.obs.sampling import SamplingPolicy
from repro.obs.sink import ObsSink
from repro.obs.slo import SloMonitor
from repro.obs.timeseries import TelemetrySampler
from repro.obs.watchdog import Watchdog
from repro.util.errors import NetworkError


class MitsSystem:
    """A deployed MITS instance over a simulated ATM network."""

    def __init__(self, *, topology: str = "star", extra_users: int = 0,
                 seed: int = 1996, access_bps: float = 155.52e6,
                 tracing: bool = False,
                 telemetry_interval: Optional[float] = 0.25,
                 telemetry_capacity: int = 512,
                 profile: bool = False,
                 accounting: bool = False,
                 watchdog: bool = True,
                 sampling: Optional[SamplingPolicy] = None,
                 stream: Union[None, str, ObsSink] = None,
                 meter: bool = True,
                 recovery: Optional[RecoveryPolicy] = None,
                 fidelity: str = "batched") -> None:
        #: simulation fidelity: "batched" (default) = cell-train fast
        #: path, equivalent to "cell" (legacy per-cell events, the
        #: differential harness proves it); "hybrid" = batched
        #: foreground + flow-level background VCs (±tolerance)
        self.fidelity = fidelity
        #: the sampling policy every obs collector sheds load under;
        #: None keeps today's keep-everything behaviour exactly
        self.sampling = sampling
        #: overhead self-metering: on by default (a handful of clock
        #: reads per span/tick/flush, nothing per-cell)
        self.meter: Optional[OverheadMeter] = \
            OverheadMeter() if meter else None
        #: per-entity accounting: opt-in — the disabled ledger hands
        #: out a shared no-op account, so clean runs pay nothing
        self.sim = Simulator(ledger=Ledger(
            enabled=accounting,
            top_k=sampling.ledger_top_k if sampling is not None else None))
        self.sim.tracer.enabled = tracing
        self.sim.tracer.meter = self.meter
        if sampling is not None:
            self.sim.tracer.apply_policy(sampling)
            self.sim.recorder.apply_policy(sampling)
        self.slos = SloMonitor()
        self.seed = seed
        #: how hard the transport/streaming layers fight back against
        #: faults; the default policy changes nothing in clean runs
        self.recovery = recovery or RecoveryPolicy()
        #: set by the scenario layer when a fault plan is armed
        self.injector = None
        #: time-series telemetry: on by default (dormancy-aware, so it
        #: never keeps the simulation alive); None disables it
        self.sampler: Optional[TelemetrySampler] = None
        if telemetry_interval is not None:
            self.sampler = TelemetrySampler(
                self.sim, interval=telemetry_interval,
                capacity=telemetry_capacity,
                policy=sampling, meter=self.meter)
        #: streaming sidecar: attach BEFORE the sampler starts so the
        #: very first tick (and everything after) hits the stream
        self.sink: Optional[ObsSink] = None
        if stream is not None:
            self.sink = (stream if isinstance(stream, ObsSink)
                         else ObsSink(stream))
            self.sink.attach(self)
        if self.sampler is not None:
            self.sampler.start()
        #: event-loop profiler: installed only on request — the
        #: disabled path leaves Simulator._execute untouched
        self.profiler = LoopProfiler()
        if profile:
            self.profiler.install(self.sim)
        if topology == "star":
            hosts = ["production", "author1", "database", "facilitator",
                     "user1"]
            hosts += [f"user{i + 2}" for i in range(extra_users)]
            self.network, self.spec = star_campus(
                self.sim, hosts, access_bps=access_bps, fidelity=fidelity)
        elif topology == "ocrinet":
            self.network, self.spec = ocrinet_like(
                self.sim, extra_users=extra_users, access_bps=access_bps,
                fidelity=fidelity)
        else:
            raise NetworkError(f"unknown topology {topology!r}")

        #: anomaly watchdog: evaluates detectors on the telemetry tick;
        #: needs the sampler, so it is silently off without telemetry
        self.watchdog: Optional[Watchdog] = None
        if watchdog and self.sampler is not None:
            self.watchdog = Watchdog(self.sim, network=self.network)
            self.watchdog.attach(self.sampler)

        self.database = DatabaseSite(self.sim, self.network, "database",
                                     recovery=self.recovery)
        self.facilitator = FacilitatorSite(self.sim, self.network,
                                           "facilitator",
                                           recovery=self.recovery)
        self.production = ProductionSite(
            self.sim, "production",
            self.database.serve("production"), seed=seed)
        self.authors: Dict[str, AuthorSite] = {}
        self.users: Dict[str, UserSite] = {}

    # -- site management ---------------------------------------------------

    def add_author(self, host: str, application: str,
                   catalog: Optional[Dict[str, MediaObject]] = None
                   ) -> AuthorSite:
        site = AuthorSite(self.sim, host, self.database.serve(host),
                          application, catalog=catalog)
        self.authors[host] = site
        return site

    def add_user(self, host: str) -> UserSite:
        if host not in self.network.hosts:
            self._attach_host(host)
        site = UserSite(self.sim, host,
                        db_rpc=self.database.serve(host),
                        school_rpc=self.facilitator.serve(host))
        self.users[host] = site
        return site

    def _attach_host(self, host: str) -> None:
        """Grow the topology: attach a new host to an edge switch."""
        if self.spec.name == "star":
            switch = "sw0"
        else:
            edge = [s for s in self.spec.switches if s != "ottawa-u"]
            switch = edge[len(self.users) % len(edge)]
        self.network.add_host(host, switch,
                              rate_bps=self.spec.access_bps)
        self.spec.hosts.append(host)

    # -- end-to-end convenience flows ------------------------------------------

    def wait(self, pending, timeout: float = 60.0) -> Any:
        """Run the simulator until a pending RPC completes."""
        return wait_for(self.sim, pending, timeout=timeout)

    def publish_media(self, media: MediaObject) -> None:
        self.wait(self.production.publish(media))

    def produce_standard_assets(self, prefix: str = "atm",
                                seconds: float = 1.0) -> Dict[str, MediaObject]:
        """Produce and publish the standard demo asset set."""
        center = self.production.center
        assets = {
            f"{prefix}-intro-video": center.produce_video(
                f"{prefix}-intro-video", seconds=seconds),
            f"{prefix}-lecture-audio": center.produce_audio(
                f"{prefix}-lecture-audio", seconds=seconds),
            f"{prefix}-diagram": center.produce_image(f"{prefix}-diagram"),
            f"{prefix}-notes": center.produce_text(f"{prefix}-notes"),
        }
        for media in assets.values():
            self.publish_media(media)
        return assets

    def snapshot(self) -> Dict[str, Any]:
        """Deployment summary (Fig 3.1 realised), for reports.

        The ``metrics`` section is the full registry dump — per-VC
        delay histograms, link drop counters, connection retransmit
        counts, MHEG sync skew — everything the layers recorded.
        ``slo`` judges it against the default objectives, ``events``
        is the flight-recorder ring, and ``trace`` summarises the
        span tracer (per-name duration aggregates, not raw spans).
        """
        metrics_report = self.sim.metrics.report()
        tracer = self.sim.tracer
        if self.sampler is not None:
            self.sampler.sample()  # flush a final point at `now`
        alerts = self.watchdog.alerts if self.watchdog is not None else None
        return {
            "topology": self.spec.name,
            "fidelity": self.fidelity,
            "switches": list(self.spec.switches),
            "sites": {
                "production": self.production.host,
                "database": self.database.host,
                "facilitator": self.facilitator.host,
                "authors": sorted(self.authors),
                "users": sorted(self.users),
            },
            "db_statistics": self.database.db.statistics(),
            "events_run": self.sim.events_run,
            "sim_time": self.sim.now,
            "metrics": metrics_report,
            "slo": self.slos.summary(metrics_report,
                                     watchdog_alerts=alerts),
            "audit": ConservationAuditor(self).report(),
            "accounting": self.sim.ledger.snapshot(sim_time=self.sim.now),
            "watchdog": self.watchdog.snapshot()
            if self.watchdog is not None else {"enabled": False},
            "events": self.sim.recorder.snapshot(),
            "trace": {
                "enabled": tracer.enabled,
                "spans": len(tracer.spans),
                "dropped": tracer.dropped,
                "aggregate": tracer.aggregate(),
            },
            "timeseries": self.sampler.snapshot()
            if self.sampler is not None else {"enabled": False},
            "profile": self.profiler.snapshot(),
            "faults": self.injector.snapshot()
            if self.injector is not None else {"plan": None},
        }
