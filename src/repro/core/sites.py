"""The five MITS sites (Fig 3.1, Fig 3.4).

Each site bundles the processing modules Fig 3.4 assigns to it: a
using application, an MHEG engine where needed, and the communication
modules.  Sites communicate only through the transport layer over the
simulated ATM network — there is no backdoor shared state, which keeps
the client-server transparency claim honest.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.atm.network import AtmNetwork
from repro.atm.qos import ServiceCategory, TrafficContract
from repro.atm.simulator import Simulator
from repro.authoring.editor import CompiledCourseware, CoursewareEditor
from repro.database.api import CoursewareDatabase, DatabaseClient, DatabaseServer
from repro.faults.recovery import RecoveryPolicy
from repro.media.base import MediaObject
from repro.media.production import MediaProductionCenter
from repro.navigator.navigator import Navigator
from repro.school.service import SchoolClient, SchoolService
from repro.transport.connection import connect_pair
from repro.transport.rpc import RpcClient, RpcServer, SharedProcessor
from repro.util.errors import NetworkError

#: default contract for control-plane connections (requests, uploads):
#: ~3.4 Mb/s peak / ~0.85 Mb/s sustained per connection, so a 155 Mb/s
#: access link admits on the order of 150 concurrent clients
CONTROL_CONTRACT = TrafficContract(ServiceCategory.NRT_VBR, pcr=8_000,
                                   scr=2_000, mbs=400)


def _recovering_pair(sim, network, client_host, server_host, contract,
                     policy: RecoveryPolicy):
    """``connect_pair`` with the site's recovery policy threaded in."""
    return connect_pair(
        sim, network, client_host, server_host, contract,
        auto_reconnect=policy.auto_reconnect,
        max_reconnects=policy.max_reconnects,
        reconnect_delay=policy.reconnect_delay)


def _recovering_client(sim, connection, policy: RecoveryPolicy) -> RpcClient:
    """``RpcClient`` with the site's retry/backoff policy threaded in."""
    return RpcClient(
        sim, connection,
        default_timeout=policy.rpc_timeout,
        max_retries=policy.rpc_max_retries,
        backoff_base=policy.backoff_base,
        backoff_factor=policy.backoff_factor,
        backoff_jitter=policy.backoff_jitter)


class DatabaseSite:
    """The courseware database: storage plus its RPC server."""

    def __init__(self, sim: Simulator, network: AtmNetwork,
                 host: str = "database", *,
                 service_time: float = 0.002,
                 recovery: Optional[RecoveryPolicy] = None) -> None:
        self.sim = sim
        self.network = network
        self.host = host
        self.recovery = recovery or RecoveryPolicy()
        self.db = CoursewareDatabase()
        self.db.content.tracer = sim.tracer
        self.server = DatabaseServer(self.db)
        self.service_time = service_time
        #: one CPU for the whole site: concurrent requests queue here,
        #: like the single SUN/ULTRA the prototype database ran on
        self.processor = SharedProcessor(sim, service_time)
        self.endpoints: List[RpcServer] = []

    def serve(self, client_host: str,
              contract: TrafficContract = CONTROL_CONTRACT
              ) -> RpcClient:
        """Open a connection from *client_host* and serve it.

        Returns the client-side RPC endpoint for the caller to build
        its client wrappers on.
        """
        conn_client, conn_server = _recovering_pair(
            self.sim, self.network, client_host, self.host, contract,
            self.recovery)
        rpc_server = RpcServer(self.sim, conn_server,
                               processor=self.processor)
        self.server.attach(rpc_server)
        self.endpoints.append(rpc_server)
        return _recovering_client(self.sim, conn_client, self.recovery)

    def requests_served(self) -> int:
        return sum(e.requests_served for e in self.endpoints)


class ProductionSite:
    """The media production center, uploading media to the database."""

    def __init__(self, sim: Simulator, host: str, rpc: RpcClient,
                 seed: int = 1996) -> None:
        self.sim = sim
        self.host = host
        self.center = MediaProductionCenter(seed=seed)
        self.client = DatabaseClient(rpc)

    def publish(self, media: MediaObject, **cb) -> Any:
        """Upload one produced media object as a content record."""
        return self.client.rpc.call("StoreContent", {
            "content_ref": media.name,
            "media_kind": media.media_type.value,
            "coding_method": media.coding_method,
            "data": media.data,
            "attributes": {k: v for k, v in media.attributes.items()},
        }, **cb)

    def produce_and_publish(self, kind: str, name: str, **kwargs) -> Any:
        """Produce a media object and upload it; returns the call."""
        producer = {
            "video": self.center.produce_video,
            "image": self.center.produce_image,
            "audio": self.center.produce_audio,
            "midi": self.center.produce_midi,
            "text": self.center.produce_text,
        }[kind]
        cb = {k: kwargs.pop(k) for k in ("on_result", "on_error")
              if k in kwargs}
        media = producer(name, **kwargs)
        return self.publish(media, **cb)


class AuthorSite:
    """A courseware author site: editor + upload path (Fig 3.4)."""

    def __init__(self, sim: Simulator, host: str, rpc: RpcClient,
                 application: str,
                 catalog: Optional[Dict[str, MediaObject]] = None) -> None:
        self.sim = sim
        self.host = host
        self.client = DatabaseClient(rpc)
        self.editor = CoursewareEditor(application, catalog=catalog)

    def publish_courseware(self, compiled: CompiledCourseware, *,
                           courseware_id: str, title: str, program: str,
                           keywords: Optional[List[str]] = None,
                           introduction_ref: Optional[str] = None,
                           author: str = "", **cb) -> Any:
        return self.client.rpc.call("StoreCourseware", {
            "courseware_id": courseware_id,
            "title": title,
            "program": program,
            "container_blob": compiled.encode(),
            "keywords": keywords or [],
            "introduction_ref": introduction_ref,
            "author": author,
        }, **cb)

    def publish_course(self, *, course_code: str, name: str, program: str,
                       courseware_id: str, description: str = "",
                       **cb) -> Any:
        return self.client.rpc.call("AddCourse", {
            "course_code": course_code, "name": name, "program": program,
            "courseware_id": courseware_id, "description": description,
        }, **cb)

    def publish_library_doc(self, *, doc_id: str, title: str,
                            media_kind: str, content_ref: str,
                            keywords: Optional[List[str]] = None,
                            **cb) -> Any:
        return self.client.rpc.call("AddLibraryDoc", {
            "doc_id": doc_id, "title": title, "media_kind": media_kind,
            "content_ref": content_ref, "keywords": keywords or [],
        }, **cb)


class FacilitatorSite:
    """The on-line facilitator: school services + the specialist."""

    def __init__(self, sim: Simulator, network: AtmNetwork,
                 host: str = "facilitator", *,
                 recovery: Optional[RecoveryPolicy] = None) -> None:
        self.sim = sim
        self.network = network
        self.host = host
        self.recovery = recovery or RecoveryPolicy()
        self.service = SchoolService(sim=sim)
        self.endpoints: List[RpcServer] = []

    def serve(self, client_host: str,
              contract: TrafficContract = CONTROL_CONTRACT) -> RpcClient:
        conn_client, conn_server = _recovering_pair(
            self.sim, self.network, client_host, self.host, contract,
            self.recovery)
        rpc_server = RpcServer(self.sim, conn_server)
        self.service.attach(rpc_server)
        self.endpoints.append(rpc_server)
        return _recovering_client(self.sim, conn_client, self.recovery)


class UserSite:
    """A courseware user site: the navigator and its connections."""

    def __init__(self, sim: Simulator, host: str,
                 db_rpc: RpcClient,
                 school_rpc: Optional[RpcClient] = None) -> None:
        self.sim = sim
        self.host = host
        self.client = DatabaseClient(db_rpc)
        self.school = SchoolClient(school_rpc) if school_rpc else None
        self.navigator = Navigator(self.client, school=self.school, sim=sim)
