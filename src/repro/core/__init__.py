"""MITS orchestration: the five-site distributed system (Fig 3.1-3.5).

* :mod:`repro.core.sites` — one class per site: media production
  center, author site, courseware database, user site (navigator), and
  on-line facilitator;
* :mod:`repro.core.system` — :class:`MitsSystem`, which builds the ATM
  network, instantiates sites, opens their connections, and offers the
  end-to-end flows the thesis demonstrates: produce media, author and
  publish courseware, register students, and take a course on demand.
"""

from repro.core.sites import (
    AuthorSite, DatabaseSite, FacilitatorSite, ProductionSite, UserSite,
)
from repro.core.system import MitsSystem

__all__ = [
    "AuthorSite",
    "DatabaseSite",
    "FacilitatorSite",
    "ProductionSite",
    "UserSite",
    "MitsSystem",
]
