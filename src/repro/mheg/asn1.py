"""ASN.1 Basic Encoding Rules, from scratch.

MHEG part 1 specifies ASN.1 as the primary interchange notation.  This
module implements the subset of BER the codec needs, honestly:

* identifier octets with class bits, constructed bit, and high tag
  numbers (> 30) in base-128 continuation form;
* definite lengths in short and long form;
* universal types BOOLEAN, INTEGER, OCTET STRING, NULL, REAL (ISO 6093
  NR3 character form), UTF8String, SEQUENCE;
* arbitrary application/context-specific constructed types, which the
  MHEG codec uses to tag classes and attributes.

On top of the raw TLV layer, :func:`encode_value` / :func:`decode_value`
map plain Python values (None, bool, int, float, str, bytes, list,
str-keyed dict) to self-describing BER, which is what MHEG attribute
bodies use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

from repro.util.errors import DecodingError, EncodingError

# tag classes
UNIVERSAL = 0
APPLICATION = 1
CONTEXT = 2
PRIVATE = 3

# universal tag numbers used here
TAG_BOOLEAN = 1
TAG_INTEGER = 2
TAG_OCTET_STRING = 4
TAG_NULL = 5
TAG_REAL = 9
TAG_UTF8STRING = 12
TAG_SEQUENCE = 16


@dataclass(slots=True)
class Tlv:
    """One decoded BER element."""

    tag_class: int
    number: int
    constructed: bool
    content: bytes = b""                      # primitive content
    children: List["Tlv"] = field(default_factory=list)  # constructed

    def child(self, index: int) -> "Tlv":
        try:
            return self.children[index]
        except IndexError as exc:
            raise DecodingError(
                f"BER element missing child {index}") from exc


# -- identifier and length octets ------------------------------------------

def _encode_identifier(tag_class: int, number: int, constructed: bool) -> bytes:
    if not 0 <= tag_class <= 3:
        raise EncodingError(f"bad tag class {tag_class}")
    if number < 0:
        raise EncodingError(f"bad tag number {number}")
    first = (tag_class << 6) | (0x20 if constructed else 0)
    if number < 31:
        return bytes([first | number])
    # high tag number: 0x1F then base-128, MSB-first, high bit = continue
    out = [first | 0x1F]
    septets = []
    n = number
    while True:
        septets.append(n & 0x7F)
        n >>= 7
        if n == 0:
            break
    for i, sep in enumerate(reversed(septets)):
        out.append(sep | (0x80 if i < len(septets) - 1 else 0))
    return bytes(out)


def _encode_length(length: int) -> bytes:
    if length < 0x80:
        return bytes([length])
    raw = length.to_bytes((length.bit_length() + 7) // 8, "big")
    if len(raw) > 126:
        raise EncodingError("BER length too large")
    return bytes([0x80 | len(raw)]) + raw


def _decode_identifier(data: bytes, pos: int) -> Tuple[int, int, bool, int]:
    if pos >= len(data):
        raise DecodingError("truncated BER identifier")
    first = data[pos]
    pos += 1
    tag_class = first >> 6
    constructed = bool(first & 0x20)
    number = first & 0x1F
    if number == 0x1F:
        number = 0
        while True:
            if pos >= len(data):
                raise DecodingError("truncated high tag number")
            octet = data[pos]
            pos += 1
            number = (number << 7) | (octet & 0x7F)
            if not octet & 0x80:
                break
            if number > 2**28:
                raise DecodingError("tag number unreasonably large")
    return tag_class, number, constructed, pos


def _decode_length(data: bytes, pos: int) -> Tuple[int, int]:
    if pos >= len(data):
        raise DecodingError("truncated BER length")
    first = data[pos]
    pos += 1
    if first < 0x80:
        return first, pos
    nbytes = first & 0x7F
    if nbytes == 0:
        raise DecodingError("indefinite lengths are not supported")
    if pos + nbytes > len(data):
        raise DecodingError("truncated long-form length")
    return int.from_bytes(data[pos:pos + nbytes], "big"), pos + nbytes


# -- TLV layer --------------------------------------------------------------

def encode_tlv(tlv: Tlv) -> bytes:
    if tlv.constructed:
        content = b"".join(encode_tlv(c) for c in tlv.children)
    else:
        content = tlv.content
    return (_encode_identifier(tlv.tag_class, tlv.number, tlv.constructed)
            + _encode_length(len(content)) + content)


def decode_tlv(data: bytes, pos: int = 0) -> Tuple[Tlv, int]:
    # hand-inlined identifier/length fast paths: this is the hot loop of
    # every MHEG interchange (hundreds of elements per object graph)
    try:
        first = data[pos]
    except IndexError:
        raise DecodingError("truncated BER identifier") from None
    pos += 1
    tag_class = first >> 6
    constructed = bool(first & 0x20)
    number = first & 0x1F
    if number == 0x1F:
        number = 0
        while True:
            if pos >= len(data):
                raise DecodingError("truncated high tag number")
            octet = data[pos]
            pos += 1
            number = (number << 7) | (octet & 0x7F)
            if not octet & 0x80:
                break
            if number > 2**28:
                raise DecodingError("tag number unreasonably large")
    try:
        lbyte = data[pos]
    except IndexError:
        raise DecodingError("truncated BER length") from None
    pos += 1
    if lbyte < 0x80:
        length = lbyte
    else:
        nbytes = lbyte & 0x7F
        if nbytes == 0:
            raise DecodingError("indefinite lengths are not supported")
        if pos + nbytes > len(data):
            raise DecodingError("truncated long-form length")
        length = int.from_bytes(data[pos:pos + nbytes], "big")
        pos += nbytes
    end = pos + length
    if end > len(data):
        raise DecodingError(
            f"BER content truncated: need {length} bytes, have {len(data) - pos}")
    if constructed:
        children = []
        append = children.append
        while pos < end:
            child, pos = decode_tlv(data, pos)
            append(child)
        if pos != end:
            raise DecodingError("constructed content overruns its length")
        return Tlv(tag_class, number, True, b"", children), end
    return Tlv(tag_class, number, False, data[pos:end], []), end


def decode_tlv_exact(data: bytes) -> Tlv:
    """Decode one element and require it to span the whole buffer."""
    tlv, end = decode_tlv(data, 0)
    if end != len(data):
        raise DecodingError(f"{len(data) - end} trailing bytes after BER element")
    return tlv


# -- primitive constructors ---------------------------------------------------

def ber_boolean(value: bool) -> Tlv:
    return Tlv(UNIVERSAL, TAG_BOOLEAN, False,
               content=b"\xff" if value else b"\x00")


def ber_integer(value: int) -> Tlv:
    n = max(1, (value.bit_length() + 8) // 8)
    return Tlv(UNIVERSAL, TAG_INTEGER, False,
               content=value.to_bytes(n, "big", signed=True))


def ber_octets(value: bytes) -> Tlv:
    return Tlv(UNIVERSAL, TAG_OCTET_STRING, False, content=bytes(value))


def ber_null() -> Tlv:
    return Tlv(UNIVERSAL, TAG_NULL, False)


def ber_real(value: float) -> Tlv:
    # ISO 6093 NR3 character representation (BER base-10 form 3)
    text = repr(float(value)).encode("ascii")
    return Tlv(UNIVERSAL, TAG_REAL, False, content=b"\x03" + text)


def ber_utf8(value: str) -> Tlv:
    return Tlv(UNIVERSAL, TAG_UTF8STRING, False,
               content=value.encode("utf-8"))


def ber_sequence(children: List[Tlv]) -> Tlv:
    return Tlv(UNIVERSAL, TAG_SEQUENCE, True, children=list(children))


def context(number: int, children: List[Tlv]) -> Tlv:
    """Constructed context-specific element (attribute tagging)."""
    return Tlv(CONTEXT, number, True, children=list(children))


def application(number: int, children: List[Tlv]) -> Tlv:
    """Constructed application-class element (MHEG class tagging)."""
    return Tlv(APPLICATION, number, True, children=list(children))


# -- primitive readers ----------------------------------------------------------

def read_boolean(tlv: Tlv) -> bool:
    _expect(tlv, TAG_BOOLEAN)
    if len(tlv.content) != 1:
        raise DecodingError("BOOLEAN must be one octet")
    return tlv.content != b"\x00"


def read_integer(tlv: Tlv) -> int:
    _expect(tlv, TAG_INTEGER)
    if not tlv.content:
        raise DecodingError("INTEGER with empty content")
    return int.from_bytes(tlv.content, "big", signed=True)


def read_octets(tlv: Tlv) -> bytes:
    _expect(tlv, TAG_OCTET_STRING)
    return tlv.content


def read_real(tlv: Tlv) -> float:
    _expect(tlv, TAG_REAL)
    if not tlv.content:
        return 0.0
    if tlv.content[0] != 0x03:
        raise DecodingError("only NR3 character-form REAL is supported")
    try:
        return float(tlv.content[1:].decode("ascii"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise DecodingError(f"malformed REAL: {exc}") from exc


def read_utf8(tlv: Tlv) -> str:
    _expect(tlv, TAG_UTF8STRING)
    try:
        return tlv.content.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DecodingError(f"invalid utf-8 in UTF8String: {exc}") from exc


def _expect(tlv: Tlv, number: int) -> None:
    if tlv.tag_class != UNIVERSAL or tlv.number != number:
        raise DecodingError(
            f"expected universal tag {number}, got class {tlv.tag_class} "
            f"tag {tlv.number}")


# -- generic python-value mapping --------------------------------------------
# dicts encode as SEQUENCE of SEQUENCE { UTF8String key, value } so key
# order round-trips; a context[0] marker distinguishes dict from list.

_MAX_DEPTH = 32


def value_to_tlv(value: Any, depth: int = 0) -> Tlv:
    if depth > _MAX_DEPTH:
        raise EncodingError("value nests too deeply for BER encoding")
    if value is None:
        return ber_null()
    if value is True or value is False:
        return ber_boolean(value)
    if isinstance(value, int):
        return ber_integer(value)
    if isinstance(value, float):
        return ber_real(value)
    if isinstance(value, str):
        return ber_utf8(value)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return ber_octets(bytes(value))
    if isinstance(value, (list, tuple)):
        return ber_sequence([value_to_tlv(v, depth + 1) for v in value])
    if isinstance(value, dict):
        # alternating key/value children (no per-entry wrapper): dict
        # entries dominate MHEG object graphs, so the flat layout
        # roughly halves the element count on the wire
        entries = []
        for k, v in value.items():
            if not isinstance(k, str):
                raise EncodingError("dict keys must be str for BER encoding")
            entries.append(ber_utf8(k))
            entries.append(value_to_tlv(v, depth + 1))
        return context(0, entries)
    raise EncodingError(f"cannot BER-encode {type(value).__name__}")


def tlv_to_value(tlv: Tlv, depth: int = 0) -> Any:
    # hot path of every interchange: primitive cases are inlined
    if depth > _MAX_DEPTH:
        raise DecodingError("BER value nests too deeply")
    tag_class = tlv.tag_class
    number = tlv.number
    if tag_class == UNIVERSAL:
        if number == TAG_UTF8STRING:
            try:
                return tlv.content.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise DecodingError(
                    f"invalid utf-8 in UTF8String: {exc}") from exc
        if number == TAG_INTEGER:
            if not tlv.content:
                raise DecodingError("INTEGER with empty content")
            return int.from_bytes(tlv.content, "big", signed=True)
        if number == TAG_OCTET_STRING:
            return tlv.content
        if number == TAG_NULL:
            return None
        if number == TAG_BOOLEAN:
            if len(tlv.content) != 1:
                raise DecodingError("BOOLEAN must be one octet")
            return tlv.content != b"\x00"
        if number == TAG_REAL:
            return read_real(tlv)
        if number == TAG_SEQUENCE:
            return [tlv_to_value(c, depth + 1) for c in tlv.children]
        raise DecodingError(f"unsupported universal tag {number}")
    if tag_class == CONTEXT and number == 0:
        children = tlv.children
        if len(children) % 2:
            raise DecodingError("malformed dict: odd child count")
        result = {}
        next_depth = depth + 1
        for i in range(0, len(children), 2):
            key_tlv = children[i]
            if key_tlv.tag_class != UNIVERSAL or \
                    key_tlv.number != TAG_UTF8STRING:
                raise DecodingError("dict key is not a UTF8String")
            try:
                key = key_tlv.content.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise DecodingError(f"invalid utf-8 in key: {exc}") from exc
            result[key] = tlv_to_value(children[i + 1], next_depth)
        return result
    raise DecodingError(
        f"unexpected tag class {tag_class} in value position")


def encode_value(value: Any) -> bytes:
    """Encode a Python value as self-describing BER bytes."""
    return encode_tlv(value_to_tlv(value))


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`."""
    value, end = parse_value(data, 0, 0)
    if end != len(data):
        raise DecodingError(f"{len(data) - end} trailing bytes after value")
    return value


def parse_value(data: bytes, pos: int, depth: int = 0) -> Tuple[Any, int]:
    """One-pass BER -> Python value parser (no intermediate TLV tree).

    Semantically identical to ``tlv_to_value(decode_tlv(...))`` for the
    value subset, but ~2x faster — this is the path every MHEG object
    decode takes, so it is deliberately hand-tuned.
    """
    if depth > _MAX_DEPTH:
        raise DecodingError("BER value nests too deeply")
    try:
        first = data[pos]
    except IndexError:
        raise DecodingError("truncated BER identifier") from None
    pos += 1
    tag_class = first >> 6
    number = first & 0x1F
    if number == 0x1F:
        number = 0
        while True:
            if pos >= len(data):
                raise DecodingError("truncated high tag number")
            octet = data[pos]
            pos += 1
            number = (number << 7) | (octet & 0x7F)
            if not octet & 0x80:
                break
    try:
        lbyte = data[pos]
    except IndexError:
        raise DecodingError("truncated BER length") from None
    pos += 1
    if lbyte < 0x80:
        length = lbyte
    else:
        nbytes = lbyte & 0x7F
        if nbytes == 0:
            raise DecodingError("indefinite lengths are not supported")
        if pos + nbytes > len(data):
            raise DecodingError("truncated long-form length")
        length = int.from_bytes(data[pos:pos + nbytes], "big")
        pos += nbytes
    end = pos + length
    if end > len(data):
        raise DecodingError("BER content truncated")

    if tag_class == UNIVERSAL:
        if number == TAG_UTF8STRING:
            try:
                return data[pos:end].decode("utf-8"), end
            except UnicodeDecodeError as exc:
                raise DecodingError(
                    f"invalid utf-8 in UTF8String: {exc}") from exc
        if number == TAG_INTEGER:
            if pos == end:
                raise DecodingError("INTEGER with empty content")
            return int.from_bytes(data[pos:end], "big", signed=True), end
        if number == TAG_OCTET_STRING:
            return data[pos:end], end
        if number == TAG_NULL:
            return None, end
        if number == TAG_BOOLEAN:
            if end - pos != 1:
                raise DecodingError("BOOLEAN must be one octet")
            return data[pos] != 0, end
        if number == TAG_REAL:
            if pos == end:
                return 0.0, end
            if data[pos] != 0x03:
                raise DecodingError(
                    "only NR3 character-form REAL is supported")
            try:
                return float(data[pos + 1:end].decode("ascii")), end
            except (UnicodeDecodeError, ValueError) as exc:
                raise DecodingError(f"malformed REAL: {exc}") from exc
        if number == TAG_SEQUENCE:
            items = []
            append = items.append
            while pos < end:
                item, pos = parse_value(data, pos, depth + 1)
                append(item)
            if pos != end:
                raise DecodingError("SEQUENCE overruns its length")
            return items, end
        raise DecodingError(f"unsupported universal tag {number}")
    if tag_class == CONTEXT and number == 0:
        result = {}
        while pos < end:
            key, pos = parse_value(data, pos, depth + 1)
            if not isinstance(key, str):
                raise DecodingError("dict key is not a UTF8String")
            if pos >= end:
                raise DecodingError("malformed dict: odd child count")
            value, pos = parse_value(data, pos, depth + 1)
            result[key] = value
        if pos != end:
            raise DecodingError("dict overruns its length")
        return result, end
    raise DecodingError(
        f"unexpected tag class {tag_class} in value position")
