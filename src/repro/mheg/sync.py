"""Spatial-temporal synchronisation mechanisms (§2.2.2.3, Fig 2.6).

Four mechanisms for relating component presentations inside a
composite, serialised into the composite's ``sync_spec`` field:

* **atomic** — two components, serial ("when A stops, run B") or
  parallel ("run A and B together");
* **elementary** — two components with explicit time values T1 and T2
  (offsets from composite start);
* **cyclic** — repetitive presentation of one component with a period
  (events synchronised to clock ticks);
* **chained** — a list of components presented back to back.

*Conditional* synchronisation ("when the audio has finished, display
the image") is expressed with link objects directly; helpers here
build the common forms.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.mheg.classes.behavior import (
    ActionClass, ActionVerb, ConditionKind, ElementaryAction, LinkClass,
    LinkCondition,
)
from repro.mheg.identifiers import MhegIdentifier, ObjectReference
from repro.util.errors import AuthoringError


def atomic_serial(first: ObjectReference, second: ObjectReference) -> Dict[str, Any]:
    """A then B (Fig 2.6a serial)."""
    return {"kind": "atomic", "mode": "serial",
            "first": str(first), "second": str(second)}


def atomic_parallel(first: ObjectReference, second: ObjectReference) -> Dict[str, Any]:
    """A with B (Fig 2.6a parallel)."""
    return {"kind": "atomic", "mode": "parallel",
            "first": str(first), "second": str(second)}


def elementary(first: ObjectReference, t1: float,
               second: ObjectReference, t2: float) -> Dict[str, Any]:
    """Two components with associated time values T1 and T2 (Fig 2.6b)."""
    if t1 < 0 or t2 < 0:
        raise AuthoringError("elementary sync offsets must be >= 0")
    return {"kind": "elementary",
            "entries": [{"target": str(first), "time": t1},
                        {"target": str(second), "time": t2}]}


def timeline(entries: Sequence[tuple]) -> Dict[str, Any]:
    """Generalised elementary sync: [(ref, start_time), ...]."""
    out = []
    for target, t in entries:
        if t < 0:
            raise AuthoringError("timeline offsets must be >= 0")
        out.append({"target": str(target), "time": float(t)})
    return {"kind": "elementary", "entries": out}


def cyclic(target: ObjectReference, period: float,
           repetitions: Optional[int] = None) -> Dict[str, Any]:
    """Repetitive presentation synchronised to a periodic tick."""
    if period <= 0:
        raise AuthoringError("cyclic sync needs a positive period")
    if repetitions is not None and repetitions < 1:
        raise AuthoringError("cyclic repetitions must be >= 1 (or None)")
    return {"kind": "cyclic", "target": str(target), "period": period,
            "repetitions": repetitions}


def chained(targets: Sequence[ObjectReference]) -> Dict[str, Any]:
    """Back-to-back serial presentation of a list of components."""
    if len(targets) < 1:
        raise AuthoringError("chained sync needs at least one component")
    return {"kind": "chained", "targets": [str(t) for t in targets]}


def validate_spec(spec: Dict[str, Any]) -> None:
    """Structural validation used by the engine before interpreting."""
    kind = spec.get("kind")
    if kind == "atomic":
        if spec.get("mode") not in ("serial", "parallel"):
            raise AuthoringError(f"atomic sync has bad mode {spec.get('mode')!r}")
        ObjectReference.parse(spec["first"])
        ObjectReference.parse(spec["second"])
    elif kind == "elementary":
        entries = spec.get("entries", [])
        if not entries:
            raise AuthoringError("elementary sync with no entries")
        for e in entries:
            ObjectReference.parse(e["target"])
            if e["time"] < 0:
                raise AuthoringError("elementary sync time < 0")
    elif kind == "cyclic":
        ObjectReference.parse(spec["target"])
        if spec["period"] <= 0:
            raise AuthoringError("cyclic period <= 0")
    elif kind == "chained":
        targets = spec.get("targets", [])
        if not targets:
            raise AuthoringError("chained sync with no targets")
        for t in targets:
            ObjectReference.parse(t)
    else:
        raise AuthoringError(f"unknown sync kind {kind!r}")


# -- conditional-synchronisation link builders --------------------------------

def when_stops_run(application: str, number: int,
                   watched: ObjectReference,
                   started: ObjectReference) -> LinkClass:
    """'When the audio has finished, display the image' (§2.2.2.3)."""
    return LinkClass(
        identifier=MhegIdentifier(application, number),
        trigger_conditions=[LinkCondition(
            kind=ConditionKind.TRIGGER, source=watched,
            attribute="presentation", comparison="==", value="not-running")],
        effect=ActionClass(
            identifier=MhegIdentifier(application, number * 100_000 + 1),
            actions=[ElementaryAction(verb=ActionVerb.RUN, target=started)]),
    )


def when_selected_do(application: str, number: int,
                     button: ObjectReference,
                     actions: List[ElementaryAction],
                     once: bool = False) -> LinkClass:
    """Hyperlink form: a selection event applies an action set."""
    return LinkClass(
        identifier=MhegIdentifier(application, number),
        trigger_conditions=[LinkCondition(
            kind=ConditionKind.TRIGGER, source=button,
            attribute="selected", comparison="==", value=True)],
        effect=ActionClass(
            identifier=MhegIdentifier(application, number * 100_000 + 1),
            actions=actions),
        once=once,
    )
