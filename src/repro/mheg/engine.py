"""The MHEG engine (Fig 2.4, Fig 2.9, §3.4).

One engine runs at each MITS site.  It decodes interchanged objects
into form (b), creates and drives form (c) run-time objects, and
interprets links and actions — the conditional and spatial-temporal
synchronisation that makes a courseware presentation interactive.

The engine can run in two modes:

* **attached** to a :class:`~repro.atm.simulator.Simulator` — delays
  and durations schedule on simulated time, which is how the full MITS
  deployment runs it;
* **standalone** — it keeps an internal event heap and the caller
  advances time with :meth:`advance`, which is how unit tests and the
  courseware editor's preview use it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.mheg.classes.base import MhObject
from repro.mheg.classes.behavior import (
    ActionClass, ActionVerb, ElementaryAction, LinkClass,
)
from repro.mheg.classes.composite import CompositeClass
from repro.mheg.classes.content import ContentClass, GenericValueClass
from repro.mheg.classes.interchange import ContainerClass, DescriptorClass
from repro.mheg.classes.script import ScriptClass, ScriptStatement
from repro.mheg.codec import MhegCodec
from repro.mheg.identifiers import ObjectReference
from repro.mheg.runtime import (
    Channel, RtKind, RtObject, RtState, rt_kind_for,
)
from repro.mheg.sync import validate_spec
from repro.obs.events import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.util.errors import PresentationError


@dataclass
class EngineEvent:
    """A recorded status change (what link triggers match against)."""

    time: float
    source: str          # reference string (model or run-time)
    attribute: str
    old: Any
    new: Any


@dataclass
class _Watcher:
    """Internal trigger: fires a callback on matching status changes."""

    source: str
    attribute: str
    predicate: Callable[[Any], bool]
    callback: Callable[[], None]
    once: bool = True
    armed: bool = True


class MhegEngine:
    """Decode, hold, instantiate, and drive MHEG objects."""

    def __init__(self, sim=None, *, capabilities: Optional[Dict[str, Any]] = None,
                 name: str = "engine") -> None:
        self.sim = sim
        self.name = name
        self.codec = MhegCodec()
        #: site capabilities used for descriptor negotiation
        self.capabilities = capabilities or {
            "decoders": ["SIMG", "SMPG", "SPCM", "SMID", "STXT"],
            "bandwidth_bps": 155.52e6,
            "storage_bytes": 1 << 30,
        }
        #: form (b) object store: identifier string -> object
        self._store: Dict[str, MhObject] = {}
        self._prepared: set[str] = set()
        #: fetched content for by-reference objects: content_ref -> bytes
        self.content_cache: Dict[str, bytes] = {}
        #: hook the navigator installs to fetch referenced content;
        #: signature: resolver(content_ref) -> bytes
        self.content_resolver: Optional[Callable[[str], bytes]] = None
        #: form (c) instances: rt reference string -> RtObject
        self._rt: Dict[str, RtObject] = {}
        self._rt_tags: Dict[str, itertools.count] = {}
        self._composite_children: Dict[str, Dict[str, str]] = {}
        self.channels: Dict[str, Channel] = {"main": Channel("main")}
        #: armed MHEG links: link id string -> its watchers
        self._link_watchers: Dict[str, List[_Watcher]] = {}
        self._watchers: List[_Watcher] = []
        self._auto_stops: Dict[str, Any] = {}
        self._scripts: Dict[str, "_ScriptRun"] = {}
        self.events: List[EngineEvent] = []
        self._listeners: List[Callable[[EngineEvent], None]] = []
        # standalone clock
        self._local_time = 0.0
        self._local_queue: List[Tuple[float, int, Callable, tuple]] = []
        self._local_seq = itertools.count()
        self.stats = {"decoded": 0, "encoded": 0, "links_fired": 0,
                      "actions_applied": 0, "rt_created": 0}
        #: attached engines record into the deployment-wide registry,
        #: tracer, and flight recorder; standalone engines own private
        #: ones (tracing stays disabled there unless a test enables it)
        self.metrics = sim.metrics if sim is not None else MetricsRegistry()
        self.tracer = sim.tracer if sim is not None \
            else Tracer(clock=lambda: self._local_time)
        self.recorder = sim.recorder if sim is not None \
            else FlightRecorder(clock=lambda: self._local_time)
        self._m_links_fired = self.metrics.counter("mheg", "links_fired",
                                                   engine=name)
        self._m_actions = self.metrics.counter("mheg", "actions_applied",
                                               engine=name)
        self._m_rt_created = self.metrics.counter("mheg", "rt_created",
                                                  engine=name)
        #: skew between when a sync-spec entry was due and when the
        #: engine actually ran it (elementary/cyclic synchronisation)
        self._m_sync_skew = self.metrics.histogram("mheg", "sync_skew_seconds",
                                                   engine=name)

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now if self.sim is not None else self._local_time

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Any:
        if self.sim is not None:
            return self.sim.schedule(delay, fn, *args)
        entry = [self._local_time + delay, next(self._local_seq), fn, args, False]
        heapq.heappush(self._local_queue, entry)
        return entry

    def cancel(self, handle: Any) -> None:
        if handle is None:
            return
        if self.sim is not None:
            handle.cancel()
        else:
            handle[4] = True

    def advance(self, until: float) -> None:
        """Standalone mode: run internal timers up to absolute *until*."""
        if self.sim is not None:
            raise PresentationError(
                "advance() is for standalone engines; run the simulator")
        while self._local_queue and self._local_queue[0][0] <= until:
            t, _seq, fn, args, cancelled = heapq.heappop(self._local_queue)
            if cancelled:
                continue
            self._local_time = t
            fn(*args)
        self._local_time = max(self._local_time, until)

    # -- object store (form a -> form b) --------------------------------------

    def receive(self, data: bytes) -> MhObject:
        """Decode one interchanged object and store it.

        Containers are unpacked: every carried object is stored
        individually (and the container itself kept for provenance).
        """
        with self.tracer.span("mheg.receive", engine=self.name,
                              bytes=len(data)) as span:
            obj = self.codec.decode(data)
            self.stats["decoded"] += 1
            self.store(obj)
            span.set(object=str(obj.identifier))
        return obj

    def store(self, obj: MhObject) -> None:
        """Insert a form (b) object directly (local authoring path)."""
        self._store[str(obj.identifier)] = obj
        if isinstance(obj, ContainerClass):
            for inner in obj.objects:
                self.store(inner)

    def encode(self, reference: ObjectReference) -> bytes:
        """Re-encode a stored object for onward interchange."""
        data = self.codec.encode(self.get(reference))
        self.stats["encoded"] += 1
        return data

    def get(self, reference: ObjectReference) -> MhObject:
        key = str(reference.identifier)
        try:
            return self._store[key]
        except KeyError as exc:
            raise PresentationError(
                f"{self.name}: unknown object {key}") from exc

    def knows(self, reference: ObjectReference) -> bool:
        return str(reference.identifier) in self._store

    def stored_ids(self) -> List[str]:
        return sorted(self._store)

    def negotiate(self, descriptor: DescriptorClass) -> Tuple[bool, List[str]]:
        """Descriptor-based resource negotiation (§3.1.2.2)."""
        return descriptor.check_capabilities(self.capabilities)

    # -- preparation -----------------------------------------------------------

    def prepare(self, reference: ObjectReference) -> None:
        """Make an object available: resolve referenced content."""
        obj = self.get(reference)
        key = str(obj.identifier)
        if key in self._prepared:
            return
        with self.tracer.span("mheg.prepare", engine=self.name, object=key):
            if isinstance(obj, ContentClass) and obj.content_ref is not None:
                if obj.content_ref not in self.content_cache:
                    if self.content_resolver is None:
                        raise PresentationError(
                            f"{self.name}: {obj} references content "
                            f"{obj.content_ref!r} but no resolver is installed")
                    self.content_cache[obj.content_ref] = \
                        self.content_resolver(obj.content_ref)
            self._prepared.add(key)
        self._emit(key, "prepared", False, True)

    def is_prepared(self, reference: ObjectReference) -> bool:
        return str(reference.identifier) in self._prepared

    def content_bytes(self, reference: ObjectReference) -> bytes:
        """The content data of a prepared content object."""
        obj = self.get(reference)
        if not isinstance(obj, ContentClass):
            raise PresentationError(f"{obj} is not a content object")
        if obj.data is not None:
            return obj.data
        if obj.content_ref in self.content_cache:
            return self.content_cache[obj.content_ref]
        raise PresentationError(
            f"{obj} content not available; prepare() it first")

    def destroy(self, reference: ObjectReference) -> None:
        """Remove an object from availability (the 'destroy' action)."""
        key = str(reference.identifier)
        self._prepared.discard(key)
        self._store.pop(key, None)
        self._emit(key, "prepared", True, False)

    # -- run-time instantiation (form b -> form c) ------------------------------

    def add_channel(self, name: str, width: int = 640, height: int = 480) -> Channel:
        ch = Channel(name, width, height)
        self.channels[name] = ch
        return ch

    def new_runtime(self, reference: ObjectReference, *,
                    channel: str = "main",
                    rt_tag: Optional[int] = None) -> RtObject:
        """The 'new' action: create a run-time copy of a model object."""
        model = self.get(reference)
        kind = rt_kind_for(model)
        if channel not in self.channels:
            raise PresentationError(f"{self.name}: unknown channel {channel!r}")
        key = str(model.identifier)
        if rt_tag is None:
            counter = self._rt_tags.setdefault(key, itertools.count(1))
            rt_tag = next(counter)
            while f"{key}#{rt_tag}" in self._rt:
                rt_tag = next(counter)
        rt_ref = ObjectReference(model.identifier, rt_tag)
        if str(rt_ref) in self._rt:
            raise PresentationError(f"{self.name}: {rt_ref} already exists")
        rt = RtObject(reference=rt_ref, model=model, kind=kind, channel=channel)
        if isinstance(model, ContentClass):
            pres = model.presentation
            rt.position = list(pres.get("position", (0, 0)))
            rt.size = list(pres.get("size")) if pres.get("size") else None
            rt.volume = model.original_volume
            rt.selectable = bool(pres.get("selectable", False))
        if isinstance(model, GenericValueClass):
            rt.value = model.value
        if kind is RtKind.MULTIPLEXED:
            rt.stream_enabled = {s.stream_id: True
                                 for s in model.streams}
        self._rt[str(rt_ref)] = rt
        self.stats["rt_created"] += 1
        self._m_rt_created.inc()
        if isinstance(model, CompositeClass):
            children: Dict[str, str] = {}
            for comp_ref in model.components:
                comp = self.get(comp_ref)
                try:
                    rt_kind_for(comp)
                except PresentationError:
                    continue  # links/actions have no run-time form
                child = self.new_runtime(comp_ref, channel=channel)
                children[str(comp_ref)] = child.ref_str
                # spatial synchronisation: the composite's layout
                # overrides the child's own presentation geometry
                placement = model.layout.get(str(comp_ref))
                if placement:
                    if placement.get("position") is not None:
                        child.position = list(placement["position"])
                    if placement.get("size") is not None:
                        child.size = list(placement["size"])
                    if placement.get("channel") in self.channels:
                        child.channel = placement["channel"]
            self._composite_children[str(rt_ref)] = children
            for socket in model.sockets:
                rt.plugged[socket.name] = (
                    children.get(str(socket.plugged))
                    if socket.plugged is not None else None)
        self._emit(str(rt_ref), "state", None, RtState.INACTIVE.value)
        return rt

    def runtime(self, reference: ObjectReference) -> RtObject:
        try:
            return self._rt[str(reference)]
        except KeyError as exc:
            raise PresentationError(
                f"{self.name}: unknown run-time object {reference}") from exc

    def runtimes(self) -> List[RtObject]:
        return [rt for rt in self._rt.values()
                if rt.state is not RtState.DELETED]

    def resolve_rt_targets(self, reference: ObjectReference) -> List[RtObject]:
        """Run-time instances an action target denotes.

        An rt-tagged reference denotes exactly that instance; a model
        reference denotes every live instance of the model (authors
        typically write links against model objects, since rt tags are
        assigned at presentation time).
        """
        if reference.is_runtime:
            return [self.runtime(reference)]
        prefix = str(reference.identifier)
        matches = [rt for rt in self._rt.values()
                   if str(rt.reference.identifier) == prefix
                   and rt.state is not RtState.DELETED]
        if not matches:
            raise PresentationError(
                f"{self.name}: no run-time instance of {prefix}")
        return matches

    def children_of(self, rt_composite: RtObject) -> Dict[str, str]:
        """model component ref string -> child rt ref string."""
        return dict(self._composite_children.get(rt_composite.ref_str, {}))

    # -- status queries -------------------------------------------------------

    def get_status(self, reference: ObjectReference, attribute: str) -> Any:
        ref_str = str(reference)
        rt: Optional[RtObject] = None
        if reference.is_runtime:
            rt = self._rt.get(ref_str)
        else:
            # a model reference denotes its live instances: prefer a
            # running one, else any live instance
            prefix = str(reference.identifier)
            candidates = [r for r in self._rt.values()
                          if str(r.reference.identifier) == prefix
                          and r.state is not RtState.DELETED]
            running = [r for r in candidates if r.state is RtState.RUNNING]
            rt = (running or candidates or [None])[0]
        if rt is not None:
            return {
                "state": rt.state.value,
                "presentation": rt.presentation_status,
                "selected": False,   # selection is momentary
                "selectable": rt.selectable,
                "value": rt.value,
                "position": rt.position,
                "size": rt.size,
                "volume": rt.volume,
                "speed": rt.speed,
                "channel": rt.channel,
            }.get(attribute)
        if attribute == "prepared":
            return ref_str in self._prepared
        return None

    # -- events and links -------------------------------------------------------

    def subscribe(self, listener: Callable[[EngineEvent], None]) -> None:
        self._listeners.append(listener)

    def _emit(self, source: str, attribute: str, old: Any, new: Any) -> None:
        event = EngineEvent(time=self.now, source=source,
                            attribute=attribute, old=old, new=new)
        self.events.append(event)
        for listener in list(self._listeners):
            listener(event)
        self._dispatch(event)

    def _dispatch(self, event: EngineEvent) -> None:
        # model-level conditions (no #tag) also match their rt instances
        base = event.source.split("#", 1)[0]
        for watcher in list(self._watchers):
            if not watcher.armed:
                continue
            if watcher.source not in (event.source, base):
                continue
            if watcher.attribute != event.attribute:
                continue
            if not watcher.predicate(event.new):
                continue
            if watcher.once:
                watcher.armed = False
            watcher.callback()
        self._watchers = [w for w in self._watchers if w.armed]

    def watch(self, source: str, attribute: str,
              predicate: Callable[[Any], bool],
              callback: Callable[[], None], once: bool = True) -> _Watcher:
        """Engine-internal trigger registration."""
        watcher = _Watcher(source=source, attribute=attribute,
                           predicate=predicate, callback=callback, once=once)
        self._watchers.append(watcher)
        return watcher

    def arm_link(self, reference: ObjectReference) -> None:
        """Activate an interchanged link so its triggers are live."""
        link = self.get(reference)
        if not isinstance(link, LinkClass):
            raise PresentationError(f"{link} is not a link object")
        key = str(link.identifier)
        if key in self._link_watchers:
            return
        watchers = []
        for cond in link.trigger_conditions:
            watchers.append(self.watch(
                source=str(cond.source), attribute=cond.attribute,
                predicate=cond.evaluate,
                callback=lambda link=link: self._fire_link(link),
                once=False))
        self._link_watchers[key] = watchers

    def disarm_link(self, reference: ObjectReference) -> None:
        for watcher in self._link_watchers.pop(str(reference.identifier), []):
            watcher.armed = False
        self._watchers = [w for w in self._watchers if w.armed]

    def _fire_link(self, link: LinkClass) -> None:
        for cond in link.additional_conditions:
            observed = self.get_status(cond.source, cond.attribute)
            if not cond.evaluate(observed):
                return
        self.stats["links_fired"] += 1
        self._m_links_fired.inc()
        ambient = self.tracer.current
        self.recorder.record(
            "mheg", "link_fired", engine=self.name,
            trace_id=ambient.trace_id if ambient is not None else None,
            link=str(link.identifier))
        if link.once:
            self.disarm_link(ObjectReference(link.identifier))
        effect = link.effect
        if effect is None:
            obj = self.get(link.effect_ref)
            if not isinstance(obj, ActionClass):
                raise PresentationError(
                    f"{link} effect_ref {link.effect_ref} is not an action")
            effect = obj
        self.execute_action(effect)

    def execute_action(self, action: ActionClass) -> None:
        """Run an action object's synchronisation set."""
        for delay, ea in action.schedule():
            if delay <= 0:
                self.apply(ea)
            else:
                self.schedule(delay, self.apply, ea)

    # -- elementary action interpreter -----------------------------------------

    def apply(self, action: ElementaryAction) -> None:
        """Interpret one elementary action (Fig 4.5c verbs)."""
        self.stats["actions_applied"] += 1
        self._m_actions.inc()
        verb, target, params = action.verb, action.target, action.parameters
        if verb is ActionVerb.PREPARE:
            self.prepare(target)
        elif verb is ActionVerb.DESTROY:
            self.destroy(target)
        elif verb is ActionVerb.NEW:
            self.new_runtime(target, channel=params.get("channel", "main"),
                             rt_tag=params.get("rt_tag"))
        elif verb is ActionVerb.DELETE:
            for rt in self.resolve_rt_targets(target):
                self._delete(rt)
        elif verb is ActionVerb.RUN:
            for rt in self.resolve_rt_targets(target):
                self.run(rt)
        elif verb is ActionVerb.STOP:
            for rt in self.resolve_rt_targets(target):
                self.stop(rt)
        elif verb is ActionVerb.PAUSE:
            for rt in self.resolve_rt_targets(target):
                self.pause(rt)
        elif verb is ActionVerb.RESUME:
            for rt in self.resolve_rt_targets(target):
                self.resume(rt)
        elif verb is ActionVerb.SET_POSITION:
            for rt in self.resolve_rt_targets(target):
                old = rt.position
                rt.position = list(params["value"])
                self._emit(rt.ref_str, "position", old, rt.position)
        elif verb is ActionVerb.SET_SIZE:
            for rt in self.resolve_rt_targets(target):
                old = rt.size
                rt.size = list(params["value"])
                self._emit(rt.ref_str, "size", old, rt.size)
        elif verb is ActionVerb.SET_SPEED:
            for rt in self.resolve_rt_targets(target):
                old = rt.speed
                rt.speed = float(params["value"])
                if rt.speed <= 0:
                    raise PresentationError(f"{rt.ref_str}: speed must be > 0")
                self._emit(rt.ref_str, "speed", old, rt.speed)
        elif verb is ActionVerb.SET_VOLUME:
            for rt in self.resolve_rt_targets(target):
                stream_id = params.get("stream_id")
                if stream_id is not None:
                    # stream control on multiplexed content: volume 0
                    # disables the stream, anything else enables it
                    if stream_id not in rt.stream_enabled:
                        raise PresentationError(
                            f"{rt.ref_str}: no stream {stream_id}")
                    old = rt.stream_enabled[stream_id]
                    rt.stream_enabled[stream_id] = \
                        int(params["value"]) > 0
                    self._emit(rt.ref_str, f"stream:{stream_id}",
                               old, rt.stream_enabled[stream_id])
                    continue
                old = rt.volume
                rt.volume = int(params["value"])
                self._emit(rt.ref_str, "volume", old, rt.volume)
        elif verb is ActionVerb.SET_SELECTABLE:
            for rt in self.resolve_rt_targets(target):
                old = rt.selectable
                rt.selectable = bool(params.get("value", True))
                self._emit(rt.ref_str, "selectable", old, rt.selectable)
        elif verb is ActionVerb.SELECT:
            for rt in self.resolve_rt_targets(target):
                self.select(rt)
        elif verb is ActionVerb.ACTIVATE:
            for rt in self.resolve_rt_targets(target):
                self.activate_script(rt)
        elif verb is ActionVerb.DEACTIVATE:
            for rt in self.resolve_rt_targets(target):
                self.deactivate_script(rt)
        elif verb is ActionVerb.SET_VALUE:
            for rt in self.resolve_rt_targets(target):
                old = rt.value
                rt.value = params.get("value")
                self._emit(rt.ref_str, "value", old, rt.value)
        elif verb in (ActionVerb.GET_VALUE, ActionVerb.GET_STATUS):
            # value flows through the event so links can match on it
            attr = "value" if verb is ActionVerb.GET_VALUE \
                else params.get("attribute", "state")
            observed = self.get_status(target, attr)
            self._emit(str(target), f"queried:{attr}", None, observed)
        else:  # pragma: no cover - exhaustive over ActionVerb
            raise PresentationError(f"unhandled verb {verb}")

    # -- presentation ------------------------------------------------------------

    def run(self, rt: RtObject) -> None:
        if rt.state is RtState.RUNNING:
            return
        old = rt.transition(RtState.RUNNING)
        rt.started_at = self.now
        self.channels[rt.channel].enter(rt.ref_str)
        self._emit(rt.ref_str, "state", old.value, rt.state.value)
        self._emit(rt.ref_str, "presentation", "not-running", "running")
        if rt.kind in (RtKind.CONTENT, RtKind.MULTIPLEXED):
            duration = getattr(rt.model, "original_duration", None)
            if duration:
                self._schedule_auto_stop(rt, duration / rt.speed)
        elif rt.kind is RtKind.COMPOSITE:
            self._run_composite(rt)
        elif rt.kind is RtKind.SCRIPT:
            self.activate_script(rt)

    def _schedule_auto_stop(self, rt: RtObject, remaining: float) -> None:
        handle = self.schedule(remaining, self._auto_stop, rt.ref_str)
        self._auto_stops[rt.ref_str] = (handle, self.now, remaining)

    def _auto_stop(self, rt_ref: str) -> None:
        self._auto_stops.pop(rt_ref, None)
        rt = self._rt.get(rt_ref)
        if rt is not None and rt.state is RtState.RUNNING:
            self.stop(rt)

    def stop(self, rt: RtObject) -> None:
        if rt.state in (RtState.STOPPED, RtState.DELETED, RtState.INACTIVE):
            return
        self._cancel_auto_stop(rt)
        old = rt.transition(RtState.STOPPED)
        rt.stopped_at = self.now
        self.channels[rt.channel].leave(rt.ref_str)
        if rt.kind is RtKind.COMPOSITE:
            self._teardown_composite(rt)
        if rt.kind is RtKind.SCRIPT:
            self.deactivate_script(rt)
        self._emit(rt.ref_str, "state", old.value, rt.state.value)
        self._emit(rt.ref_str, "presentation", "running", "not-running")

    def pause(self, rt: RtObject) -> None:
        if rt.state is not RtState.RUNNING:
            return
        entry = self._auto_stops.pop(rt.ref_str, None)
        if entry is not None:
            handle, started, remaining = entry
            self.cancel(handle)
            left = max(0.0, remaining - (self.now - started))
            self._auto_stops[rt.ref_str] = (None, self.now, left)
        old = rt.transition(RtState.PAUSED)
        self._emit(rt.ref_str, "state", old.value, rt.state.value)
        self._emit(rt.ref_str, "presentation", "running", "not-running")

    def resume(self, rt: RtObject) -> None:
        if rt.state is not RtState.PAUSED:
            return
        old = rt.transition(RtState.RUNNING)
        entry = self._auto_stops.pop(rt.ref_str, None)
        if entry is not None:
            _, _, left = entry
            self._schedule_auto_stop(rt, left)
        self._emit(rt.ref_str, "state", old.value, rt.state.value)
        self._emit(rt.ref_str, "presentation", "not-running", "running")

    def _cancel_auto_stop(self, rt: RtObject) -> None:
        entry = self._auto_stops.pop(rt.ref_str, None)
        if entry is not None and entry[0] is not None:
            self.cancel(entry[0])

    def _delete(self, rt: RtObject) -> None:
        if rt.state is RtState.RUNNING or rt.state is RtState.PAUSED:
            self.stop(rt)
        old = rt.transition(RtState.DELETED)
        for child_ref in self._composite_children.pop(rt.ref_str, {}).values():
            child = self._rt.get(child_ref)
            if child is not None and child.state is not RtState.DELETED:
                self._delete(child)
        self._emit(rt.ref_str, "state", old.value, rt.state.value)
        del self._rt[rt.ref_str]

    def delete_runtime(self, rt: RtObject) -> None:
        """The 'delete' action: remove a form (c) object (public API)."""
        self._delete(rt)

    def select(self, rt: RtObject) -> None:
        """A user selection (click) on a selectable run-time object."""
        if not rt.selectable:
            raise PresentationError(
                f"{rt.ref_str} is not selectable")
        self._emit(rt.ref_str, "selected", False, True)

    # -- composite synchronisation ------------------------------------------------

    def _child_rt(self, rt: RtObject, model_ref_str: str) -> RtObject:
        children = self._composite_children.get(rt.ref_str, {})
        child_ref = children.get(model_ref_str)
        if child_ref is None:
            raise PresentationError(
                f"{rt.ref_str}: sync spec names {model_ref_str}, which is "
                "not an instantiable component")
        return self.runtime(ObjectReference.parse(child_ref))

    def _run_composite(self, rt: RtObject) -> None:
        model = rt.model
        assert isinstance(model, CompositeClass)
        for link_ref in model.links:
            self.arm_link(link_ref)
        spec = model.sync_spec
        children = self._composite_children.get(rt.ref_str, {})
        if spec is None:
            # default: simple serial playback of instantiable components
            order = [children[str(c)] for c in model.components
                     if str(c) in children]
            self._run_chain(rt, order)
            return
        validate_spec(spec)
        # a spec may bound the composite's own presentation time so that
        # scene composites end when their time-line does
        if spec.get("duration"):
            self._schedule_auto_stop(rt, float(spec["duration"]) / rt.speed)
        kind = spec["kind"]
        if kind == "atomic":
            first = self._child_rt(rt, spec["first"])
            second = self._child_rt(rt, spec["second"])
            if spec["mode"] == "parallel":
                self.run(first)
                self.run(second)
            else:
                self._run_chain(rt, [first.ref_str, second.ref_str])
        elif kind == "elementary":
            for entry in spec["entries"]:
                child = self._child_rt(rt, entry["target"])
                if entry["time"] <= 0:
                    self.run(child)
                else:
                    self.schedule(entry["time"], self._run_if_live,
                                  rt.ref_str, child.ref_str,
                                  self.now + entry["time"])
        elif kind == "cyclic":
            child = self._child_rt(rt, spec["target"])
            self._cycle(rt.ref_str, child.ref_str, spec["period"],
                        spec.get("repetitions"))
        elif kind == "chained":
            order = []
            for t in spec["targets"]:
                order.append(self._child_rt(rt, t).ref_str)
            self._run_chain(rt, order)

    def _run_if_live(self, composite_ref: str, child_ref: str,
                     due: Optional[float] = None) -> None:
        if due is not None:
            self._m_sync_skew.observe(max(0.0, self.now - due))
        composite = self._rt.get(composite_ref)
        child = self._rt.get(child_ref)
        if composite is None or composite.state is not RtState.RUNNING:
            return
        if child is not None and child.state is not RtState.DELETED:
            self.run(child)

    def _cycle(self, composite_ref: str, child_ref: str, period: float,
               repetitions: Optional[int], iteration: int = 0,
               due: Optional[float] = None) -> None:
        if due is not None:
            self._m_sync_skew.observe(max(0.0, self.now - due))
        composite = self._rt.get(composite_ref)
        if composite is None or composite.state is not RtState.RUNNING:
            return
        if repetitions is not None and iteration >= repetitions:
            # final repetition issued: the composite completes when the
            # cycled child next stops (or now, if it already has)
            child = self._rt.get(child_ref)
            if child is None or child.state is not RtState.RUNNING:
                self._stop_if_running(composite_ref)
            else:
                self.watch(
                    source=child_ref, attribute="presentation",
                    predicate=lambda v: v == "not-running",
                    callback=lambda c=composite_ref: self._stop_if_running(c),
                    once=True)
            return
        child = self._rt.get(child_ref)
        if child is None or child.state is RtState.DELETED:
            return
        if child.state is RtState.RUNNING:
            self.stop(child)
        self.run(child)
        self.schedule(period, self._cycle, composite_ref, child_ref,
                      period, repetitions, iteration + 1,
                      self.now + period)

    def _run_chain(self, rt: RtObject, order: List[str]) -> None:
        if not order:
            return
        first = self.runtime(ObjectReference.parse(order[0]))
        for prev_ref, next_ref in zip(order, order[1:]):
            self.watch(
                source=prev_ref, attribute="presentation",
                predicate=lambda v: v == "not-running",
                callback=lambda c=rt.ref_str, n=next_ref:
                    self._run_if_live(c, n),
                once=True)
        # serial playback completes the composite when its last element
        # finishes, so enclosing chains (sections, the document) advance
        self.watch(
            source=order[-1], attribute="presentation",
            predicate=lambda v: v == "not-running",
            callback=lambda c=rt.ref_str: self._stop_if_running(c),
            once=True)
        self.run(first)

    def _stop_if_running(self, rt_ref: str) -> None:
        rt = self._rt.get(rt_ref)
        if rt is not None and rt.state is RtState.RUNNING:
            self.stop(rt)

    def _teardown_composite(self, rt: RtObject) -> None:
        model = rt.model
        assert isinstance(model, CompositeClass)
        for link_ref in model.links:
            self.disarm_link(link_ref)
        for child_ref in self._composite_children.get(rt.ref_str, {}).values():
            child = self._rt.get(child_ref)
            if child is not None and child.state in (RtState.RUNNING,
                                                     RtState.PAUSED):
                self.stop(child)

    # -- script interpretation ------------------------------------------------------

    def activate_script(self, rt: RtObject) -> None:
        if rt.kind is not RtKind.SCRIPT:
            raise PresentationError(f"{rt.ref_str} is not a script instance")
        if rt.ref_str in self._scripts:
            return
        model = rt.model
        assert isinstance(model, ScriptClass)
        run = _ScriptRun(self, rt, model.parse())
        self._scripts[rt.ref_str] = run
        self._emit(rt.ref_str, "activation", "inactive", "active")
        run.step()

    def deactivate_script(self, rt: RtObject) -> None:
        run = self._scripts.pop(rt.ref_str, None)
        if run is not None:
            run.kill()
            self._emit(rt.ref_str, "activation", "active", "inactive")

    def _script_finished(self, rt_ref: str) -> None:
        if self._scripts.pop(rt_ref, None) is not None:
            self._emit(rt_ref, "activation", "active", "done")


class _ScriptRun:
    """Stepwise interpreter for one active mits-script instance."""

    def __init__(self, engine: MhegEngine, rt: RtObject,
                 statements: List[ScriptStatement]) -> None:
        self.engine = engine
        self.rt = rt
        self.statements = statements
        self.pc = 0
        self.alive = True
        self._pending = None

    def kill(self) -> None:
        self.alive = False
        self.engine.cancel(self._pending)
        self._pending = None

    def step(self) -> None:
        engine = self.engine
        while self.alive and self.pc < len(self.statements):
            stmt = self.statements[self.pc]
            self.pc += 1
            if stmt.verb == "wait":
                self._pending = engine.schedule(float(stmt.args[0]), self.step)
                return
            self._execute(stmt)
        if self.alive:
            self.alive = False
            engine._script_finished(self.rt.ref_str)

    def _execute(self, stmt: ScriptStatement) -> None:
        engine = self.engine
        if stmt.verb == "new":
            engine.new_runtime(ObjectReference.parse(stmt.args[1]),
                               rt_tag=int(stmt.args[3]),
                               channel=stmt.args[5])
        elif stmt.verb in ("run", "stop", "pause", "resume", "delete"):
            rt = engine.runtime(ObjectReference.parse(stmt.args[0]))
            {"run": engine.run, "stop": engine.stop, "pause": engine.pause,
             "resume": engine.resume, "delete": engine._delete}[stmt.verb](rt)
        elif stmt.verb == "prepare":
            engine.prepare(ObjectReference.parse(stmt.args[0]))
        elif stmt.verb == "set":
            target = ObjectReference.parse(stmt.args[0])
            param, raw = stmt.args[1], stmt.args[2]
            verb = {"position": ActionVerb.SET_POSITION,
                    "size": ActionVerb.SET_SIZE,
                    "speed": ActionVerb.SET_SPEED,
                    "volume": ActionVerb.SET_VOLUME,
                    "selectable": ActionVerb.SET_SELECTABLE,
                    "value": ActionVerb.SET_VALUE}.get(param)
            if verb is None:
                raise PresentationError(
                    f"script {self.rt.ref_str}: unknown parameter {param!r}")
            value: Any
            if param in ("position", "size"):
                value = [int(x) for x in raw.split(",")]
            elif param == "speed":
                value = float(raw)
            elif param == "volume":
                value = int(raw)
            elif param == "selectable":
                value = raw.lower() in ("1", "true", "yes")
            else:
                value = raw
            engine.apply(ElementaryAction(verb=verb, target=target,
                                          parameters={"value": value}))
