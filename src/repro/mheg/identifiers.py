"""MHEG object identification.

Every MHEG object carries an identifier unique within its application
domain; links, actions, and composites refer to other objects through
references rather than containment, which is what makes MHEG objects
reusable across presentations (§3.1.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, order=True)
class MhegIdentifier:
    """(application id, object number) — unique object identity."""

    application: str
    number: int

    def __post_init__(self) -> None:
        if not self.application:
            raise ValueError("application id must be non-empty")
        if self.number < 0:
            raise ValueError("object number must be non-negative")

    def __str__(self) -> str:
        return f"{self.application}/{self.number}"

    @classmethod
    def parse(cls, text: str) -> "MhegIdentifier":
        app, _, num = text.rpartition("/")
        if not app or not num.isdigit():
            raise ValueError(f"malformed MHEG identifier {text!r}")
        return cls(application=app, number=int(num))


@dataclass(frozen=True)
class ObjectReference:
    """A reference to an MHEG object or to one of its run-time copies.

    ``rt_tag`` distinguishes run-time instances created from the same
    model object (``None`` refers to the model object itself).
    """

    identifier: MhegIdentifier
    rt_tag: Optional[int] = None

    @property
    def is_runtime(self) -> bool:
        return self.rt_tag is not None

    def __str__(self) -> str:
        if self.rt_tag is None:
            return str(self.identifier)
        return f"{self.identifier}#{self.rt_tag}"

    @classmethod
    def parse(cls, text: str) -> "ObjectReference":
        base, sep, tag = text.partition("#")
        ident = MhegIdentifier.parse(base)
        if sep:
            if not tag.isdigit():
                raise ValueError(f"malformed run-time tag in {text!r}")
            return cls(identifier=ident, rt_tag=int(tag))
        return cls(identifier=ident)


def ref(application: str, number: int, rt_tag: Optional[int] = None) -> ObjectReference:
    """Convenience constructor used throughout tests and examples."""
    return ObjectReference(MhegIdentifier(application, number), rt_tag)
