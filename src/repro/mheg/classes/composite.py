"""Composite class — the presentation grouping tool (§2.2.2.4).

"The composite class provides facilities for associating multimedia
and hypermedia objects with a consistent approach of synchronization
in time and space, or linking of a set of objects."  A composite
carries component references, socket declarations for its run-time
copies, the links that wire behaviour, and an optional
synchronisation specification (built by :mod:`repro.mheg.sync`).
Composites may contain other composites, giving the
section/subsection/scene hierarchy the document models of chapter 4
compile into.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from repro.mheg.classes.base import ClassId, MhObject, register_class
from repro.mheg.identifiers import ObjectReference
from repro.util.errors import EncodingError


class SocketKind(enum.Enum):
    """Socket typing per §2.2.2.2."""

    EMPTY = "empty"              # a null runtime-component is plugged
    PRESENTABLE = "presentable"  # rt-content or rt-multiplexed-content
    STRUCTURAL = "structural"    # rt-composite


@dataclass
class Socket:
    """An element of a runtime-composite where a runtime-component is
    plugged in."""

    name: str
    kind: SocketKind = SocketKind.EMPTY
    #: model object whose run-time copy is plugged at instantiation
    plugged: Optional[ObjectReference] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("socket needs a name")
        if self.kind is SocketKind.EMPTY and self.plugged is not None:
            raise ValueError(f"socket {self.name}: empty sockets plug nothing")
        if self.kind is not SocketKind.EMPTY and self.plugged is None:
            raise ValueError(f"socket {self.name}: non-empty socket must plug "
                             "a component")

    def to_value(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind.value,
                "plugged": str(self.plugged) if self.plugged else None}

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "Socket":
        plugged = value.get("plugged")
        return cls(name=value["name"], kind=SocketKind(value["kind"]),
                   plugged=ObjectReference.parse(plugged) if plugged else None)


@register_class
@dataclass
class CompositeClass(MhObject):
    """A group of components presented under one scenario."""

    CLASS_ID: ClassVar[ClassId] = ClassId.COMPOSITE
    FIELDS: ClassVar[Tuple[str, ...]] = (
        "components", "sockets", "links", "sync_spec", "layout",
    )

    #: references to component objects (contents, composites, scripts)
    components: List[ObjectReference] = field(default_factory=list)
    #: socket declarations for run-time copies
    sockets: List[Socket] = field(default_factory=list)
    #: links giving this composite its interactive behaviour
    links: List[ObjectReference] = field(default_factory=list)
    #: serialised synchronisation specification (see repro.mheg.sync)
    sync_spec: Optional[Dict[str, Any]] = None
    #: spatial layout: component ref string -> {position, size, channel}
    layout: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        refs = {str(r) for r in self.components}
        if len(refs) != len(self.components):
            raise EncodingError(f"{self}: duplicate component references")
        names = [s.name for s in self.sockets]
        if len(set(names)) != len(names):
            raise EncodingError(f"{self}: duplicate socket names")
        for s in self.sockets:
            if s.plugged is not None and str(s.plugged) not in refs:
                raise EncodingError(
                    f"{self}: socket {s.name} plugs non-component "
                    f"{s.plugged}")
        for key in self.layout:
            if key not in refs:
                raise EncodingError(
                    f"{self}: layout entry for non-component {key}")

    def component_refs(self) -> List[ObjectReference]:
        return list(self.components)

    def socket(self, name: str) -> Socket:
        for s in self.sockets:
            if s.name == name:
                return s
        raise KeyError(f"no socket {name!r} in {self}")
