"""Script class — application-level synchronisation (Fig 2.5).

"The script class defines a container for specifying complex
relationships between MHEG objects and run-time objects by a
non-MHEG language."  The thesis could not elaborate scripts because
MHEG part 3 was unavailable (§6.2); we define a deliberately small
imperative language, ``mits-script``, sufficient for the
application-level synchronisation of Fig 2.5:

.. code-block:: text

    new video course/1 as 1 on main      # create rt copy on a channel
    run course/1#1                       # start presentation
    wait 2.5                             # advance the script clock
    set course/1#1 volume 80             # rendition parameter
    stop course/1#1
    delete course/1#1

Parsing happens at authoring time (:meth:`ScriptClass.parse`) so a
malformed script is rejected before interchange; execution is the
engine's job.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import ClassVar, List, Tuple

from repro.mheg.classes.base import ClassId, MhObject, register_class
from repro.mheg.identifiers import ObjectReference
from repro.util.errors import EncodingError

SCRIPT_LANGUAGE = "mits-script"

#: statement name -> (min args, max args)
_STATEMENTS = {
    "new": (6, 6),     # new <kind> <ref> as <tag> on <channel>
    "run": (1, 1),     # run <rt-ref>
    "stop": (1, 1),
    "pause": (1, 1),
    "resume": (1, 1),
    "delete": (1, 1),
    "prepare": (1, 1),
    "wait": (1, 1),    # wait <seconds>
    "set": (3, 3),     # set <rt-ref> <param> <value>
}


@dataclass
class ScriptStatement:
    verb: str
    args: Tuple[str, ...]
    line: int

    def __str__(self) -> str:
        return f"{self.verb} {' '.join(self.args)}"


@register_class
@dataclass
class ScriptClass(MhObject):
    """An interchanged script in the ``mits-script`` language."""

    CLASS_ID: ClassVar[ClassId] = ClassId.SCRIPT
    FIELDS: ClassVar[Tuple[str, ...]] = ("language", "source")

    language: str = SCRIPT_LANGUAGE
    source: str = ""

    def validate(self) -> None:
        if self.language != SCRIPT_LANGUAGE:
            raise EncodingError(
                f"{self}: unsupported script language {self.language!r}")
        self.parse()  # raises on malformed source

    def parse(self) -> List[ScriptStatement]:
        """Parse *source* into statements, validating syntax."""
        statements: List[ScriptStatement] = []
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            # '#' also appears inside rt references (course/1#1), so a
            # comment starts only at '#' preceded by whitespace or BOL
            line = re.sub(r"(^|\s)#.*$", "", raw).strip()
            if not line:
                continue
            parts = line.split()
            verb, args = parts[0], tuple(parts[1:])
            if verb not in _STATEMENTS:
                raise EncodingError(
                    f"{self}: line {lineno}: unknown statement {verb!r}")
            lo, hi = _STATEMENTS[verb]
            if not lo <= len(args) <= hi:
                raise EncodingError(
                    f"{self}: line {lineno}: {verb} takes {lo} argument(s)")
            if verb == "wait":
                try:
                    if float(args[0]) < 0:
                        raise ValueError
                except ValueError:
                    raise EncodingError(
                        f"{self}: line {lineno}: bad wait duration "
                        f"{args[0]!r}") from None
            if verb == "new":
                if args[2] != "as" or args[4] != "on" or not args[3].isdigit():
                    raise EncodingError(
                        f"{self}: line {lineno}: expected "
                        "'new <kind> <ref> as <tag> on <channel>'")
            # reference arguments must parse
            ref_positions = {"new": (1,), "run": (0,), "stop": (0,),
                             "pause": (0,), "resume": (0,), "delete": (0,),
                             "prepare": (0,), "set": (0,)}.get(verb, ())
            for i in ref_positions:
                try:
                    ObjectReference.parse(args[i])
                except ValueError as exc:
                    raise EncodingError(
                        f"{self}: line {lineno}: bad reference "
                        f"{args[i]!r}: {exc}") from None
            statements.append(ScriptStatement(verb=verb, args=args,
                                              line=lineno))
        return statements
