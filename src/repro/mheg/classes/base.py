"""MhObject base class and registry.

Common attributes per the standard: identification of the standard
("19" stands for MHEG), class of the object, the MHEG identifier, and
general object information (name, owner, version, date, keywords...).

Serialisation is declarative: each concrete class lists the dataclass
fields to interchange in ``FIELDS``; the codec walks them.  The
registry maps interchange type names back to classes on decode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type

from repro.mheg.identifiers import MhegIdentifier
from repro.util.errors import EncodingError

#: "The standard identifier attribute '19' which stands for 'MHEG'"
MHEG_STANDARD_ID = 19
MHEG_VERSION = 1


class ClassId(enum.IntEnum):
    """The eight interchanged classes (plus the generic-value extension)."""

    CONTENT = 1
    MULTIPLEXED_CONTENT = 2
    COMPOSITE = 3
    LINK = 4
    ACTION = 5
    SCRIPT = 6
    DESCRIPTOR = 7
    CONTAINER = 8


@dataclass
class ObjectInfo:
    """General object information shared by every MHEG object."""

    name: str = ""
    owner: str = ""
    version: str = "1"
    date: str = ""
    keywords: List[str] = field(default_factory=list)
    copyright: str = ""
    comment: str = ""

    def to_value(self) -> Dict[str, Any]:
        """Interchange form; default-valued attributes are omitted to
        keep the wire form compact."""
        out: Dict[str, Any] = {}
        if self.name:
            out["name"] = self.name
        if self.owner:
            out["owner"] = self.owner
        if self.version != "1":
            out["version"] = self.version
        if self.date:
            out["date"] = self.date
        if self.keywords:
            out["keywords"] = list(self.keywords)
        if self.copyright:
            out["copyright"] = self.copyright
        if self.comment:
            out["comment"] = self.comment
        return out

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "ObjectInfo":
        return cls(name=value.get("name", ""), owner=value.get("owner", ""),
                   version=value.get("version", "1"),
                   date=value.get("date", ""),
                   keywords=list(value.get("keywords", [])),
                   copyright=value.get("copyright", ""),
                   comment=value.get("comment", ""))


#: interchange type name -> concrete class
_REGISTRY: Dict[str, Type["MhObject"]] = {}


def register_class(cls: Type["MhObject"]) -> Type["MhObject"]:
    """Class decorator recording a concrete MHEG class for decoding."""
    name = cls.type_name()
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise EncodingError(f"duplicate MHEG type name {name!r}")
    _REGISTRY[name] = cls
    return cls


def class_registry() -> Dict[str, Type["MhObject"]]:
    return dict(_REGISTRY)


def lookup_class(type_name: str) -> Type["MhObject"]:
    try:
        return _REGISTRY[type_name]
    except KeyError as exc:
        raise EncodingError(f"unknown MHEG type name {type_name!r}") from exc


@dataclass
class MhObject:
    """Base of every interchanged MHEG object."""

    identifier: MhegIdentifier
    info: ObjectInfo = field(default_factory=ObjectInfo)

    #: subclasses set their standard class
    CLASS_ID: ClassVar[ClassId]
    #: dataclass field names included in interchange, beyond the base two
    FIELDS: ClassVar[Tuple[str, ...]] = ()

    @classmethod
    def type_name(cls) -> str:
        return cls.__name__

    @property
    def class_id(self) -> ClassId:
        return self.CLASS_ID

    @property
    def standard_id(self) -> int:
        return MHEG_STANDARD_ID

    _FIELD_DEFAULTS: ClassVar[Optional[Dict[str, Any]]] = None

    @classmethod
    def _field_defaults(cls) -> Dict[str, Any]:
        """Default value per interchanged field (factories invoked)."""
        if cls.__dict__.get("_FIELD_DEFAULTS") is None:
            import dataclasses
            defaults: Dict[str, Any] = {}
            for f in dataclasses.fields(cls):
                if f.name not in cls.FIELDS:
                    continue
                if f.default is not dataclasses.MISSING:
                    defaults[f.name] = f.default
                elif f.default_factory is not dataclasses.MISSING:
                    defaults[f.name] = f.default_factory()
            cls._FIELD_DEFAULTS = defaults
        return cls._FIELD_DEFAULTS

    def interchange_fields(self) -> Dict[str, Any]:
        """Field-name -> raw attribute value, in declared order.

        Fields still holding their default value are omitted; the
        decoder reinstates defaults for absent fields, so round-trips
        are exact while the wire form stays compact.
        """
        defaults = self._field_defaults()
        out = {}
        for name in self.FIELDS:
            value = getattr(self, name)
            if name in defaults and value == defaults[name]:
                continue
            out[name] = value
        return out

    def validate(self) -> None:
        """Subclass hook: raise on structurally invalid objects.

        Called by the codec before encoding and after decoding so that
        malformed objects never cross an interchange boundary.
        """

    def __str__(self) -> str:
        label = self.info.name or "(unnamed)"
        return f"<{self.type_name()} {self.identifier} {label!r}>"
