"""Link and action classes — synchronisation and interaction (§2.2.2.1).

A link specifies relationships between "sources" and "targets": when
its trigger conditions fire (the engine detects a status change) and
its additional conditions hold, the associated action object is
applied to the targets.  Actions are synchronisation sets of
elementary actions drawn from the standard's behaviour families
(Fig 4.5c): preparation, creation, presentation, rendition,
interaction, activation, and getting value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from repro.mheg.classes.base import ClassId, MhObject, register_class
from repro.mheg.identifiers import ObjectReference
from repro.util.errors import EncodingError


class ActionVerb(enum.Enum):
    """Elementary actions grouped by the Fig 4.5c families."""

    # preparation: availability of the object in the system
    PREPARE = "prepare"
    DESTROY = "destroy"
    # creation: build run-time instances from model objects
    NEW = "new"
    DELETE = "delete"
    # presentation: progress of presentation instances
    RUN = "run"
    STOP = "stop"
    PAUSE = "pause"
    RESUME = "resume"
    # rendition: prepare rendition according to media type
    SET_POSITION = "set_position"
    SET_SIZE = "set_size"
    SET_SPEED = "set_speed"
    SET_VOLUME = "set_volume"
    # interaction: results of interaction between instance and system
    SET_SELECTABLE = "set_selectable"
    SELECT = "select"
    # activation: script instances
    ACTIVATE = "activate"
    DEACTIVATE = "deactivate"
    # getting value: attributes / status / behaviour values
    GET_STATUS = "get_status"
    SET_VALUE = "set_value"
    GET_VALUE = "get_value"


#: verbs meaningful only on run-time (form c) objects
RUNTIME_VERBS = frozenset({
    ActionVerb.RUN, ActionVerb.STOP, ActionVerb.PAUSE, ActionVerb.RESUME,
    ActionVerb.SET_POSITION, ActionVerb.SET_SIZE, ActionVerb.SET_SPEED,
    ActionVerb.SET_VOLUME, ActionVerb.SET_SELECTABLE, ActionVerb.SELECT,
    ActionVerb.ACTIVATE, ActionVerb.DEACTIVATE, ActionVerb.DELETE,
})


@dataclass
class ElementaryAction:
    """One verb applied to one target, optionally after a delay.

    The delay realises the standard's "synchronization set": actions
    in one action object may be offset in time relative to the moment
    the action object executes.
    """

    verb: ActionVerb
    target: ObjectReference
    parameters: Dict[str, Any] = field(default_factory=dict)
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("elementary action delay must be >= 0")

    def to_value(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"verb": self.verb.value,
                               "target": str(self.target)}
        if self.parameters:
            out["parameters"] = dict(self.parameters)
        if self.delay:
            out["delay"] = self.delay
        return out

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "ElementaryAction":
        return cls(verb=ActionVerb(value["verb"]),
                   target=ObjectReference.parse(value["target"]),
                   parameters=dict(value.get("parameters", {})),
                   delay=float(value.get("delay", 0.0)))


@register_class
@dataclass
class ActionClass(MhObject):
    """A synchronisation set of elementary actions.

    ``mode`` is "parallel" (all actions start at their own delays,
    measured from execution) or "serial" (each action starts when the
    previous one has been issued, delays accumulating).
    """

    CLASS_ID: ClassVar[ClassId] = ClassId.ACTION
    FIELDS: ClassVar[Tuple[str, ...]] = ("actions", "mode")

    actions: List[ElementaryAction] = field(default_factory=list)
    mode: str = "parallel"

    def validate(self) -> None:
        if self.mode not in ("parallel", "serial"):
            raise EncodingError(f"{self}: bad action mode {self.mode!r}")
        if not self.actions:
            raise EncodingError(f"{self}: action object with no actions")

    def schedule(self) -> List[Tuple[float, ElementaryAction]]:
        """(relative time, action) pairs per the mode semantics."""
        if self.mode == "parallel":
            return [(a.delay, a) for a in self.actions]
        out = []
        t = 0.0
        for a in self.actions:
            t += a.delay
            out.append((t, a))
        return out


class ConditionKind(enum.Enum):
    TRIGGER = "trigger"        # fires on a detected status change
    ADDITIONAL = "additional"  # tested when a trigger fires


@dataclass
class LinkCondition:
    """A predicate over an object's status or attribute value.

    *attribute* names an engine-visible status: ``rt_state``,
    ``presentation``, ``selected``, ``value``, ``prepared``...
    *comparison* is one of ``==  !=  >  <  >=  <=``.
    """

    kind: ConditionKind
    source: ObjectReference
    attribute: str
    comparison: str
    value: Any

    _OPS = ("==", "!=", ">", "<", ">=", "<=")

    def __post_init__(self) -> None:
        if self.comparison not in self._OPS:
            raise ValueError(f"bad comparison {self.comparison!r}")

    def evaluate(self, observed: Any) -> bool:
        if self.comparison == "==":
            return observed == self.value
        if self.comparison == "!=":
            return observed != self.value
        if observed is None:
            return False
        if self.comparison == ">":
            return observed > self.value
        if self.comparison == "<":
            return observed < self.value
        if self.comparison == ">=":
            return observed >= self.value
        return observed <= self.value

    def to_value(self) -> Dict[str, Any]:
        return {"kind": self.kind.value, "source": str(self.source),
                "attribute": self.attribute, "comparison": self.comparison,
                "value": self.value}

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "LinkCondition":
        return cls(kind=ConditionKind(value["kind"]),
                   source=ObjectReference.parse(value["source"]),
                   attribute=value["attribute"],
                   comparison=value["comparison"],
                   value=value.get("value"))


@register_class
@dataclass
class LinkClass(MhObject):
    """Relationship between sources and targets.

    The link fires when any trigger condition matches a status change
    and all additional conditions hold; the effect is either an inline
    action object or a reference to one.  Links interchange fully
    resolved — "links in MHEG link objects require no further
    processing other than their direct execution" (§2.3.2).
    """

    CLASS_ID: ClassVar[ClassId] = ClassId.LINK
    FIELDS: ClassVar[Tuple[str, ...]] = (
        "trigger_conditions", "additional_conditions", "effect",
        "effect_ref", "once",
    )

    trigger_conditions: List[LinkCondition] = field(default_factory=list)
    additional_conditions: List[LinkCondition] = field(default_factory=list)
    #: inline action object (exactly one of effect / effect_ref)
    effect: Optional[ActionClass] = None
    #: reference to an interchanged action object
    effect_ref: Optional[ObjectReference] = None
    #: if True the link disarms after its first firing
    once: bool = False

    def validate(self) -> None:
        if not self.trigger_conditions:
            raise EncodingError(f"{self}: link needs a trigger condition")
        for c in self.trigger_conditions:
            if c.kind is not ConditionKind.TRIGGER:
                raise EncodingError(f"{self}: non-trigger in trigger set")
        for c in self.additional_conditions:
            if c.kind is not ConditionKind.ADDITIONAL:
                raise EncodingError(f"{self}: non-additional in additional set")
        if (self.effect is None) == (self.effect_ref is None):
            raise EncodingError(
                f"{self}: exactly one of effect and effect_ref must be set")
        if self.effect is not None:
            self.effect.validate()

    def sources(self) -> List[ObjectReference]:
        return [c.source for c in self.trigger_conditions]
