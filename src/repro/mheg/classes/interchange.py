"""Container and descriptor classes — the interchange tools (§2.2.2.1).

The container regroups objects "in order to interchange them as a
whole set" (Fig 2.8); the descriptor carries resource information so
the presentation site can check — *before* the real content objects
are transmitted — that it can handle them, or negotiate (§3.1.2.2
"Minimal Resources").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Tuple

from repro.mheg.classes.base import ClassId, MhObject, register_class
from repro.mheg.identifiers import ObjectReference
from repro.util.errors import EncodingError


@register_class
@dataclass
class ContainerClass(MhObject):
    """Groups whole objects for interchange as one unit.

    Unlike composites (which reference), containers *carry* their
    objects, because the receiving engine may know nothing yet.
    """

    CLASS_ID: ClassVar[ClassId] = ClassId.CONTAINER
    FIELDS: ClassVar[Tuple[str, ...]] = ("objects",)

    objects: List[MhObject] = field(default_factory=list)

    def validate(self) -> None:
        seen = set()
        for obj in self.objects:
            key = str(obj.identifier)
            if key in seen:
                raise EncodingError(f"{self}: duplicate object {key}")
            seen.add(key)
            obj.validate()

    def find(self, reference: ObjectReference) -> MhObject:
        for obj in self.objects:
            if obj.identifier == reference.identifier:
                return obj
        raise KeyError(f"{reference} not in {self}")

    def manifest(self) -> List[str]:
        return [str(o.identifier) for o in self.objects]


@dataclass
class ResourceRequirement:
    """One resource the presentation of a set of objects needs."""

    decoder: str                 # coding method required, e.g. "SMPG"
    peak_bitrate_bps: float = 0.0
    storage_bytes: int = 0

    def to_value(self) -> Dict[str, Any]:
        return {"decoder": self.decoder,
                "peak_bitrate_bps": self.peak_bitrate_bps,
                "storage_bytes": self.storage_bytes}

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "ResourceRequirement":
        return cls(decoder=value["decoder"],
                   peak_bitrate_bps=float(value.get("peak_bitrate_bps", 0.0)),
                   storage_bytes=int(value.get("storage_bytes", 0)))


@register_class
@dataclass
class DescriptorClass(MhObject):
    """Resource information about a set of interchanged objects."""

    CLASS_ID: ClassVar[ClassId] = ClassId.DESCRIPTOR
    FIELDS: ClassVar[Tuple[str, ...]] = (
        "described", "requirements", "readme", "total_size",
    )

    #: the objects this descriptor describes
    described: List[ObjectReference] = field(default_factory=list)
    requirements: List[ResourceRequirement] = field(default_factory=list)
    #: human/system-readable material for negotiation
    readme: str = ""
    total_size: int = 0

    def validate(self) -> None:
        if not self.described:
            raise EncodingError(f"{self}: descriptor describes nothing")

    def check_capabilities(self, capabilities: Dict[str, Any]
                           ) -> Tuple[bool, List[str]]:
        """Negotiation: can a site with *capabilities* present these
        objects?

        *capabilities* keys: ``decoders`` (iterable of coding methods),
        ``bandwidth_bps``, ``storage_bytes``.  Returns (ok, problems).
        """
        problems: List[str] = []
        decoders = set(capabilities.get("decoders", ()))
        for req in self.requirements:
            if req.decoder not in decoders:
                problems.append(f"missing decoder {req.decoder}")
            bw = capabilities.get("bandwidth_bps")
            if bw is not None and req.peak_bitrate_bps > bw:
                problems.append(
                    f"{req.decoder} needs {req.peak_bitrate_bps:.0f} bps, "
                    f"site has {bw:.0f}")
        storage = capabilities.get("storage_bytes")
        if storage is not None and self.total_size > storage:
            problems.append(
                f"objects total {self.total_size} bytes, site has {storage}")
        return (not problems), problems
