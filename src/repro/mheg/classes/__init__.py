"""The MHEG class library (Fig 4.5).

Eight standard classes (ISO/IEC 13522-1 §16-27, as summarised in the
thesis §2.2.2.1) plus the extension subclasses of Fig 4.5b/c: the
content tree (media / non-media / generic value), and typed action
verbs grouped by the standard's seven behaviour families.
"""

from repro.mheg.classes.base import ClassId, MhObject, ObjectInfo, register_class, class_registry
from repro.mheg.classes.content import (
    ContentClass,
    VideoContentClass,
    AudioContentClass,
    ImageContentClass,
    TextContentClass,
    GraphicsContentClass,
    NonMediaDataClass,
    GenericValueClass,
    MultiplexedContentClass,
    StreamDescription,
)
from repro.mheg.classes.composite import CompositeClass, Socket, SocketKind
from repro.mheg.classes.behavior import (
    ActionClass,
    ActionVerb,
    ElementaryAction,
    LinkClass,
    LinkCondition,
)
from repro.mheg.classes.interchange import ContainerClass, DescriptorClass
from repro.mheg.classes.script import ScriptClass

__all__ = [
    "ClassId",
    "MhObject",
    "ObjectInfo",
    "register_class",
    "class_registry",
    "ContentClass",
    "VideoContentClass",
    "AudioContentClass",
    "ImageContentClass",
    "TextContentClass",
    "GraphicsContentClass",
    "NonMediaDataClass",
    "GenericValueClass",
    "MultiplexedContentClass",
    "StreamDescription",
    "CompositeClass",
    "Socket",
    "SocketKind",
    "ActionClass",
    "ActionVerb",
    "ElementaryAction",
    "LinkClass",
    "LinkCondition",
    "ContainerClass",
    "DescriptorClass",
    "ScriptClass",
]
