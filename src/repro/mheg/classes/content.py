"""Content classes (Fig 4.5b).

The content class "contains or refers to the media objects with a
parameter set specifying characteristics for content presentation".
Two storage schemes exist (§3.4.2): content *included* as binary data
inside the object, or content *referenced* by a key into the content
database — MITS chooses the latter for reusability and on-demand
transfer, and the ablation benchmark EX.2 measures exactly this
trade-off, so both are implemented.

Subclasses follow the thesis's library: media data (video, audio,
image, text, graphics), non-media data (executables, foreign
documents), generic values, and multiplexed content with per-stream
descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from repro.mheg.classes.base import ClassId, MhObject, register_class
from repro.util.errors import EncodingError


@register_class
@dataclass
class ContentClass(MhObject):
    """A mono-media content object.

    Exactly one of *data* (included content) and *content_ref*
    (reference into the content database) must be set.
    """

    CLASS_ID: ClassVar[ClassId] = ClassId.CONTENT
    FIELDS: ClassVar[Tuple[str, ...]] = (
        "content_hook", "data", "content_ref", "original_size",
        "original_duration", "original_volume", "presentation",
    )

    #: identification of the coding method (e.g. "SMPG", "SIMG")
    content_hook: str = ""
    #: included content data (scheme 1)
    data: Optional[bytes] = None
    #: reference into the content database (scheme 2)
    content_ref: Optional[str] = None
    #: original size in generic units: (width, height) or byte count
    original_size: Optional[List[int]] = None
    #: original duration in seconds for continuous media
    original_duration: Optional[float] = None
    #: original volume 0..100 for audible media
    original_volume: Optional[int] = None
    #: presentation parameter set (position, size on screen, speed...)
    presentation: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if (self.data is None) == (self.content_ref is None):
            raise EncodingError(
                f"{self}: exactly one of included data and content_ref "
                "must be set")
        if not self.content_hook:
            raise EncodingError(f"{self}: content_hook (coding method) required")

    @property
    def included(self) -> bool:
        """True when content travels inside the object."""
        return self.data is not None

    def payload_size(self) -> int:
        """Bytes of content carried inline (0 for referenced content)."""
        return len(self.data) if self.data is not None else 0


@register_class
@dataclass
class VideoContentClass(ContentClass):
    media_kind: ClassVar[str] = "video"


@register_class
@dataclass
class AudioContentClass(ContentClass):
    media_kind: ClassVar[str] = "audio"


@register_class
@dataclass
class ImageContentClass(ContentClass):
    media_kind: ClassVar[str] = "image"


@register_class
@dataclass
class TextContentClass(ContentClass):
    media_kind: ClassVar[str] = "text"


@register_class
@dataclass
class GraphicsContentClass(ContentClass):
    media_kind: ClassVar[str] = "graphics"


@register_class
@dataclass
class NonMediaDataClass(ContentClass):
    """Executables or documents coded in other formats (HyTime, ODA)."""

    FIELDS: ClassVar[Tuple[str, ...]] = ContentClass.FIELDS + ("data_format",)

    #: e.g. "hytime", "executable"
    data_format: str = ""

    def validate(self) -> None:
        super().validate()
        if not self.data_format:
            raise EncodingError(f"{self}: data_format required")


@register_class
@dataclass
class GenericValueClass(MhObject):
    """A value stored for comparison, assignment, or presentation."""

    CLASS_ID: ClassVar[ClassId] = ClassId.CONTENT
    FIELDS: ClassVar[Tuple[str, ...]] = ("value",)

    value: Any = None


@dataclass
class StreamDescription:
    """One stream inside a multiplexed content object."""

    stream_id: int
    media_kind: str
    rate_bps: float = 0.0

    def to_value(self) -> Dict[str, Any]:
        return {"stream_id": self.stream_id, "media_kind": self.media_kind,
                "rate_bps": self.rate_bps}

    @classmethod
    def from_value(cls, value: Dict[str, Any]) -> "StreamDescription":
        return cls(stream_id=int(value["stream_id"]),
                   media_kind=str(value["media_kind"]),
                   rate_bps=float(value.get("rate_bps", 0.0)))


@register_class
@dataclass
class MultiplexedContentClass(ContentClass):
    """Content with multiple interleaved streams; the stream identifier
    can control single streams (e.g. turn audio off in a system stream)."""

    CLASS_ID: ClassVar[ClassId] = ClassId.MULTIPLEXED_CONTENT
    FIELDS: ClassVar[Tuple[str, ...]] = ContentClass.FIELDS + ("streams",)

    streams: List[StreamDescription] = field(default_factory=list)

    def validate(self) -> None:
        super().validate()
        if not self.streams:
            raise EncodingError(f"{self}: multiplexed content needs streams")
        ids = [s.stream_id for s in self.streams]
        if len(set(ids)) != len(ids):
            raise EncodingError(f"{self}: duplicate stream ids")

    def stream(self, stream_id: int) -> StreamDescription:
        for s in self.streams:
            if s.stream_id == stream_id:
                return s
        raise KeyError(f"no stream {stream_id} in {self}")
