"""MHEG object interchange codec (Fig 2.9).

"MHEG object is only coded at the interchange point between the using
applications.  The MHEG encoder converts the internal format used in A
to the MHEG format, while the MHEG decoder decodes the MHEG object to
its own internal format."

Two notations, as in the standard: **ASN.1 BER** (the primary, via
:mod:`repro.mheg.asn1`) and an **SGML-like textual form**.  Both paths
share one intermediate representation — a plain tree of dicts, lists,
and scalars produced by :func:`to_plain` — so they are exactly
equivalent and round-trip through each other.
"""

from __future__ import annotations

import base64
import re
from typing import Any, Dict, List, Type

from repro.mheg import asn1
from repro.mheg.classes.base import MhObject, ObjectInfo, lookup_class
from repro.mheg.classes.behavior import ElementaryAction, LinkCondition
from repro.mheg.classes.composite import Socket
from repro.mheg.classes.content import StreamDescription
from repro.mheg.classes.interchange import ResourceRequirement
from repro.mheg.identifiers import MhegIdentifier, ObjectReference
from repro.util.errors import DecodingError, EncodingError

#: dataclasses that serialise via to_value()/from_value()
_VALUE_TYPES: Dict[str, Type] = {
    "ElementaryAction": ElementaryAction,
    "LinkCondition": LinkCondition,
    "Socket": Socket,
    "StreamDescription": StreamDescription,
    "ResourceRequirement": ResourceRequirement,
}


# -- object <-> plain tree ----------------------------------------------------

def _plain_value(value: Any, depth: int = 0) -> Any:
    if depth > 24:
        raise EncodingError("object graph nests too deeply")
    if isinstance(value, MhObject):
        return to_plain(value, depth + 1)
    if isinstance(value, ObjectReference):
        return {"__ref__": str(value)}
    if isinstance(value, MhegIdentifier):
        return {"__ref__": str(value)}
    type_name = type(value).__name__
    if type_name in _VALUE_TYPES:
        return {"__kind__": type_name, "v": value.to_value()}
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise EncodingError("interchange dict keys must be str")
            out[k] = _plain_value(v, depth + 1)
        return out
    if isinstance(value, (list, tuple)):
        return [_plain_value(v, depth + 1) for v in value]
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    raise EncodingError(
        f"cannot interchange value of type {type_name}")


def _from_plain_value(value: Any, depth: int = 0) -> Any:
    if depth > 24:
        raise DecodingError("interchanged value nests too deeply")
    if isinstance(value, dict):
        if "__mheg__" in value:
            return from_plain(value, depth + 1)
        if "__ref__" in value:
            return ObjectReference.parse(value["__ref__"])
        if "__kind__" in value:
            cls = _VALUE_TYPES.get(value["__kind__"])
            if cls is None:
                raise DecodingError(
                    f"unknown value kind {value['__kind__']!r}")
            return cls.from_value(value["v"])
        return {k: _from_plain_value(v, depth + 1) for k, v in value.items()}
    if isinstance(value, list):
        return [_from_plain_value(v, depth + 1) for v in value]
    return value


def to_plain(obj: MhObject, depth: int = 0) -> Dict[str, Any]:
    """Convert an object (graph) to the neutral interchange tree."""
    obj.validate()
    out = {
        "__mheg__": obj.type_name(),
        "standard": obj.standard_id,
        "class": int(obj.class_id),
        "id": str(obj.identifier),
        "fields": {name: _plain_value(v, depth + 1)
                   for name, v in obj.interchange_fields().items()},
    }
    info = obj.info.to_value()
    if info:
        out["info"] = info
    return out


def from_plain(plain: Dict[str, Any], depth: int = 0) -> MhObject:
    """Inverse of :func:`to_plain`; validates the rebuilt object."""
    try:
        type_name = plain["__mheg__"]
        identifier = MhegIdentifier.parse(plain["id"])
        info = ObjectInfo.from_value(plain.get("info", {}))
        raw_fields = plain.get("fields", {})
    except (KeyError, ValueError, TypeError) as exc:
        raise DecodingError(f"malformed interchanged object: {exc}") from exc
    cls = lookup_class(type_name)
    if plain.get("class") != int(cls.CLASS_ID):
        raise DecodingError(
            f"{type_name}: class id mismatch "
            f"({plain.get('class')} != {int(cls.CLASS_ID)})")
    kwargs = {}
    for name in cls.FIELDS:
        if name in raw_fields:
            kwargs[name] = _from_plain_value(raw_fields[name], depth + 1)
    try:
        obj = cls(identifier=identifier, info=info, **kwargs)
    except TypeError as exc:
        raise DecodingError(f"{type_name}: bad field set: {exc}") from exc
    obj.validate()
    return obj


# -- SGML-like textual notation ----------------------------------------------
# <mheg type="ContentClass" id="app/1"> <num n="19"/> ... </mheg> would be
# heavy; we emit a compact element-per-node form that an SGML-era tool
# would recognise, with explicit types so parsing is unambiguous.

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}
_UNESCAPES = {v: k for k, v in _ESCAPES.items()}


def _escape(text: str) -> str:
    for raw, esc in _ESCAPES.items():
        text = text.replace(raw, esc)
    return text


def _unescape(text: str) -> str:
    text = text.replace("&lt;", "<").replace("&gt;", ">") \
               .replace("&quot;", '"')
    return text.replace("&amp;", "&")


def _sgml_node(value: Any, out: List[str], indent: int) -> None:
    pad = "  " * indent
    if value is None:
        out.append(f"{pad}<null/>")
    elif value is True or value is False:
        out.append(f"{pad}<bool v=\"{'true' if value else 'false'}\"/>")
    elif isinstance(value, int):
        out.append(f'{pad}<int v="{value}"/>')
    elif isinstance(value, float):
        out.append(f'{pad}<real v="{value!r}"/>')
    elif isinstance(value, str):
        out.append(f'{pad}<str v="{_escape(value)}"/>')
    elif isinstance(value, bytes):
        out.append(f'{pad}<data v="{base64.b64encode(value).decode()}"/>')
    elif isinstance(value, list):
        out.append(f"{pad}<list>")
        for item in value:
            _sgml_node(item, out, indent + 1)
        out.append(f"{pad}</list>")
    elif isinstance(value, dict):
        out.append(f"{pad}<map>")
        for k, v in value.items():
            out.append(f'{pad}  <entry key="{_escape(k)}">')
            _sgml_node(v, out, indent + 2)
            out.append(f"{pad}  </entry>")
        out.append(f"{pad}</map>")
    else:
        raise EncodingError(f"cannot SGML-encode {type(value).__name__}")


_TOKEN_RE = re.compile(
    r"<(null|bool|int|real|str|data)\s*(?:v=\"([^\"]*)\")?\s*/>"
    r"|<(list|map)>|</(list|map)>"
    r"|<entry key=\"([^\"]*)\">|</entry>")


def _parse_sgml_nodes(text: str):
    """Tokenise and parse the node grammar; returns the root value."""
    pos = 0
    stack: List[Any] = []
    root_holder: List[Any] = []

    def emit(value: Any) -> None:
        if not stack:
            root_holder.append(value)
        else:
            top = stack[-1]
            if isinstance(top, list):
                top.append(value)
            else:  # (dict, pending_key)
                container, key = top
                if key[0] is None:
                    raise DecodingError("value outside <entry> in <map>")
                container[key[0]] = value
                key[0] = None

    for match in _TOKEN_RE.finditer(text):
        leaf, leaf_v, open_tag, close_tag, entry_key = (
            match.group(1), match.group(2), match.group(3),
            match.group(4), match.group(5))
        if leaf:
            v = leaf_v if leaf_v is not None else ""
            if leaf == "null":
                emit(None)
            elif leaf == "bool":
                emit(v == "true")
            elif leaf == "int":
                emit(int(v))
            elif leaf == "real":
                emit(float(v))
            elif leaf == "str":
                emit(_unescape(v))
            elif leaf == "data":
                try:
                    emit(base64.b64decode(v, validate=True))
                except Exception as exc:
                    raise DecodingError(f"bad base64 data: {exc}") from exc
        elif open_tag == "list":
            stack.append([])
        elif open_tag == "map":
            stack.append(({}, [None]))
        elif close_tag == "list":
            if not stack or not isinstance(stack[-1], list):
                raise DecodingError("mismatched </list>")
            emit(stack.pop())
        elif close_tag == "map":
            if not stack or isinstance(stack[-1], list):
                raise DecodingError("mismatched </map>")
            container, _ = stack.pop()
            emit(container)
        elif entry_key is not None:
            if not stack or isinstance(stack[-1], list):
                raise DecodingError("<entry> outside <map>")
            stack[-1][1][0] = _unescape(entry_key)
        # </entry> needs no action
    if stack:
        raise DecodingError("unclosed SGML container")
    if len(root_holder) != 1:
        raise DecodingError(
            f"expected exactly one root value, got {len(root_holder)}")
    return root_holder[0]


class MhegCodec:
    """Encoder/decoder between internal objects and interchange forms."""

    def encode(self, obj: MhObject) -> bytes:
        """Object -> ASN.1 BER bytes (the form (a) interchange unit)."""
        plain = to_plain(obj)
        tlv = asn1.application(int(obj.class_id), [asn1.value_to_tlv(plain)])
        return asn1.encode_tlv(tlv)

    def decode(self, data: bytes) -> MhObject:
        """ASN.1 BER bytes -> internal object (form (b))."""
        if not data:
            raise DecodingError("empty MHEG interchange unit")
        if data[0] >> 6 != asn1.APPLICATION:
            raise DecodingError("MHEG objects are application-tagged")
        outer_tag = data[0] & 0x1F
        # skip the outer identifier+length, then one-pass parse the body
        _cls, _num, _constructed, header_end = \
            asn1._decode_identifier(data, 0)
        length, body_start = asn1._decode_length(data, header_end)
        if body_start + length != len(data):
            raise DecodingError("MHEG wrapper length mismatch")
        plain, end = asn1.parse_value(data, body_start)
        if end != len(data):
            raise DecodingError("MHEG wrapper must hold one value")
        obj = from_plain(plain)
        if int(obj.class_id) != outer_tag:
            raise DecodingError(
                f"outer class tag {outer_tag} does not match object class "
                f"{int(obj.class_id)}")
        return obj

    def to_sgml(self, obj: MhObject) -> str:
        """Object -> SGML-like textual notation."""
        plain = to_plain(obj)
        out: List[str] = [f'<mheg type="{obj.type_name()}">']
        _sgml_node(plain, out, 1)
        out.append("</mheg>")
        return "\n".join(out)

    def from_sgml(self, text: str) -> MhObject:
        match = re.search(r'<mheg type="[^"]*">(.*)</mheg>', text, re.DOTALL)
        if not match:
            raise DecodingError("not an MHEG SGML document")
        plain = _parse_sgml_nodes(match.group(1))
        return from_plain(plain)
