"""Run-time (form c) objects, channels, and sockets (Fig 2.4, §2.2.2.2).

A run-time object is a presentable copy of a model object: "the
activation of a runtime-object does not affect the model object, which
allows the reuse of a same model object in different runtime-objects."
Run-time objects live only inside an engine and vanish with it.

A *channel* is "a logical space in which the runtime-components are
positioned, presented and perceived by the user when they are mapped
to the physical space" (§4.3.3); the engine owns the mapping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.mheg.classes.base import MhObject
from repro.mheg.classes.composite import CompositeClass
from repro.mheg.classes.content import ContentClass, GenericValueClass
from repro.mheg.classes.script import ScriptClass
from repro.mheg.identifiers import ObjectReference
from repro.util.errors import PresentationError


class RtState(enum.Enum):
    """Presentation life cycle of a run-time object."""

    INACTIVE = "inactive"   # created (form c exists), not presented
    RUNNING = "running"
    PAUSED = "paused"
    STOPPED = "stopped"     # was presented, presentation ended
    DELETED = "deleted"     # removed by a 'delete' action


#: transitions allowed by presentation actions; anything else raises
_ALLOWED = {
    ("inactive", "running"), ("stopped", "running"),
    ("running", "paused"), ("paused", "running"),
    ("running", "stopped"), ("paused", "stopped"),
    ("inactive", "deleted"), ("stopped", "deleted"),
    ("running", "deleted"), ("paused", "deleted"),
}


@dataclass
class Channel:
    """A logical presentation space."""

    name: str
    width: int = 640
    height: int = 480
    #: rt references currently presented on this channel, in z-order
    presented: List[str] = field(default_factory=list)

    def enter(self, rt_ref: str) -> None:
        if rt_ref not in self.presented:
            self.presented.append(rt_ref)

    def leave(self, rt_ref: str) -> None:
        if rt_ref in self.presented:
            self.presented.remove(rt_ref)


class RtKind(enum.Enum):
    CONTENT = "rt-content"
    MULTIPLEXED = "rt-multiplexed-content"
    COMPOSITE = "rt-composite"
    SCRIPT = "rt-script"
    VALUE = "rt-value"


def rt_kind_for(model: MhObject) -> RtKind:
    # late import keeps content -> runtime dependency one-directional
    from repro.mheg.classes.content import MultiplexedContentClass

    if isinstance(model, MultiplexedContentClass):
        return RtKind.MULTIPLEXED
    if isinstance(model, GenericValueClass):
        return RtKind.VALUE
    if isinstance(model, ContentClass):
        return RtKind.CONTENT
    if isinstance(model, CompositeClass):
        return RtKind.COMPOSITE
    if isinstance(model, ScriptClass):
        return RtKind.SCRIPT
    raise PresentationError(
        f"{model}: class has no run-time form (only components and "
        "scripts can be instantiated)")


@dataclass
class RtObject:
    """One run-time instance."""

    reference: ObjectReference          # carries the rt_tag
    model: MhObject
    kind: RtKind
    channel: Optional[str] = None
    state: RtState = RtState.INACTIVE
    #: rendition parameters, overridable per instance
    position: Optional[List[int]] = None
    size: Optional[List[int]] = None
    volume: Optional[int] = None
    speed: float = 1.0
    #: interaction
    selectable: bool = False
    #: for rt-values: the mutable copy of the model's value
    value: Any = None
    #: rt-composite: socket name -> rt reference string (or None)
    plugged: Dict[str, Optional[str]] = field(default_factory=dict)
    #: rt-multiplexed-content: stream_id -> enabled ("a stream
    #: identifier can be used to control single streams, for example,
    #: to turn audio on and off in an MPEG system stream", §4.4.1)
    stream_enabled: Dict[int, bool] = field(default_factory=dict)
    #: timing bookkeeping
    started_at: Optional[float] = None
    stopped_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.reference.is_runtime:
            raise PresentationError(
                f"run-time object needs an rt-tagged reference, got "
                f"{self.reference}")

    @property
    def ref_str(self) -> str:
        return str(self.reference)

    def transition(self, new_state: RtState) -> RtState:
        """Apply a state transition, enforcing the life-cycle rules."""
        if self.state is new_state:
            return self.state
        key = (self.state.value, new_state.value)
        if key not in _ALLOWED:
            raise PresentationError(
                f"{self.ref_str}: illegal transition "
                f"{self.state.value} -> {new_state.value}")
        old = self.state
        self.state = new_state
        return old

    @property
    def presentation_status(self) -> str:
        """The standard's running/not-running presentable status."""
        return "running" if self.state is RtState.RUNNING else "not-running"
