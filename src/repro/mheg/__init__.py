"""MHEG (ISO/IEC 13522-1) implementation — the paper's core contribution.

MITS interchanges courseware as MHEG objects: self-contained,
reusable units of multimedia/hypermedia information encoded in ASN.1
for transfer between heterogeneous sites.  This subpackage implements:

* :mod:`repro.mheg.asn1` — a from-scratch ASN.1 BER encoder/decoder
  (the interchange syntax, §2.2.2 / Fig 2.9);
* :mod:`repro.mheg.identifiers` — MHEG object identification;
* :mod:`repro.mheg.classes` — the eight standard classes plus the
  extended class library of Fig 4.5 (content tree, action tree);
* :mod:`repro.mheg.codec` — MHEG object ⇄ ASN.1 (and an SGML-like
  textual notation, the standard's alternative output format);
* :mod:`repro.mheg.runtime` — form (c) run-time objects, channels and
  sockets (Fig 2.4);
* :mod:`repro.mheg.engine` — the MHEG engine: decode, prepare,
  instantiate, interpret links/actions, drive presentations;
* :mod:`repro.mheg.sync` — the four spatial-temporal synchronisation
  mechanisms (atomic, elementary, cyclic, chained) and conditional
  synchronisation (Fig 2.6, §2.2.2.3).
"""

from repro.mheg.identifiers import MhegIdentifier, ObjectReference
from repro.mheg.classes import (
    ClassId,
    MhObject,
    ContentClass,
    VideoContentClass,
    AudioContentClass,
    ImageContentClass,
    TextContentClass,
    GraphicsContentClass,
    NonMediaDataClass,
    MultiplexedContentClass,
    GenericValueClass,
    CompositeClass,
    LinkClass,
    LinkCondition,
    ActionClass,
    ElementaryAction,
    ActionVerb,
    ScriptClass,
    ContainerClass,
    DescriptorClass,
    Socket,
    SocketKind,
)
from repro.mheg.codec import MhegCodec
from repro.mheg.engine import MhegEngine, EngineEvent
from repro.mheg.runtime import RtObject, RtState, Channel

__all__ = [
    "MhegIdentifier",
    "ObjectReference",
    "ClassId",
    "MhObject",
    "ContentClass",
    "VideoContentClass",
    "AudioContentClass",
    "ImageContentClass",
    "TextContentClass",
    "GraphicsContentClass",
    "NonMediaDataClass",
    "MultiplexedContentClass",
    "GenericValueClass",
    "CompositeClass",
    "LinkClass",
    "LinkCondition",
    "ActionClass",
    "ElementaryAction",
    "ActionVerb",
    "ScriptClass",
    "ContainerClass",
    "DescriptorClass",
    "Socket",
    "SocketKind",
    "MhegCodec",
    "MhegEngine",
    "EngineEvent",
    "RtObject",
    "RtState",
    "Channel",
]
