"""Courseware authoring environment (Chapter 4).

Authoring in MITS is layered (Fig 4.2): the author picks a **teaching
architecture**, fills a **document model**, which is realised as
**MHEG objects** referencing **media** — each layer mapped to the next
by the courseware editor.  This subpackage implements all four layers
above the media:

* :mod:`repro.authoring.hyperdoc` — the hypermedia document model
  (Fig 4.3): logical, layout, and navigation structures;
* :mod:`repro.authoring.imd` — the interactive multimedia document
  model (Fig 4.4): sections/subsections/scenes with a rendering
  scenario;
* :mod:`repro.authoring.timeline` — the time-line structure, including
  pre-emptable entries (dynamic interaction, Fig 4.4b);
* :mod:`repro.authoring.behavior` — the behaviour structure: condition
  sets firing action sets (Fig 4.4c);
* :mod:`repro.authoring.teaching` — the six Schank teaching
  architectures as courseware frameworks (§4.2);
* :mod:`repro.authoring.courseware` — the courseware class library of
  Fig 4.6: Interactive / Output / Hyperobject templates;
* :mod:`repro.authoring.editor` — the courseware editor: id
  allocation, layer mapping, compilation to an MHEG container (and to
  a HyTime document for the §2.3 comparison).
"""

from repro.authoring.hyperdoc import (
    HyperDocument, Page, PageItem, NavigationLink,
)
from repro.authoring.imd import (
    InteractiveDocument, Section, Scene, SceneObject,
)
from repro.authoring.timeline import TimelineEntry, Timeline
from repro.authoring.behavior import Behavior, BehaviorRule
from repro.authoring.teaching import (
    TeachingArchitecture, architecture_by_name, list_architectures,
)
from repro.authoring.courseware import (
    Button, Menu, EntryField, OutputObject, Hyperobject,
)
from repro.authoring.editor import CoursewareEditor, CompiledCourseware
from repro.authoring.collaborative import CollaborativeSession, EditOperation

__all__ = [
    "HyperDocument",
    "Page",
    "PageItem",
    "NavigationLink",
    "InteractiveDocument",
    "Section",
    "Scene",
    "SceneObject",
    "TimelineEntry",
    "Timeline",
    "Behavior",
    "BehaviorRule",
    "TeachingArchitecture",
    "architecture_by_name",
    "list_architectures",
    "Button",
    "Menu",
    "EntryField",
    "OutputObject",
    "Hyperobject",
    "CoursewareEditor",
    "CompiledCourseware",
    "CollaborativeSession",
    "EditOperation",
]
