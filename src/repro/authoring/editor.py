"""The courseware editor (§4.5): layer mapping and compilation.

"The courseware editor is responsible for the mapping between layers
in the authoring model."  Concretely:

* a **teaching architecture** produced a document model skeleton
  (:mod:`repro.authoring.teaching`);
* the filled **document model** (hypermedia or interactive multimedia)
  compiles here into **MHEG objects** — content classes referencing
  the **media** layer, composites for pages/scenes/sections, links for
  navigation and behaviour, and one container + descriptor for
  interchange;
* for the §2.3 comparison, a hypermedia document can also be emitted
  as a **HyTime/SGML** document, exercising the publishing-oriented
  path MITS decided against.

The editor's four views (§4.5.3) exist headlessly: logical, layout,
time-line, and behaviour views are data queries on the document.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.authoring.behavior import BehaviorRule
from repro.authoring.hyperdoc import HyperDocument, Page, PageItem
from repro.authoring.imd import InteractiveDocument, Scene, SceneObject, Section
from repro.media.base import MediaObject
from repro.mheg.classes import (
    ActionClass, ActionVerb, AudioContentClass, CompositeClass,
    ContainerClass, DescriptorClass, ElementaryAction,     GraphicsContentClass, ImageContentClass, LinkClass, TextContentClass,
    VideoContentClass,
)
from repro.mheg.classes.behavior import ConditionKind, LinkCondition
from repro.mheg.classes.interchange import ResourceRequirement
from repro.mheg.codec import MhegCodec
from repro.mheg.identifiers import MhegIdentifier, ObjectReference
from repro.util.errors import AuthoringError

_CONTENT_BY_KIND = {
    "text": TextContentClass,
    "image": ImageContentClass,
    "graphics": GraphicsContentClass,
    "audio": AudioContentClass,
    "video": VideoContentClass,
}

_HOOK_BY_KIND = {"text": "STXT", "image": "SIMG", "graphics": "SIMG",
                 "audio": "SPCM", "video": "SMPG"}


@dataclass
class CompiledCourseware:
    """Everything the database and navigator need for one courseware."""

    application: str
    container: ContainerClass
    descriptor: DescriptorClass
    root: ObjectReference
    #: page or scene name -> composite reference
    part_refs: Dict[str, ObjectReference]
    #: page item / scene object name -> content reference
    object_refs: Dict[str, ObjectReference]

    def encode(self) -> bytes:
        """The interchange blob stored as a CoursewareRecord."""
        return MhegCodec().encode(self.container)


class CoursewareEditor:
    """Compiles document models into interchangeable MHEG courseware."""

    def __init__(self, application: str,
                 catalog: Optional[Dict[str, MediaObject]] = None) -> None:
        if not application:
            raise AuthoringError("editor needs an application id")
        self.application = application
        #: content_ref -> produced media object (for attributes)
        self.catalog = catalog or {}
        self._numbers = itertools.count(1)

    def _alloc(self) -> MhegIdentifier:
        return MhegIdentifier(self.application, next(self._numbers))

    # -- shared helpers ----------------------------------------------------

    def _media_info(self, content_ref: str) -> Tuple[str, Optional[float], int]:
        """(coding hook, duration, size) from the catalog, if known."""
        media = self.catalog.get(content_ref)
        if media is None:
            return "", None, 0
        return media.coding_method, media.duration, media.size

    def _compile_item(self, item: Union[PageItem, SceneObject],
                      duration_override: Optional[float] = None) -> Any:
        """A page item or scene object -> a content class instance."""
        if item.kind == "choice":
            content = TextContentClass(
                identifier=self._alloc(), content_hook="STXT",
                data=item.label.encode("utf-8"),
                presentation={"position": list(item.position),
                              "selectable": True, "role": "choice"})
            content.info.name = item.name
            return content
        cls = _CONTENT_BY_KIND[item.kind]
        hook, duration, _size = self._media_info(item.content_ref)
        if not hook:
            hook = _HOOK_BY_KIND[item.kind]
        if duration_override is not None:
            duration = duration_override
        presentation: Dict[str, Any] = {"position": list(item.position)}
        if item.size is not None:
            presentation["size"] = list(item.size)
        content = cls(identifier=self._alloc(), content_hook=hook,
                      content_ref=item.content_ref,
                      original_duration=duration,
                      original_volume=getattr(item, "volume", None),
                      presentation=presentation)
        content.info.name = item.name
        return content

    def _descriptor(self, objects: List[Any],
                    root: ObjectReference) -> DescriptorClass:
        hooks: Dict[str, float] = {}
        total = 0
        for obj in objects:
            content_ref = getattr(obj, "content_ref", None)
            hook = getattr(obj, "content_hook", None)
            if hook:
                peak = 0.0
                if content_ref is not None:
                    media = self.catalog.get(content_ref)
                    if media is not None:
                        total += media.size
                        peak = media.bitrate_bps() or 0.0
                hooks[hook] = max(hooks.get(hook, 0.0), peak)
        descriptor = DescriptorClass(
            identifier=self._alloc(), described=[root],
            requirements=[ResourceRequirement(decoder=h, peak_bitrate_bps=p)
                          for h, p in sorted(hooks.items())],
            readme=f"courseware {self.application}",
            total_size=total)
        return descriptor

    def _behavior_links(self, rules: List[BehaviorRule],
                        refs: Dict[str, ObjectReference]) -> List[Any]:
        """Behaviour rules -> link (+ inline action) objects."""
        event_map = {
            "selected": ("selected", "==", True),
            "stopped": ("presentation", "==", "not-running"),
            "started": ("presentation", "==", "running"),
        }
        verb_map = {"run": ActionVerb.RUN, "stop": ActionVerb.STOP,
                    "pause": ActionVerb.PAUSE, "resume": ActionVerb.RESUME,
                    "set_value": ActionVerb.SET_VALUE,
                    "set_position": ActionVerb.SET_POSITION,
                    "set_volume": ActionVerb.SET_VOLUME}
        objects = []
        for rule in rules:
            if rule.trigger.event == "value":
                trigger = LinkCondition(
                    ConditionKind.TRIGGER, refs[rule.trigger.object_name],
                    "value", "==", rule.trigger.value)
            else:
                attr, op, value = event_map[rule.trigger.event]
                trigger = LinkCondition(
                    ConditionKind.TRIGGER, refs[rule.trigger.object_name],
                    attr, op, value)
            additional = []
            for cond in rule.additional:
                attr, op, value = event_map.get(
                    cond.event, ("value", "==", cond.value))
                additional.append(LinkCondition(
                    ConditionKind.ADDITIONAL, refs[cond.object_name],
                    attr, op,
                    value if cond.event != "value" else cond.value))
            actions = []
            for act in rule.actions:
                params = {}
                if act.value is not None:
                    params["value"] = act.value
                actions.append(ElementaryAction(
                    verb=verb_map[act.verb], target=refs[act.object_name],
                    parameters=params))
            link = LinkClass(
                identifier=self._alloc(), trigger_conditions=[trigger],
                additional_conditions=additional,
                effect=ActionClass(identifier=self._alloc(),
                                   actions=actions),
                once=rule.once)
            objects.append(link)
        return objects

    # -- hypermedia compilation -------------------------------------------------

    def compile_hyperdoc(self, doc: HyperDocument) -> CompiledCourseware:
        """Fig 4.3 model -> MHEG: pages as parallel composites, the
        navigation structure as selection-triggered links."""
        doc.validate()
        objects: List[Any] = []
        part_refs: Dict[str, ObjectReference] = {}
        object_refs: Dict[str, ObjectReference] = {}
        page_item_refs: Dict[str, Dict[str, ObjectReference]] = {}

        for page in doc.pages:
            item_refs: Dict[str, ObjectReference] = {}
            for item in page.items:
                content = self._compile_item(item)
                objects.append(content)
                item_refs[item.name] = ObjectReference(content.identifier)
                object_refs[f"{page.name}/{item.name}"] = item_refs[item.name]
            composite = CompositeClass(
                identifier=self._alloc(),
                components=list(item_refs.values()),
                sync_spec={"kind": "elementary",
                           "entries": [{"target": str(r), "time": 0.0}
                                       for r in item_refs.values()]},
                layout={str(r): {"position": list(page.item(n).position)}
                        for n, r in item_refs.items()})
            composite.info.name = page.name
            objects.append(composite)
            part_refs[page.name] = ObjectReference(composite.identifier)
            page_item_refs[page.name] = item_refs

        nav_links: List[ObjectReference] = []
        for link in doc.links:
            choice_ref = page_item_refs[link.from_page][link.condition]
            effect = ActionClass(identifier=self._alloc(), actions=[
                ElementaryAction(ActionVerb.STOP,
                                 part_refs[link.from_page]),
                ElementaryAction(ActionVerb.RUN, part_refs[link.to_page]),
            ])
            mheg_link = LinkClass(
                identifier=self._alloc(),
                trigger_conditions=[LinkCondition(
                    ConditionKind.TRIGGER, choice_ref, "selected", "==",
                    True)],
                effect=effect)
            mheg_link.info.name = (f"{link.from_page}:{link.condition}"
                                   f"->{link.to_page}")
            objects.append(mheg_link)
            nav_links.append(ObjectReference(mheg_link.identifier))

        root = CompositeClass(
            identifier=self._alloc(),
            components=list(part_refs.values()),
            links=nav_links,
            sync_spec={"kind": "elementary",
                       "entries": [{"target": str(part_refs[doc.start_page]),
                                    "time": 0.0}]})
        root.info.name = doc.name
        objects.append(root)
        root_ref = ObjectReference(root.identifier)
        descriptor = self._descriptor(objects, root_ref)
        container = ContainerClass(identifier=self._alloc(),
                                   objects=objects + [descriptor])
        container.info.name = doc.title
        return CompiledCourseware(
            application=self.application, container=container,
            descriptor=descriptor, root=root_ref,
            part_refs=part_refs, object_refs=object_refs)

    # -- interactive multimedia compilation ---------------------------------------

    def compile_imd(self, doc: InteractiveDocument) -> CompiledCourseware:
        """Fig 4.4 model -> MHEG: scenes as timed composites with
        behaviour links, sections chained serially."""
        doc.validate()
        objects: List[Any] = []
        part_refs: Dict[str, ObjectReference] = {}
        object_refs: Dict[str, ObjectReference] = {}

        def compile_scene(scene: Scene) -> ObjectReference:
            refs: Dict[str, ObjectReference] = {}
            for obj in scene.objects:
                duration = None
                try:
                    duration = scene.timeline.entry(obj.name).duration
                except AuthoringError:
                    pass
                content = self._compile_item(obj, duration_override=duration)
                objects.append(content)
                refs[obj.name] = ObjectReference(content.identifier)
                object_refs[f"{scene.name}/{obj.name}"] = refs[obj.name]

            link_refs: List[ObjectReference] = []
            for link_obj in self._behavior_links(scene.behavior.rules, refs):
                objects.append(link_obj)
                link_refs.append(ObjectReference(link_obj.identifier))
            # dynamic interaction: pre-emption links from the time-line
            for entry in scene.timeline.entries:
                if entry.preempted_by is None:
                    continue
                effect = ActionClass(identifier=self._alloc(), actions=[
                    ElementaryAction(ActionVerb.STOP,
                                     refs[entry.object_name]),
                    ElementaryAction(ActionVerb.RUN,
                                     refs[entry.preempt_next]),
                ])
                link = LinkClass(
                    identifier=self._alloc(),
                    trigger_conditions=[LinkCondition(
                        ConditionKind.TRIGGER, refs[entry.preempted_by],
                        "selected", "==", True)],
                    additional_conditions=[LinkCondition(
                        ConditionKind.ADDITIONAL, refs[entry.object_name],
                        "presentation", "==", "running")],
                    effect=effect)
                link.info.name = (f"{scene.name}:{entry.preempted_by}"
                                  f" preempts {entry.object_name}")
                objects.append(link)
                link_refs.append(ObjectReference(link.identifier))

            entries = [{"target": str(refs[e.object_name]), "time": e.start}
                       for e in scene.timeline.entries]
            # choices are selectable for the whole scene
            for obj in scene.objects:
                if obj.kind == "choice":
                    entries.append({"target": str(refs[obj.name]),
                                    "time": 0.0})
            sync: Dict[str, Any] = {"kind": "elementary", "entries": entries}
            # scene duration: prefer explicit entry durations, fall back
            # to the media catalog's; only bound the scene when every
            # scheduled object's end is known
            ends: List[float] = []
            bounded = True
            for e in scene.timeline.entries:
                duration = e.duration
                if duration is None:
                    obj = scene.object(e.object_name)
                    if obj.content_ref is not None:
                        duration = self._media_info(obj.content_ref)[1]
                if duration is None:
                    bounded = False
                    break
                ends.append(e.start + duration)
            if bounded and ends:
                sync["duration"] = max(ends)
            composite = CompositeClass(
                identifier=self._alloc(), components=list(refs.values()),
                links=link_refs, sync_spec=sync,
                layout={str(r): {"position":
                                 list(scene.object(n).position)}
                        for n, r in refs.items()})
            composite.info.name = scene.name
            objects.append(composite)
            part_refs[scene.name] = ObjectReference(composite.identifier)
            return part_refs[scene.name]

        def compile_section(section: Section) -> ObjectReference:
            child_refs: List[ObjectReference] = []
            if section.subsections:
                child_refs = [compile_section(s) for s in section.subsections]
            else:
                child_refs = [compile_scene(sc) for sc in section.scenes]
            composite = CompositeClass(
                identifier=self._alloc(), components=child_refs,
                sync_spec={"kind": "chained",
                           "targets": [str(r) for r in child_refs]})
            composite.info.name = section.name
            objects.append(composite)
            part_refs[section.name] = ObjectReference(composite.identifier)
            return part_refs[section.name]

        section_refs = [compile_section(s) for s in doc.sections]
        root = CompositeClass(
            identifier=self._alloc(), components=section_refs,
            sync_spec={"kind": "chained",
                       "targets": [str(r) for r in section_refs]})
        root.info.name = doc.name
        objects.append(root)
        root_ref = ObjectReference(root.identifier)
        descriptor = self._descriptor(objects, root_ref)
        container = ContainerClass(identifier=self._alloc(),
                                   objects=objects + [descriptor])
        container.info.name = doc.title
        return CompiledCourseware(
            application=self.application, container=container,
            descriptor=descriptor, root=root_ref,
            part_refs=part_refs, object_refs=object_refs)

    # -- HyTime emission (the §2.3 comparison path) ---------------------------------

    def to_hytime(self, doc: HyperDocument) -> str:
        """Emit a hypermedia document as HyTime/SGML text."""
        doc.validate()
        lines = [f'<doc modules="base location hyperlinks" id="{doc.name}">']
        for page in doc.pages:
            lines.append(f'  <page id="{page.name}">')
            for item in page.items:
                if item.kind == "choice":
                    lines.append(
                        f'    <choice id="{page.name}.{item.name}">'
                        f"{_esc(item.label)}</choice>")
                else:
                    lines.append(
                        f'    <media id="{page.name}.{item.name}" '
                        f'kind="{item.kind}" src="{item.content_ref}" '
                        f'x="{item.position[0]}" y="{item.position[1]}"/>')
            lines.append("  </page>")
        for link in doc.links:
            lines.append(
                f'  <clink anchor="{link.from_page}.{link.condition}" '
                f'target="{link.to_page}"/>')
        lines.append("</doc>")
        return "\n".join(lines)


def _esc(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))
