"""Time-line structure (Fig 4.4b).

The temporal half of a scene's rendering scenario.  Each entry gives a
media object a start time and an optional duration.  An entry may be
marked *pre-emptable by* a choice object: "users can click the button
'choice1' at any time between t1 and t2 to display image1 earlier than
the pre-defined time.  Therefore, the playback time of image1 is
dynamic" — the essence of dynamic interaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.errors import AuthoringError


@dataclass
class TimelineEntry:
    """One object's slot on the scene time-line."""

    object_name: str
    start: float
    duration: Optional[float] = None
    #: name of a choice object that can cut this entry short and
    #: immediately advance to *preempt_next* (dynamic interaction)
    preempted_by: Optional[str] = None
    preempt_next: Optional[str] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise AuthoringError(
                f"{self.object_name}: start time must be >= 0")
        if self.duration is not None and self.duration <= 0:
            raise AuthoringError(
                f"{self.object_name}: duration must be positive")
        if (self.preempted_by is None) != (self.preempt_next is None):
            raise AuthoringError(
                f"{self.object_name}: preemption needs both the choice "
                "object and the successor")

    @property
    def end(self) -> Optional[float]:
        if self.duration is None:
            return None
        return self.start + self.duration


class Timeline:
    """The ordered set of entries for one scene."""

    def __init__(self, entries: Optional[List[TimelineEntry]] = None) -> None:
        self.entries: List[TimelineEntry] = []
        for entry in entries or []:
            self.add(entry)

    def add(self, entry: TimelineEntry) -> TimelineEntry:
        if any(e.object_name == entry.object_name for e in self.entries):
            raise AuthoringError(
                f"object {entry.object_name!r} already on the time-line")
        self.entries.append(entry)
        self.entries.sort(key=lambda e: (e.start, e.object_name))
        return entry

    def entry(self, object_name: str) -> TimelineEntry:
        for e in self.entries:
            if e.object_name == object_name:
                return e
        raise AuthoringError(f"no time-line entry for {object_name!r}")

    def active_at(self, t: float) -> List[str]:
        """Objects scheduled to be presented at time *t* (static view)."""
        out = []
        for e in self.entries:
            if e.start <= t and (e.end is None or t < e.end):
                out.append(e.object_name)
        return out

    def total_duration(self) -> Optional[float]:
        """End of the last bounded entry; None if any entry is unbounded."""
        ends = []
        for e in self.entries:
            if e.end is None:
                return None
            ends.append(e.end)
        return max(ends) if ends else 0.0

    def validate(self, known_objects: set) -> None:
        for e in self.entries:
            if e.object_name not in known_objects:
                raise AuthoringError(
                    f"time-line references unknown object {e.object_name!r}")
            if e.preempted_by is not None:
                if e.preempted_by not in known_objects:
                    raise AuthoringError(
                        f"{e.object_name}: preempting choice "
                        f"{e.preempted_by!r} unknown")
                if e.preempt_next not in known_objects:
                    raise AuthoringError(
                        f"{e.object_name}: preemption successor "
                        f"{e.preempt_next!r} unknown")

    def to_sync_entries(self) -> List[Dict[str, float]]:
        """The elementary-sync entries this time-line compiles to."""
        return [{"name": e.object_name, "time": e.start}
                for e in self.entries]
