"""Behaviour structure (Fig 4.4c).

"A behavior structure specifies special links between the media
objects or between users' action and the media objects.  It is
composed of a set of conditions and a set of actions to be activated
while the conditions are met."  Conditions split into one *trigger*
and optional *additional* conditions, exactly like MHEG links — which
is what they compile to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.util.errors import AuthoringError

#: (object, event) pairs a trigger can watch
TRIGGER_EVENTS = ("selected", "stopped", "started", "value")
#: verbs a behaviour action may apply
ACTION_VERBS = ("run", "stop", "pause", "resume", "set_value",
                "set_position", "set_volume")


@dataclass
class BehaviorCondition:
    """'when <object> <event> [== value]'"""

    object_name: str
    event: str
    value: Any = True

    def __post_init__(self) -> None:
        if self.event not in TRIGGER_EVENTS:
            raise AuthoringError(
                f"unknown behaviour event {self.event!r} "
                f"(expected one of {TRIGGER_EVENTS})")


@dataclass
class BehaviorAction:
    """'<verb> <object> [value]'"""

    verb: str
    object_name: str
    value: Any = None

    def __post_init__(self) -> None:
        if self.verb not in ACTION_VERBS:
            raise AuthoringError(
                f"unknown behaviour verb {self.verb!r} "
                f"(expected one of {ACTION_VERBS})")
        if self.verb.startswith("set_") and self.value is None:
            raise AuthoringError(f"{self.verb} needs a value")


@dataclass
class BehaviorRule:
    """One row of the behaviour table: conditions -> actions.

    Fig 4.4c examples:
    * when user clicked "stop": stop audio1, text1, image1;
    * when text1 stops being displayed: show image1.
    """

    trigger: BehaviorCondition
    actions: List[BehaviorAction]
    additional: List[BehaviorCondition] = field(default_factory=list)
    once: bool = False

    def __post_init__(self) -> None:
        if not self.actions:
            raise AuthoringError("behaviour rule with no actions")

    def objects(self) -> List[str]:
        names = [self.trigger.object_name]
        names.extend(c.object_name for c in self.additional)
        names.extend(a.object_name for a in self.actions)
        return names


class Behavior:
    """The behaviour table of one scene (or one hypermedia page)."""

    def __init__(self, rules: Optional[List[BehaviorRule]] = None) -> None:
        self.rules: List[BehaviorRule] = list(rules or [])

    def add(self, rule: BehaviorRule) -> BehaviorRule:
        self.rules.append(rule)
        return rule

    def when_selected(self, choice: str,
                      *actions: Tuple[str, str],
                      once: bool = False) -> BehaviorRule:
        """Shorthand: when *choice* is clicked, apply (verb, object)s."""
        rule = BehaviorRule(
            trigger=BehaviorCondition(choice, "selected"),
            actions=[BehaviorAction(verb, obj) for verb, obj in actions],
            once=once)
        return self.add(rule)

    def when_stopped(self, watched: str,
                     *actions: Tuple[str, str]) -> BehaviorRule:
        """Shorthand: when *watched* stops, apply (verb, object)s."""
        rule = BehaviorRule(
            trigger=BehaviorCondition(watched, "stopped"),
            actions=[BehaviorAction(verb, obj) for verb, obj in actions])
        return self.add(rule)

    def validate(self, known_objects: set) -> None:
        for rule in self.rules:
            for name in rule.objects():
                if name not in known_objects:
                    raise AuthoringError(
                        f"behaviour rule references unknown object {name!r}")
