"""The courseware class library (Fig 4.6, §4.4.2).

"A courseware class library is built upon the basic MHEG class library
so that courseware authors can easily create objects by instantiating
them directly without any deep understanding of the MHEG concepts.  In
fact, this library acts as a bridge between the courseware authors and
the MHEG coding format."

Three object families:

* **Interactive** — selection styles in the GUI (buttons, menus, entry
  fields) plus the actions they lead to;
* **Output** — anything presented to the user (text, image, audio,
  audiovisual sequences);
* **Hyperobject** — input and output objects plus explicit links
  between them.

Each template expands into MHEG objects via ``to_mheg(alloc)`` where
*alloc* is the editor's identifier allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.mheg.classes import (
    ActionClass, ActionVerb, CompositeClass, ElementaryAction,
    GenericValueClass, ImageContentClass, LinkClass, TextContentClass,
    AudioContentClass, VideoContentClass, GraphicsContentClass,
)
from repro.mheg.classes.behavior import ConditionKind, LinkCondition
from repro.mheg.identifiers import MhegIdentifier, ObjectReference
from repro.util.errors import AuthoringError

#: allocator signature: alloc() -> MhegIdentifier
Alloc = Callable[[], MhegIdentifier]

_CONTENT_BY_KIND = {
    "text": TextContentClass,
    "image": ImageContentClass,
    "graphics": GraphicsContentClass,
    "audio": AudioContentClass,
    "video": VideoContentClass,
}


@dataclass
class Expansion:
    """Result of expanding a template: objects plus the primary ref."""

    objects: List[Any]
    main: ObjectReference


@dataclass
class Button:
    """Interactive: a clickable labelled region."""

    name: str
    label: str
    position: Tuple[int, int] = (0, 0)
    size: Tuple[int, int] = (120, 32)

    def to_mheg(self, alloc: Alloc) -> Expansion:
        content = TextContentClass(
            identifier=alloc(), content_hook="STXT",
            data=self.label.encode("utf-8"),
            presentation={"position": list(self.position),
                          "size": list(self.size), "selectable": True,
                          "role": "button"})
        content.info.name = self.name
        return Expansion(objects=[content],
                         main=ObjectReference(content.identifier))


@dataclass
class Menu:
    """Interactive: a column of buttons."""

    name: str
    entries: List[str]
    position: Tuple[int, int] = (0, 0)
    entry_height: int = 36

    def to_mheg(self, alloc: Alloc) -> Expansion:
        if not self.entries:
            raise AuthoringError(f"menu {self.name}: no entries")
        objects: List[Any] = []
        refs: List[ObjectReference] = []
        x, y = self.position
        for i, entry in enumerate(self.entries):
            button = Button(name=f"{self.name}:{entry}", label=entry,
                            position=(x, y + i * self.entry_height))
            expansion = button.to_mheg(alloc)
            objects.extend(expansion.objects)
            refs.append(expansion.main)
        composite = CompositeClass(
            identifier=alloc(), components=refs,
            sync_spec={"kind": "elementary",
                       "entries": [{"target": str(r), "time": 0.0}
                                   for r in refs]})
        composite.info.name = self.name
        objects.append(composite)
        return Expansion(objects=objects,
                         main=ObjectReference(composite.identifier))


@dataclass
class EntryField:
    """Interactive: a prompt plus a value the user fills in.

    Selection of the field (a click) is the interaction the engine
    models; the entered value arrives via a set_value action from the
    navigator's input handling.
    """

    name: str
    prompt: str
    initial: Any = ""
    position: Tuple[int, int] = (0, 0)

    def to_mheg(self, alloc: Alloc) -> Expansion:
        prompt = TextContentClass(
            identifier=alloc(), content_hook="STXT",
            data=self.prompt.encode("utf-8"),
            presentation={"position": list(self.position),
                          "role": "prompt"})
        prompt.info.name = f"{self.name}:prompt"
        value = GenericValueClass(identifier=alloc(), value=self.initial)
        value.info.name = f"{self.name}:value"
        field_box = TextContentClass(
            identifier=alloc(), content_hook="STXT", data=b"",
            presentation={"position": [self.position[0] + 140,
                                       self.position[1]],
                          "selectable": True, "role": "entry"})
        field_box.info.name = self.name
        refs = [ObjectReference(o.identifier)
                for o in (prompt, value, field_box)]
        composite = CompositeClass(
            identifier=alloc(), components=refs,
            sync_spec={"kind": "elementary",
                       "entries": [{"target": str(r), "time": 0.0}
                                   for r in refs]})
        composite.info.name = f"{self.name}:group"
        return Expansion(objects=[prompt, value, field_box, composite],
                         main=ObjectReference(composite.identifier))


@dataclass
class OutputObject:
    """Output: a presentable media object."""

    name: str
    kind: str                      # text/image/graphics/audio/video
    content_ref: str
    position: Tuple[int, int] = (0, 0)
    size: Optional[Tuple[int, int]] = None
    duration: Optional[float] = None
    volume: Optional[int] = None
    coding_method: str = ""

    def to_mheg(self, alloc: Alloc) -> Expansion:
        cls = _CONTENT_BY_KIND.get(self.kind)
        if cls is None:
            raise AuthoringError(
                f"output object {self.name}: unknown kind {self.kind!r}")
        hook = self.coding_method or {
            "text": "STXT", "image": "SIMG", "graphics": "SIMG",
            "audio": "SPCM", "video": "SMPG"}[self.kind]
        presentation: Dict[str, Any] = {"position": list(self.position)}
        if self.size is not None:
            presentation["size"] = list(self.size)
        content = cls(identifier=alloc(), content_hook=hook,
                      content_ref=self.content_ref,
                      original_duration=self.duration,
                      original_volume=self.volume,
                      presentation=presentation)
        content.info.name = self.name
        return Expansion(objects=[content],
                         main=ObjectReference(content.identifier))


@dataclass
class Hyperobject:
    """Input and output objects plus explicit links between them.

    *links* maps an input object name to the output object name it
    presents when activated.
    """

    name: str
    inputs: List[Button]
    outputs: List[OutputObject]
    links: Dict[str, str]

    def to_mheg(self, alloc: Alloc) -> Expansion:
        objects: List[Any] = []
        main_refs: Dict[str, ObjectReference] = {}
        for template in [*self.inputs, *self.outputs]:
            expansion = template.to_mheg(alloc)
            objects.extend(expansion.objects)
            main_refs[template.name] = expansion.main
        link_refs: List[ObjectReference] = []
        for input_name, output_name in self.links.items():
            if input_name not in main_refs or output_name not in main_refs:
                raise AuthoringError(
                    f"hyperobject {self.name}: link {input_name!r} -> "
                    f"{output_name!r} names unknown objects")
            link = LinkClass(
                identifier=alloc(),
                trigger_conditions=[LinkCondition(
                    ConditionKind.TRIGGER, main_refs[input_name],
                    "selected", "==", True)],
                effect=ActionClass(identifier=alloc(), actions=[
                    ElementaryAction(ActionVerb.RUN,
                                     main_refs[output_name])]))
            link.info.name = f"{self.name}:{input_name}->{output_name}"
            objects.append(link)
            link_refs.append(ObjectReference(link.identifier))
        component_refs = [main_refs[t.name]
                          for t in [*self.inputs, *self.outputs]]
        input_names = {t.name for t in self.inputs}
        composite = CompositeClass(
            identifier=alloc(), components=component_refs,
            links=link_refs,
            sync_spec={"kind": "elementary",
                       "entries": [{"target": str(main_refs[t.name]),
                                    "time": 0.0}
                                   for t in self.inputs]})
        composite.info.name = self.name
        objects.append(composite)
        return Expansion(objects=objects,
                         main=ObjectReference(composite.identifier))
