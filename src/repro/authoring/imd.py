"""Interactive multimedia document model (Fig 4.4, §4.3.3).

Dynamic interaction: the document has both a pre-defined rendering
scenario (time-line + behaviour) and an interactive interface.  The
logical structure divides the document into sections, subsections, and
finally *scenes* — "the grouping of a certain number of objects
presented in the same space for a certain period of time".  Sections
play back serially by default, as the thesis prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.authoring.behavior import Behavior
from repro.authoring.timeline import Timeline
from repro.util.errors import AuthoringError

SCENE_OBJECT_KINDS = ("text", "image", "graphics", "audio", "video",
                      "choice")


@dataclass
class SceneObject:
    """A media or choice object inside a scene, with layout data."""

    name: str
    kind: str
    content_ref: Optional[str] = None
    label: str = ""
    position: Tuple[int, int] = (0, 0)
    size: Optional[Tuple[int, int]] = None
    volume: Optional[int] = None
    channel: str = "main"

    def __post_init__(self) -> None:
        if not self.name:
            raise AuthoringError("scene object needs a name")
        if self.kind not in SCENE_OBJECT_KINDS:
            raise AuthoringError(
                f"{self.name}: unknown object kind {self.kind!r}")
        if self.kind == "choice":
            if not self.label:
                raise AuthoringError(f"{self.name}: a choice needs a label")
        elif self.content_ref is None:
            raise AuthoringError(
                f"{self.name}: media objects need a content_ref")


@dataclass
class Scene:
    """One scene: objects + rendering scenario (time-line + behaviour)."""

    name: str
    objects: List[SceneObject] = field(default_factory=list)
    timeline: Timeline = field(default_factory=Timeline)
    behavior: Behavior = field(default_factory=Behavior)

    def object(self, name: str) -> SceneObject:
        for obj in self.objects:
            if obj.name == name:
                return obj
        raise AuthoringError(f"scene {self.name}: no object {name!r}")

    def object_names(self) -> set:
        return {o.name for o in self.objects}

    def validate(self) -> None:
        names = [o.name for o in self.objects]
        if len(set(names)) != len(names):
            raise AuthoringError(f"scene {self.name}: duplicate object names")
        known = self.object_names()
        self.timeline.validate(known)
        self.behavior.validate(known)
        # every non-choice object should appear on the time-line; choices
        # are presented for the whole scene
        scheduled = {e.object_name for e in self.timeline.entries}
        for obj in self.objects:
            if obj.kind != "choice" and obj.name not in scheduled:
                raise AuthoringError(
                    f"scene {self.name}: object {obj.name!r} never "
                    "scheduled on the time-line")


@dataclass
class Section:
    """A section (or subsection) of the logical structure.

    Either nested subsections or scenes — mixing both levels in one
    node is not part of the model.
    """

    name: str
    title: str = ""
    subsections: List["Section"] = field(default_factory=list)
    scenes: List[Scene] = field(default_factory=list)

    def validate(self) -> None:
        if self.subsections and self.scenes:
            raise AuthoringError(
                f"section {self.name}: cannot hold both subsections and "
                "scenes directly")
        if not self.subsections and not self.scenes:
            raise AuthoringError(f"section {self.name}: empty section")
        for sub in self.subsections:
            sub.validate()
        for scene in self.scenes:
            scene.validate()

    def all_scenes(self) -> List[Scene]:
        out: List[Scene] = []
        for sub in self.subsections:
            out.extend(sub.all_scenes())
        out.extend(self.scenes)
        return out


class InteractiveDocument:
    """The assembled interactive multimedia document."""

    def __init__(self, name: str, title: str = "") -> None:
        if not name:
            raise AuthoringError("document needs a name")
        self.name = name
        self.title = title or name
        self.sections: List[Section] = []

    def add_section(self, section: Section) -> Section:
        if any(s.name == section.name for s in self.sections):
            raise AuthoringError(f"duplicate section name {section.name!r}")
        self.sections.append(section)
        return section

    def all_scenes(self) -> List[Scene]:
        out: List[Scene] = []
        for section in self.sections:
            out.extend(section.all_scenes())
        return out

    def scene(self, name: str) -> Scene:
        for scene in self.all_scenes():
            if scene.name == name:
                return scene
        raise AuthoringError(f"no scene {name!r}")

    def validate(self) -> None:
        if not self.sections:
            raise AuthoringError(f"document {self.name}: no sections")
        for section in self.sections:
            section.validate()
        names = [s.name for s in self.all_scenes()]
        if len(set(names)) != len(names):
            raise AuthoringError(
                f"document {self.name}: duplicate scene names")

    def logical_view(self) -> Dict:
        """The hierarchical logical view (§4.5.3), as plain data."""
        def section_view(section: Section) -> Dict:
            return {
                "name": section.name,
                "title": section.title,
                "subsections": [section_view(s) for s in section.subsections],
                "scenes": [{"name": sc.name,
                            "objects": [o.name for o in sc.objects]}
                           for sc in section.scenes],
            }
        return {"name": self.name, "title": self.title,
                "sections": [section_view(s) for s in self.sections]}
