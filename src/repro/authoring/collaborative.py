"""Collaborative multimedia document editing (§6.2 future work).

"Multimedia collaborative document editing can be used by both
courseware authors and students for joint authoring of an interactive
multimedia document."  This realises it as a **shared editing
session** over a document model:

* a session owns one :class:`~repro.authoring.imd.InteractiveDocument`
  (or hypermedia document) and an append-only operation log;
* participants check out *section locks* (pessimistic, section-granular
  — the natural unit of the logical structure) and submit operations
  against sections they hold;
* every accepted operation is broadcast to the other participants'
  callbacks, so each site's replica converges by applying the same log
  in order;
* a late joiner replays the log to catch up.

Section locking, rather than merging concurrent edits, is the right
fidelity for 1996-era collaborative authoring and keeps the document
always valid: the session re-validates after each operation and
rejects those that would corrupt the structure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.authoring.behavior import BehaviorRule
from repro.authoring.imd import InteractiveDocument, Scene, SceneObject, Section
from repro.authoring.timeline import TimelineEntry
from repro.util.errors import AuthoringError


@dataclass
class EditOperation:
    """One accepted edit, as recorded in the session log."""

    seq: int
    author: str
    section: str
    kind: str             # add-scene / add-object / schedule / add-rule
    payload: Dict[str, Any]


class CollaborativeSession:
    """A shared editing session over one interactive document."""

    def __init__(self, document: InteractiveDocument) -> None:
        self.document = document
        self.log: List[EditOperation] = []
        self._seq = itertools.count(1)
        #: section name -> author holding its lock
        self._locks: Dict[str, str] = {}
        self._participants: Dict[str, Callable[[EditOperation], None]] = {}

    # -- membership ----------------------------------------------------------

    def join(self, author: str,
             on_operation: Optional[Callable[[EditOperation], None]] = None
             ) -> List[EditOperation]:
        """Join the session; returns the log so the joiner catches up."""
        if author in self._participants:
            raise AuthoringError(f"{author!r} already joined")
        self._participants[author] = on_operation or (lambda op: None)
        return list(self.log)

    def leave(self, author: str) -> None:
        self._participants.pop(author, None)
        for section, holder in list(self._locks.items()):
            if holder == author:
                del self._locks[section]

    def participants(self) -> List[str]:
        return sorted(self._participants)

    # -- locking ----------------------------------------------------------------

    def lock_section(self, author: str, section: str) -> None:
        self._require_member(author)
        self._require_section(section)
        holder = self._locks.get(section)
        if holder is not None and holder != author:
            raise AuthoringError(
                f"section {section!r} is locked by {holder!r}")
        self._locks[section] = author

    def unlock_section(self, author: str, section: str) -> None:
        if self._locks.get(section) == author:
            del self._locks[section]

    def lock_holder(self, section: str) -> Optional[str]:
        return self._locks.get(section)

    # -- edits ----------------------------------------------------------------------

    def add_section(self, author: str, name: str, title: str = "") -> None:
        """Creating a new section needs no lock (it conflicts with
        nothing); the creator receives its lock implicitly."""
        self._require_member(author)
        self.document.add_section(Section(name=name, title=title,
                                          scenes=[]))
        self._locks[name] = author
        self._record(author, name, "add-section", {"title": title})

    def add_scene(self, author: str, section: str, scene_name: str) -> None:
        target = self._locked_section(author, section)
        if any(s.name == scene_name for s in self.document.all_scenes()):
            raise AuthoringError(f"duplicate scene name {scene_name!r}")
        target.scenes.append(Scene(name=scene_name))
        self._record(author, section, "add-scene", {"scene": scene_name})

    def add_object(self, author: str, section: str, scene_name: str,
                   obj: SceneObject) -> None:
        scene = self._scene_in(self._locked_section(author, section),
                               scene_name)
        if any(o.name == obj.name for o in scene.objects):
            raise AuthoringError(
                f"scene {scene_name!r} already has object {obj.name!r}")
        scene.objects.append(obj)
        self._record(author, section, "add-object", {
            "scene": scene_name, "name": obj.name, "kind": obj.kind,
            "content_ref": obj.content_ref, "label": obj.label,
            "position": list(obj.position)})

    def schedule(self, author: str, section: str, scene_name: str,
                 entry: TimelineEntry) -> None:
        scene = self._scene_in(self._locked_section(author, section),
                               scene_name)
        known = scene.object_names()
        if entry.object_name not in known:
            raise AuthoringError(
                f"cannot schedule unknown object {entry.object_name!r}")
        scene.timeline.add(entry)
        self._record(author, section, "schedule", {
            "scene": scene_name, "object": entry.object_name,
            "start": entry.start, "duration": entry.duration})

    def add_rule(self, author: str, section: str, scene_name: str,
                 rule: BehaviorRule) -> None:
        scene = self._scene_in(self._locked_section(author, section),
                               scene_name)
        scene.behavior.validate(scene.object_names())  # existing rules
        for name in rule.objects():
            if name not in scene.object_names():
                raise AuthoringError(
                    f"rule references unknown object {name!r}")
        scene.behavior.add(rule)
        self._record(author, section, "add-rule", {
            "scene": scene_name,
            "trigger": rule.trigger.object_name,
            "event": rule.trigger.event,
            "actions": [(a.verb, a.object_name) for a in rule.actions]})

    # -- internals -------------------------------------------------------------------

    def _record(self, author: str, section: str, kind: str,
                payload: Dict[str, Any]) -> EditOperation:
        op = EditOperation(seq=next(self._seq), author=author,
                           section=section, kind=kind, payload=payload)
        self.log.append(op)
        for name, callback in self._participants.items():
            if name != author:
                callback(op)
        return op

    def _require_member(self, author: str) -> None:
        if author not in self._participants:
            raise AuthoringError(f"{author!r} has not joined the session")

    def _require_section(self, section: str) -> Section:
        for s in self.document.sections:
            if s.name == section:
                return s
        raise AuthoringError(f"no section {section!r}")

    def _locked_section(self, author: str, section: str) -> Section:
        self._require_member(author)
        target = self._require_section(section)
        if self._locks.get(section) != author:
            raise AuthoringError(
                f"{author!r} does not hold the lock on {section!r}")
        return target

    @staticmethod
    def _scene_in(section: Section, scene_name: str) -> Scene:
        for scene in section.scenes:
            if scene.name == scene_name:
                return scene
        raise AuthoringError(
            f"no scene {scene_name!r} in section {section.name!r}")
