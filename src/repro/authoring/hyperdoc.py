"""Hypermedia document model (Fig 4.3, §4.3.2).

A hypermedia document is modelled with three structures:

* **logical** — the document is composed of pages; each page contains
  media objects, including "choice" objects (buttons or clickable
  words) added for interactive behaviour;
* **layout** — spatial characteristics of the media objects on a page;
* **navigation** — hyperlinks between nodes, with the conditions
  (usually a choice activation) that fire them.

Static interaction only: playback is driven entirely by the user's
choices, no time-line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.errors import AuthoringError

#: media kinds a page item may carry; "choice" is the interaction object
ITEM_KINDS = ("text", "image", "graphics", "audio", "video", "choice")


@dataclass
class PageItem:
    """One media object placed on a page (logical + layout data)."""

    name: str
    kind: str
    #: content database reference for real media; label text for choices
    content_ref: Optional[str] = None
    label: str = ""
    position: Tuple[int, int] = (0, 0)
    size: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise AuthoringError("page item needs a name")
        if self.kind not in ITEM_KINDS:
            raise AuthoringError(
                f"{self.name}: unknown item kind {self.kind!r}")
        if self.kind == "choice":
            if not self.label:
                raise AuthoringError(f"{self.name}: a choice needs a label")
        elif self.content_ref is None:
            raise AuthoringError(
                f"{self.name}: media items need a content_ref")


@dataclass
class Page:
    """A page of the logical structure."""

    name: str
    title: str = ""
    items: List[PageItem] = field(default_factory=list)

    def item(self, name: str) -> PageItem:
        for item in self.items:
            if item.name == name:
                return item
        raise AuthoringError(f"page {self.name}: no item {name!r}")

    def choices(self) -> List[PageItem]:
        return [i for i in self.items if i.kind == "choice"]

    def validate(self) -> None:
        names = [i.name for i in self.items]
        if len(set(names)) != len(names):
            raise AuthoringError(f"page {self.name}: duplicate item names")


@dataclass
class NavigationLink:
    """One edge of the navigation structure.

    The link from *from_page* fires when *condition* (a choice item on
    that page) is activated, presenting *to_page*.
    """

    from_page: str
    condition: str     # choice item name on from_page
    to_page: str


class HyperDocument:
    """The assembled hypermedia document."""

    def __init__(self, name: str, title: str = "") -> None:
        if not name:
            raise AuthoringError("document needs a name")
        self.name = name
        self.title = title or name
        self.pages: List[Page] = []
        self.links: List[NavigationLink] = []
        self.start_page: Optional[str] = None

    def add_page(self, page: Page) -> Page:
        if any(p.name == page.name for p in self.pages):
            raise AuthoringError(f"duplicate page name {page.name!r}")
        page.validate()
        self.pages.append(page)
        if self.start_page is None:
            self.start_page = page.name
        return page

    def page(self, name: str) -> Page:
        for page in self.pages:
            if page.name == name:
                return page
        raise AuthoringError(f"no page {name!r}")

    def add_link(self, link: NavigationLink) -> NavigationLink:
        self.links.append(link)
        return link

    def links_from(self, page_name: str) -> List[NavigationLink]:
        return [l for l in self.links if l.from_page == page_name]

    def navigation_subset(self, page_name: str) -> Dict[str, List[str]]:
        """The navigation-view subset (§4.5.3): all nodes linked from a
        given node, keyed by the firing choice."""
        out: Dict[str, List[str]] = {}
        for link in self.links_from(page_name):
            out.setdefault(link.condition, []).append(link.to_page)
        return out

    def reachable_pages(self) -> List[str]:
        """Pages reachable from the start page via navigation links."""
        if self.start_page is None:
            return []
        seen = {self.start_page}
        frontier = [self.start_page]
        while frontier:
            page = frontier.pop()
            for link in self.links_from(page):
                if link.to_page not in seen:
                    seen.add(link.to_page)
                    frontier.append(link.to_page)
        return sorted(seen)

    def validate(self) -> None:
        if not self.pages:
            raise AuthoringError(f"document {self.name}: no pages")
        page_names = {p.name for p in self.pages}
        for link in self.links:
            if link.from_page not in page_names:
                raise AuthoringError(
                    f"link from unknown page {link.from_page!r}")
            if link.to_page not in page_names:
                raise AuthoringError(
                    f"link to unknown page {link.to_page!r}")
            page = self.page(link.from_page)
            choice_names = {c.name for c in page.choices()}
            if link.condition not in choice_names:
                raise AuthoringError(
                    f"link condition {link.condition!r} is not a choice on "
                    f"page {link.from_page!r}")
        unreachable = page_names - set(self.reachable_pages())
        if unreachable:
            raise AuthoringError(
                f"document {self.name}: unreachable pages "
                f"{sorted(unreachable)}")
