"""Teaching architectures (§4.2) as courseware frameworks (§4.5.1).

"Several models for teaching architecture are to be provided to the
authors in the forms of frameworks...  The chosen of a specific
framework will result in a corresponding document model to be
selected.  The courseware authors need only to fill the media objects
into the frameworks and specify the scenario."

Each architecture prescribes a document model and generates a skeleton
the author fills in.  The six are Schank's: simulation-based learning
by doing, incidental learning, learning by reflection, case-based
teaching, learning by exploring, and goal-directed learning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Union

from repro.authoring.hyperdoc import HyperDocument, Page
from repro.authoring.imd import InteractiveDocument, Scene, Section
from repro.util.errors import AuthoringError

Document = Union[HyperDocument, InteractiveDocument]


@dataclass(frozen=True)
class TeachingArchitecture:
    """One framework: metadata plus a skeleton builder."""

    name: str
    summary: str
    document_model: str          # "hypermedia" or "interactive"
    #: the named parts an author must fill (sections/pages and roles)
    skeleton_parts: Tuple[str, ...]

    def build_skeleton(self, course_name: str) -> Document:
        builder = _BUILDERS[self.name]
        return builder(course_name, self)


def _interactive_skeleton(course_name: str, arch: TeachingArchitecture,
                          placeholder_kind: str = "text") -> InteractiveDocument:
    doc = InteractiveDocument(course_name,
                              title=f"{course_name} ({arch.name})")
    for part in arch.skeleton_parts:
        scene = Scene(name=f"{part}-scene")
        section = Section(name=part, title=part.replace("-", " ").title(),
                          scenes=[scene])
        doc.add_section(section)
    return doc


def _hypermedia_skeleton(course_name: str,
                         arch: TeachingArchitecture) -> HyperDocument:
    doc = HyperDocument(course_name, title=f"{course_name} ({arch.name})")
    for part in arch.skeleton_parts:
        doc.add_page(Page(name=part, title=part.replace("-", " ").title()))
    # wire a default forward path so the skeleton validates once filled
    return doc


_BUILDERS: Dict[str, Callable[[str, TeachingArchitecture], Document]] = {}

ARCHITECTURES: List[TeachingArchitecture] = []


def _register(arch: TeachingArchitecture,
              builder: Callable[[str, TeachingArchitecture], Document]
              ) -> TeachingArchitecture:
    ARCHITECTURES.append(arch)
    _BUILDERS[arch.name] = builder
    return arch


SIMULATION_BASED = _register(TeachingArchitecture(
    name="simulation-based",
    summary="Learning by doing in a simulator, with a teaching program, "
            "language understanding, and expert story-telling.",
    document_model="interactive",
    skeleton_parts=("briefing", "simulator", "expert-stories", "debrief"),
), _interactive_skeleton)

INCIDENTAL = _register(TeachingArchitecture(
    name="incidental",
    summary="Learn without noticing while doing something fun "
            "(e.g. touring with video clips at each destination).",
    document_model="interactive",
    skeleton_parts=("tour-intro", "destinations", "souvenirs"),
), _interactive_skeleton)

REFLECTION = _register(TeachingArchitecture(
    name="reflection",
    summary="The student is her own best teacher; the course listens "
            "and helps her see shortcomings in thinking.",
    document_model="interactive",
    skeleton_parts=("prompt", "workspace", "reflection-questions"),
), _interactive_skeleton)

CASE_BASED = _register(TeachingArchitecture(
    name="case-based",
    summary="Experts are repositories of cases; tell students exactly "
            "what they need to know when they need to know it.",
    document_model="interactive",
    skeleton_parts=("problem", "cases", "expert-commentary", "practice"),
), _interactive_skeleton)

EXPLORATION = _register(TeachingArchitecture(
    name="exploration",
    summary="Students follow their own path with multiple experts "
            "available to answer questions.",
    document_model="hypermedia",
    skeleton_parts=("entry", "topics", "experts", "summary"),
), _hypermedia_skeleton)

GOAL_DIRECTED = _register(TeachingArchitecture(
    name="goal-directed",
    summary="A goal the student adopts willingly leverages the power "
            "of the teaching architecture.",
    document_model="interactive",
    skeleton_parts=("goal", "mission-steps", "resources", "achievement"),
), _interactive_skeleton)


def list_architectures() -> List[TeachingArchitecture]:
    return list(ARCHITECTURES)


def architecture_by_name(name: str) -> TeachingArchitecture:
    for arch in ARCHITECTURES:
        if arch.name == name:
            return arch
    raise AuthoringError(
        f"unknown teaching architecture {name!r}; available: "
        f"{[a.name for a in ARCHITECTURES]}")
