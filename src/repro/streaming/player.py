"""Client-side playout model with stall accounting.

The player buffers arriving frames and starts playback after a
*pre-roll* delay.  A frame whose presentation deadline passes before
it arrives causes a **stall**: the playout clock freezes until the
frame shows up, and the stall's duration is recorded.  Lost frames
(AAL5 CRC failures upstream) are skipped after a grace period and
counted separately.

The metrics — startup delay, stall count, total rebuffer time, frame
loss — are exactly what the bandwidth-sweep experiment (EX.3) reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.atm.network import DeliveryInfo
from repro.atm.simulator import Simulator
from repro.streaming.sender import unpack_frame

#: raw per-frame delay samples kept (full distribution in metrics)
DELAY_SAMPLE_CAP = 4096


@dataclass
class PlayoutStats:
    frames_expected: int = 0
    frames_played: int = 0
    frames_skipped: int = 0
    frames_concealed: int = 0
    degradations: int = 0
    startup_delay: float = 0.0
    stalls: int = 0
    rebuffer_time: float = 0.0
    #: pre-roll fill: frames buffered at the instant playback started
    preroll_frames: int = 0
    #: most recent per-frame network delay samples (bounded)
    delays: Deque[float] = field(
        default_factory=lambda: deque(maxlen=DELAY_SAMPLE_CAP))
    #: net-new frames accepted into the playout buffer
    frames_received: int = 0
    #: late arrivals dropped because playout already moved past them
    frames_stale: int = 0
    #: arrivals for an index already buffered (counted, overwritten)
    frames_duplicate: int = 0

    @property
    def stall_free(self) -> bool:
        return self.stalls == 0 and self.frames_skipped == 0

    def conserves_cursor(self, next_frame: int) -> bool:
        """The playout cursor only moves by playing, concealing, or
        skipping exactly one frame at a time."""
        return next_frame == (self.frames_played + self.frames_skipped
                              + self.frames_concealed)

    def conserves_buffer(self, buffered: int) -> bool:
        """Every accepted frame is eventually played or still buffered."""
        return self.frames_received == self.frames_played + buffered


class VideoPlayer:
    """Consumes a frame stream; drives a playout clock with stalls."""

    def __init__(self, sim: Simulator, *, preroll: float = 0.5,
                 skip_grace: float = 2.0,
                 frames_expected: int = 0, name: str = "player",
                 conceal_limit: int = 0,
                 degrade_after_stalls: int = 0,
                 on_degrade: Optional[Callable[[], None]] = None) -> None:
        self.sim = sim
        self.preroll = preroll
        self.skip_grace = skip_grace
        self.name = name
        #: graceful degradation: up to this many *consecutive* missing
        #: frames are concealed (previous frame held) instead of
        #: stalling — late-frame concealment
        self.conceal_limit = conceal_limit
        #: after this many stalls (and each further multiple), ask the
        #: sender for a bitrate downgrade via ``on_degrade``; 0 = off
        self.degrade_after_stalls = degrade_after_stalls
        self.on_degrade = on_degrade
        self._next_degrade_at = degrade_after_stalls
        self._conceal_run = 0
        self.stats = PlayoutStats(frames_expected=frames_expected)
        metrics = sim.metrics
        self._recorder = sim.recorder
        self._m_lateness = metrics.histogram(
            "player", "frame_lateness_seconds", player=name)
        self._m_startup = metrics.histogram(
            "player", "startup_delay_seconds", player=name)
        self._m_buffer = metrics.gauge("player", "buffer_frames", player=name)
        self._m_preroll = metrics.gauge("player", "preroll_fill_frames",
                                        player=name)
        self._m_stalls = metrics.counter("player", "stalls", player=name)
        self._m_skipped = metrics.counter("player", "frames_skipped",
                                          player=name)
        self._m_concealed = metrics.counter("player", "frames_concealed",
                                            player=name)
        self._m_degrade = metrics.counter("player", "degradations",
                                          player=name)
        self._buffer: Dict[int, float] = {}   # index -> timestamp
        self._arrival: Dict[int, float] = {}
        self._timestamps: Dict[int, float] = {}
        self._next_frame = 0
        self._play_started: Optional[float] = None
        self._first_arrival: Optional[float] = None
        self._stall_started: Optional[float] = None
        self._clock_offset: Optional[float] = None
        self._last_index: Optional[int] = None
        self.finished = False
        self.acct = sim.ledger.account("stream", name)
        sim.register_entity("player", self)

    # -- network entry point ----------------------------------------------

    def on_pdu(self, payload: bytes, info: DeliveryInfo) -> None:
        index, timestamp, last, _frame = unpack_frame(payload)
        if self._play_started is not None and index < self._next_frame:
            # stale: the playout point moved past this frame (skipped
            # or concealed while it was delayed) — never buffer it
            self.stats.frames_stale += 1
            if last:
                self._last_index = index
            return
        if index in self._buffer:
            self.stats.frames_duplicate += 1
        else:
            self.stats.frames_received += 1
            self.acct.delivered(units=1, nbytes=len(_frame))
        self._buffer[index] = timestamp
        self._arrival[index] = self.sim.now
        self._timestamps[index] = timestamp
        self._m_buffer.set(len(self._buffer))
        if info is not None:
            self.stats.delays.append(info.delay)
        if self._clock_offset is not None:
            # lateness vs the playout deadline; early frames clamp to 0
            lateness = self.sim.now - (self._clock_offset + timestamp)
            self._m_lateness.observe(max(0.0, lateness))
            if lateness > 0.0:
                self._recorder.record(
                    "streaming", "late_frame", severity="warning",
                    player=self.name, frame=index, lateness=lateness)
        if last:
            self._last_index = index
        if self._first_arrival is None:
            self._first_arrival = self.sim.now
            self.sim.schedule(self.preroll, self._start_playback)
        elif self._stall_started is not None and index == self._next_frame:
            self._end_stall()

    def _start_playback(self) -> None:
        self._play_started = self.sim.now
        self.stats.startup_delay = self.sim.now - self._first_arrival \
            + 0.0
        self._m_startup.observe(self.stats.startup_delay)
        # playout clock: frame with timestamp T plays at offset + T
        self._clock_offset = self.sim.now
        self.stats.preroll_frames = len(self._buffer)
        self._m_preroll.set(len(self._buffer))
        self._advance()

    # -- playout loop --------------------------------------------------------

    def _advance(self) -> None:
        if self.finished:
            return
        index = self._next_frame
        if self._last_index is not None and index > self._last_index:
            self.finished = True
            return
        if self.stats.frames_expected and index >= self.stats.frames_expected:
            # the tail of the stream was lost outright: don't wait for
            # a last-frame marker that will never arrive
            self.finished = True
            return
        if index in self._buffer:
            due = self._clock_offset + self._buffer[index]
            if self.sim.now >= due:
                self._play_frame(index)
            else:
                self.sim.schedule(due - self.sim.now, self._advance)
        else:
            # frame missing at its deadline: conceal (hold the previous
            # frame) within the consecutive budget, otherwise stall
            if self._stall_started is None:
                due = self._clock_offset + self._estimate_timestamp(index)
                if self.sim.now >= due:
                    if self._conceal_run < self.conceal_limit:
                        self._conceal_frame(index)
                    else:
                        self._begin_stall()
                else:
                    self.sim.schedule(due - self.sim.now, self._advance)
            # else: already stalling; arrival or skip timer resumes us

    def _conceal_frame(self, index: int) -> None:
        self._conceal_run += 1
        self.stats.frames_concealed += 1
        self._m_concealed.inc()
        self._recorder.record("streaming", "frame_concealed",
                              severity="warning", player=self.name,
                              frame=index)
        self._next_frame = index + 1
        self._advance()

    def _estimate_timestamp(self, index: int) -> float:
        if index in self._timestamps:
            return self._timestamps[index]
        if self._timestamps:
            # uniform frame spacing: extrapolate from what we have
            known = sorted(self._timestamps)
            if len(known) >= 2:
                spacing = ((self._timestamps[known[-1]]
                            - self._timestamps[known[0]])
                           / max(1, known[-1] - known[0]))
                return self._timestamps[known[0]] \
                    + (index - known[0]) * spacing
            return self._timestamps[known[0]]
        return 0.0

    def _begin_stall(self) -> None:
        self._stall_started = self.sim.now
        self.stats.stalls += 1
        self._m_stalls.inc()
        self._recorder.record("streaming", "stall", severity="warning",
                              player=self.name, frame=self._next_frame)
        if (self.degrade_after_stalls
                and self.stats.stalls >= self._next_degrade_at):
            self._next_degrade_at += self.degrade_after_stalls
            self.stats.degradations += 1
            self._m_degrade.inc()
            self._recorder.record(
                "streaming", "degradation_requested", severity="warning",
                player=self.name, stalls=self.stats.stalls)
            if self.on_degrade is not None:
                self.on_degrade()
        self.sim.schedule(self.skip_grace, self._skip_if_still_missing,
                          self._next_frame)

    def _end_stall(self) -> None:
        assert self._stall_started is not None
        stall = self.sim.now - self._stall_started
        self.stats.rebuffer_time += stall
        # freeze the playout clock for the stall duration
        self._clock_offset += stall
        self._stall_started = None
        self._advance()

    def _skip_if_still_missing(self, index: int) -> None:
        if self.finished or self._stall_started is None:
            return
        if self._next_frame == index and index not in self._buffer:
            stall = self.sim.now - self._stall_started
            self.stats.rebuffer_time += stall
            self._clock_offset += stall
            self._stall_started = None
            self.stats.frames_skipped += 1
            self._m_skipped.inc()
            self._recorder.record(
                "streaming", "frame_skipped", severity="warning",
                player=self.name, frame=index, stall=stall)
            self._next_frame += 1
            self._advance()

    def _play_frame(self, index: int) -> None:
        self._conceal_run = 0
        self.stats.frames_played += 1
        del self._buffer[index]
        self._m_buffer.set(len(self._buffer))
        self._next_frame = index + 1
        self._advance()
