"""Server-side video streaming.

Frames of an encoded SMPG sequence are sent over a virtual circuit as
individual AAL5 PDUs, each prefixed with a small header carrying the
frame index and presentation timestamp.  The sender paces transmission
by the frame timestamps (optionally shifted earlier by *lead* to fill
the client's pre-roll buffer faster).
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.atm.network import VirtualCircuit
from repro.atm.simulator import Simulator
from repro.media.video import VideoStream
from repro.obs.tracing import NULL_SPAN, TraceContext
from repro.util.errors import NetworkError

_FRAME_HEADER = struct.Struct(">IdB")  # index, timestamp, last flag


def pack_frame(index: int, timestamp: float, last: bool,
               payload: bytes) -> bytes:
    return _FRAME_HEADER.pack(index, timestamp, 1 if last else 0) + payload


def unpack_frame(data: bytes):
    index, timestamp, last = _FRAME_HEADER.unpack_from(data)
    return index, timestamp, bool(last), data[_FRAME_HEADER.size:]


class VideoStreamSender:
    """Paces one encoded video sequence onto a VC."""

    def __init__(self, sim: Simulator, vc: VirtualCircuit, data: bytes, *,
                 lead: float = 0.0,
                 ctx: Optional[TraceContext] = None) -> None:
        self.sim = sim
        self.vc = vc
        self.stream = VideoStream(data)
        self.lead = lead
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_lost = 0
        self.started_at: Optional[float] = None
        self.finished = False
        #: graceful degradation: fraction of each frame's bytes kept.
        #: Downgrading mid-stream models switching to a coarser SMPG
        #: quantiser when the receiver reports sustained stalls.
        self.quality = 1.0
        #: trace context of the request that asked for this stream;
        #: the whole playout becomes one span under it
        self.ctx = ctx
        self._span = NULL_SPAN
        label = f"vc{vc.vc_id}"
        self._m_frames = sim.metrics.counter("streaming", "frames_sent",
                                             stream=label)
        self._m_bytes = sim.metrics.counter("streaming", "bytes_sent",
                                            stream=label)
        self._m_degrade = sim.metrics.counter("streaming", "degradations",
                                              stream=label)
        self.acct = sim.ledger.account(
            "stream", label, note=f"{vc.src.name}->{vc.dst.name}")

    @property
    def mean_bitrate_bps(self) -> float:
        if self.stream.duration <= 0:
            return 0.0
        total = sum(info.size for info in self.stream.frame_infos())
        return total * 8 / self.stream.duration

    def start(self) -> None:
        """Schedule every frame's transmission at its (lead-shifted)
        timestamp relative to now."""
        self.started_at = self.sim.now
        self._span = self.sim.tracer.span(
            "streaming.send", parent=self.ctx,
            stream=f"vc{self.vc.vc_id}", frames=self.stream.frames)
        for i, (timestamp, frame) in enumerate(self.stream):
            send_at = max(0.0, timestamp - self.lead)
            last = i == self.stream.frames - 1
            self.sim.schedule(send_at, self._send_frame, i, timestamp,
                              last, frame)

    def downgrade(self, factor: float = 0.5) -> None:
        """Shrink remaining frames to ``quality * factor`` of their
        encoded size (floored at 10%) — the receiver asked for relief."""
        self.quality = max(0.1, self.quality * factor)
        self._m_degrade.inc()
        self.sim.recorder.record(
            "streaming", "bitrate_downgrade", severity="warning",
            stream=f"vc{self.vc.vc_id}", quality=round(self.quality, 3))

    def _send_frame(self, index: int, timestamp: float, last: bool,
                    frame: bytes) -> None:
        if self.quality < 1.0:
            frame = frame[:max(1, int(len(frame) * self.quality))]
        try:
            self.vc.send(pack_frame(index, timestamp, last, frame))
        except NetworkError:
            # VC torn down under us: frames scheduled before the fault
            # must not unwind the event loop — drop and count them
            self.frames_lost += 1
            if last:
                self.finished = True
                self._span.set(bytes=self.bytes_sent, lost=self.frames_lost)
                self._span.end()
            return
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        self._m_frames.inc()
        self._m_bytes.inc(len(frame))
        self.acct.sent(units=1, nbytes=len(frame))
        if last:
            self.finished = True
            self._span.set(bytes=self.bytes_sent)
            self._span.end()
