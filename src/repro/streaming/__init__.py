"""Continuous-media streaming over ATM virtual circuits.

The thesis's broadband argument (§1.3.3, §3.3) is that "for obtaining
good quality of service in real time presentation of dynamic media
such as video and audio, we suggest broadband network to be chosen".
This subpackage makes that measurable:

* :mod:`repro.streaming.sender` — a server-side streamer that paces
  encoded video frames onto a VC at their presentation timestamps
  (I frames bigger than P frames, so traffic is genuinely VBR);
* :mod:`repro.streaming.player` — a client-side playout model with a
  startup (pre-roll) buffer that counts stalls and rebuffer time when
  frames miss their deadline.

Benchmark EX.3 sweeps link bandwidth with these and reproduces the
stall-cliff below the video bitrate.
"""

from repro.streaming.sender import VideoStreamSender
from repro.streaming.player import PlayoutStats, VideoPlayer

__all__ = ["VideoStreamSender", "VideoPlayer", "PlayoutStats"]
