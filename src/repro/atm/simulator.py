"""Discrete-event simulation kernel.

A single :class:`Simulator` instance owns simulated time for one MITS
deployment.  Components schedule callbacks at absolute or relative
times; the kernel pops them in time order (FIFO among equal
timestamps) and runs them.  Long-running behaviours can be written as
generator :class:`Process` objects that ``yield`` delays.

The kernel is deliberately minimal — no real-time pacing, no threads —
so experiments are deterministic and fast: a full courseware download
over a simulated 155 Mb/s OC-3 link is just a few thousand events.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs.accounting import Ledger
from repro.obs.events import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import callsite_name
from repro.obs.tracing import Tracer

#: bucket ladder for host-side callback cost (wall-clock seconds)
_CALLBACK_BUCKETS = tuple(1e-7 * 4 ** i for i in range(10))


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.  Ordered by (time, seq) for determinism."""

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap as a no-op)."""
        self.cancelled = True


class Simulator:
    """Event-queue simulator with deterministic tie-breaking."""

    def __init__(self, *, metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 recorder: Optional[FlightRecorder] = None,
                 ledger: Optional[Ledger] = None,
                 profile_callbacks: bool = False) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_run = 0
        #: shared observability: every component attached to this
        #: simulator records into the same registry/tracer/recorder
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else \
            Tracer(clock=lambda: self._now)
        self.recorder = recorder if recorder is not None else \
            FlightRecorder(clock=lambda: self._now)
        #: per-entity accounting; disabled by default so the hot-path
        #: hooks hit the shared NULL_ACCOUNT (see obs/accounting)
        self.ledger = ledger if ledger is not None else Ledger(enabled=False)
        #: stateful endpoints (connections, players, ...) register here
        #: so the ConservationAuditor can find them without a topology
        self.entities: dict[str, list] = {}
        #: when True, each callback's wall-clock cost is histogrammed
        #: by callsite (the callback's qualified name) — costs a
        #: perf_counter pair per event, so off by default
        self.profile_callbacks = profile_callbacks
        #: a TelemetrySampler attached via its start(); schedule() wakes
        #: it from dormancy when new work arrives (see obs/timeseries)
        self._sampler: Optional[Any] = None
        #: per-cell-equivalent events credited by the *currently running*
        #: callback via charge_cells() — lets batched handlers (one event
        #: for a whole cell train) keep events_run and profiler call
        #: counts comparable with the legacy one-event-per-cell path
        self.event_extra = 0
        #: heap seq of the event currently executing — the tie-break
        #: identity batched continuations inherit via reschedule_at()
        self.current_seq: Optional[int] = None
        self._m_events = self.metrics.counter("simulator", "events_run")
        self._m_scheduled = self.metrics.counter("simulator", "events_scheduled")
        self._m_depth = self.metrics.gauge("simulator", "queue_depth")

    def register_entity(self, kind: str, obj: Any) -> None:
        """Expose *obj* (a connection, player, ...) to the auditor."""
        self.entities.setdefault(kind, []).append(obj)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_run

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback(*args)* to run *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._push(self._now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback* at absolute simulated *time*.

        The event fires at exactly *time* — not ``now + (time - now)``,
        whose round-trip through float subtraction can land one ULP
        off.  The batched fast path relies on this: arithmetic cell
        times and event timestamps must be the same floats for the
        differential harness to see byte-identical snapshots.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})")
        return self._push(time, callback, args)

    def reschedule_at(self, time: float, seq: Optional[int],
                      callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback* at *time*, inheriting tie-break *seq*.

        The batched fast path re-schedules the un-final remainder of a
        cell train as a continuation event.  Among equal timestamps
        the heap breaks ties by seq, and the legacy per-cell events a
        continuation stands for were sequenced when the train was
        first scheduled — so the continuation must compete with that
        original seq, not a fresh one, or a rival train scheduled
        after it (higher seq) but due at the same instant would
        overtake cells it should queue behind.  ``seq=None`` falls
        back to a fresh sequence number.
        """
        if seq is None:
            return self.schedule_at(time, callback, *args)
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})")
        ev = Event(time, seq, callback, args)
        heapq.heappush(self._queue, ev)
        self._m_scheduled.inc()
        self._m_depth.set(len(self._queue))
        sampler = self._sampler
        if sampler is not None and sampler.dormant:
            sampler.wake()
        return ev

    def _push(self, time: float, callback: Callable[..., Any], args: tuple) -> Event:
        ev = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, ev)
        self._m_scheduled.inc()
        self._m_depth.set(len(self._queue))
        sampler = self._sampler
        if sampler is not None and sampler.dormant:
            sampler.wake()
        return ev

    def charge_cells(self, extra: int) -> None:
        """Credit *extra* per-cell-equivalent events to the running event.

        Batched handlers process a whole cell train in one callback;
        charging the equivalent legacy event count keeps ``events_run``
        (and everything derived from it: bench vectors, the perf floor,
        profiler call counts) comparable across fidelity modes.
        """
        if extra <= 0:
            return
        self._events_run += extra
        self._m_events.inc(extra)
        self.event_extra += extra

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events in order.

        Stops when the queue drains, when the next event lies beyond
        *until*, or after *max_events* events.  Returns the simulated
        time reached.  When stopping at *until*, the clock is advanced
        to exactly *until* so back-to-back ``run`` calls compose — but
        only when no runnable event remains at or before *until*: if
        the *max_events* budget stops us mid-timeline, the clock stays
        at the last executed event so a subsequent ``run`` resumes
        without ever moving time backwards.
        """
        count = 0
        while self._queue:
            ev = self._queue[0]
            if ev.cancelled:
                heapq.heappop(self._queue)
                self._m_depth.set(len(self._queue))
                continue
            if until is not None and ev.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = ev.time
            self.current_seq = ev.seq
            self._execute(ev)
            count += 1
            if max_events is not None and count >= max_events:
                break
        if until is not None and self._now < until:
            nxt = self._next_event_time()
            if nxt is None or nxt > until:
                self._now = until
        return self._now

    def _execute(self, ev: Event) -> None:
        if self.profile_callbacks:
            t0 = _time.perf_counter()
            ev.callback(*ev.args)
            cost = _time.perf_counter() - t0
            callsite = callsite_name(ev.callback)
            self.metrics.histogram(
                "simulator", "callback_seconds",
                buckets=_CALLBACK_BUCKETS, callsite=callsite).observe(cost)
        else:
            ev.callback(*ev.args)
        self._events_run += 1
        self._m_events.inc()
        self._m_depth.set(len(self._queue))

    def _next_event_time(self) -> Optional[float]:
        """Timestamp of the next runnable event (cancelled ones are
        lazily discarded), or None when the queue is effectively empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        self._m_depth.set(len(self._queue))
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run exactly one event.  Returns False if the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._execute(ev)
            return True
        return False

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    def spawn(self, generator: Generator[float, None, None]) -> "Process":
        """Start a generator-based process; it runs its first segment now."""
        proc = Process(self, generator)
        proc._advance()
        return proc


class Process:
    """Generator-driven process.

    The generator yields the number of simulated seconds to sleep
    before its next segment runs.  Returning (StopIteration) ends the
    process.  ``kill()`` stops it between segments.
    """

    def __init__(self, sim: Simulator, generator: Generator[float, None, None]) -> None:
        self._sim = sim
        self._gen = generator
        self._alive = True
        self._pending_event: Optional[Event] = None

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Terminate the process; its pending wakeup (if any) is cancelled."""
        self._alive = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None

    def _advance(self) -> None:
        if not self._alive:
            return
        try:
            delay = next(self._gen)
        except StopIteration:
            self._alive = False
            self._pending_event = None
            return
        self._pending_event = self._sim.schedule(delay, self._advance)


def run_all(sim: Simulator, processes: Iterable[Generator[float, None, None]],
            until: Optional[float] = None) -> float:
    """Convenience: spawn all *processes* and run the simulator."""
    for gen in processes:
        sim.spawn(gen)
    return sim.run(until=until)
