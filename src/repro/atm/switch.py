"""Output-buffered ATM switches.

A switch owns a set of named ports.  Each port has an outgoing
:class:`~repro.atm.link.Link`; incoming cells are delivered by the
upstream link together with the port they arrived on.  Forwarding is a
VP/VC table lookup keyed on ``(in_port, vpi, vci)``; the entry gives
the output port and the relabelled VPI/VCI — the classic ATM label
swap.  Cells with no table entry are counted and discarded, as real
switches do.

Ingress policing (UPC) can be installed per connection on the port
where a host attaches; non-conforming cells are tagged or dropped
before they consume trunk capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.atm.cell import Cell
from repro.atm.link import Link
from repro.atm.qos import ServiceCategory, UsageParameterControl
from repro.atm.simulator import Simulator


@dataclass
class VcTableEntry:
    out_port: str
    out_vpi: int
    out_vci: int
    category: ServiceCategory = ServiceCategory.UBR
    upc: Optional[UsageParameterControl] = None


@dataclass
class SwitchStats:
    switched: int = 0
    unroutable: int = 0
    policed_dropped: int = 0
    policed_tagged: int = 0
    crash_dropped: int = 0
    #: every cell handed to receive(), before any fate is decided
    received: int = 0
    #: switched cells that completed the fabric traversal and reached
    #: an output buffer (switched - emitted cells are in the fabric)
    emitted: int = 0

    def conserves(self, in_fabric: int) -> bool:
        """Every received cell is dropped, emitted, or in the fabric."""
        return self.received == (self.crash_dropped + self.unroutable
                                 + self.policed_dropped + self.emitted
                                 + in_fabric)


class Switch:
    """A label-swapping, output-buffered cell switch."""

    def __init__(self, sim: Simulator, name: str, switching_delay: float = 4e-6) -> None:
        self.sim = sim
        self.name = name
        self.switching_delay = switching_delay
        self._out_links: Dict[str, Link] = {}
        self._table: Dict[Tuple[str, int, int], VcTableEntry] = {}
        #: fault injection: while crashed the fabric eats every cell
        #: (the VC table survives the crash — restart is silent)
        self._crashed = False
        self.stats = SwitchStats()
        #: cells scheduled through the fabric but not yet emitted
        self._in_fabric = 0
        metrics = sim.metrics
        self._m_received = metrics.counter("switch", "cells_received",
                                           switch=name)
        self._m_switched = metrics.counter("switch", "cells_switched",
                                           switch=name)
        self._m_unroutable = metrics.counter("switch", "cells_unroutable",
                                             switch=name)
        self._m_policed_dropped = metrics.counter("switch", "policed_dropped",
                                                  switch=name)
        self._m_policed_tagged = metrics.counter("switch", "policed_tagged",
                                                 switch=name)
        self._m_crash_dropped = metrics.counter("switch", "crash_dropped",
                                                switch=name)

    def attach_output(self, port: str, link: Link) -> None:
        """Wire the outgoing link for *port* (port names = neighbour node)."""
        if port in self._out_links:
            raise ValueError(f"switch {self.name}: port {port} already wired")
        self._out_links[port] = link

    def output_link(self, port: str) -> Link:
        return self._out_links[port]

    @property
    def ports(self) -> Tuple[str, ...]:
        return tuple(self._out_links)

    def install_route(self, in_port: str, in_vpi: int, in_vci: int,
                      entry: VcTableEntry) -> None:
        key = (in_port, in_vpi, in_vci)
        if key in self._table:
            raise ValueError(
                f"switch {self.name}: VC ({in_port},{in_vpi},{in_vci}) already in use"
            )
        if entry.out_port not in self._out_links:
            raise ValueError(
                f"switch {self.name}: unknown output port {entry.out_port!r}"
            )
        self._table[key] = entry

    def remove_route(self, in_port: str, in_vpi: int, in_vci: int) -> None:
        self._table.pop((in_port, in_vpi, in_vci), None)

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def in_fabric(self) -> int:
        """Cells currently traversing the fabric (switched, not yet
        at an output buffer)."""
        return self._in_fabric

    def set_crashed(self, crashed: bool) -> None:
        """Crash (or restart) the switch — driven by fault injection.

        A crashed switch drops every arriving cell; its VC table is
        kept, so a restart restores forwarding without re-signalling.
        """
        self._crashed = crashed

    def receive(self, cell: Cell, in_port: str) -> None:
        """Cell arrival from the upstream link on *in_port*."""
        self.stats.received += 1
        self._m_received.inc()
        if self._crashed:
            self.stats.crash_dropped += 1
            self._m_crash_dropped.inc()
            return
        entry = self._table.get((in_port, cell.header.vpi, cell.header.vci))
        if entry is None:
            self.stats.unroutable += 1
            self._m_unroutable.inc()
            self.sim.recorder.record(
                "atm", "unroutable_cell", severity="warning",
                switch=self.name, in_port=in_port,
                vpi=cell.header.vpi, vci=cell.header.vci)
            return
        if entry.upc is not None:
            verdict = entry.upc.police(self.sim.now)
            if verdict == "drop":
                self.stats.policed_dropped += 1
                self._m_policed_dropped.inc()
                return
            if verdict == "tag":
                self.stats.policed_tagged += 1
                self._m_policed_tagged.inc()
                hdr = type(cell.header)(
                    vpi=cell.header.vpi, vci=cell.header.vci,
                    pti=cell.header.pti, clp=1, gfc=cell.header.gfc)
                cell = Cell(header=hdr, payload=cell.payload,
                            created_at=cell.created_at, seqno=cell.seqno,
                            hops=cell.hops)
        out = cell.with_vc(entry.out_vpi, entry.out_vci)
        out.hops = cell.hops + 1
        self.stats.switched += 1
        self._m_switched.inc()
        # model the fabric traversal as a fixed delay before the cell
        # reaches the output buffer
        self._in_fabric += 1
        self.sim.schedule(self.switching_delay, self._emit, out, entry)

    def _emit(self, cell: Cell, entry: VcTableEntry) -> None:
        self._in_fabric -= 1
        self.stats.emitted += 1
        self._out_links[entry.out_port].enqueue(cell, entry.category)
