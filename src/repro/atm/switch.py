"""Output-buffered ATM switches.

A switch owns a set of named ports.  Each port has an outgoing
:class:`~repro.atm.link.Link`; incoming cells are delivered by the
upstream link together with the port they arrived on.  Forwarding is a
VP/VC table lookup keyed on ``(in_port, vpi, vci)``; the entry gives
the output port and the relabelled VPI/VCI — the classic ATM label
swap.  Cells with no table entry are counted and discarded, as real
switches do.

Ingress policing (UPC) can be installed per connection on the port
where a host attaches; non-conforming cells are tagged or dropped
before they consume trunk capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.atm.cell import Cell, CellHeader
from repro.atm.link import Link
from repro.atm.qos import ServiceCategory, UsageParameterControl
from repro.atm.simulator import Simulator
from repro.atm.train import CellTrain


@dataclass
class VcTableEntry:
    out_port: str
    out_vpi: int
    out_vci: int
    category: ServiceCategory = ServiceCategory.UBR
    upc: Optional[UsageParameterControl] = None


@dataclass
class SwitchStats:
    switched: int = 0
    unroutable: int = 0
    policed_dropped: int = 0
    policed_tagged: int = 0
    crash_dropped: int = 0
    #: every cell handed to receive(), before any fate is decided
    received: int = 0
    #: switched cells that completed the fabric traversal and reached
    #: an output buffer (switched - emitted cells are in the fabric)
    emitted: int = 0

    def conserves(self, in_fabric: int) -> bool:
        """Every received cell is dropped, emitted, or in the fabric."""
        return self.received == (self.crash_dropped + self.unroutable
                                 + self.policed_dropped + self.emitted
                                 + in_fabric)


class Switch:
    """A label-swapping, output-buffered cell switch."""

    def __init__(self, sim: Simulator, name: str, switching_delay: float = 4e-6) -> None:
        self.sim = sim
        self.name = name
        self.switching_delay = switching_delay
        self._out_links: Dict[str, Link] = {}
        self._table: Dict[Tuple[str, int, int], VcTableEntry] = {}
        #: the same table flattened per input port and keyed on the
        #: packed label ``(vpi << 16) | vci`` — one small-int dict hit
        #: on the forwarding fast path instead of a 3-tuple hash
        self._routes: Dict[str, Dict[int, VcTableEntry]] = {}
        #: fault injection: while crashed the fabric eats every cell
        #: (the VC table survives the crash — restart is silent)
        self._crashed = False
        self.stats = SwitchStats()
        #: cells scheduled through the fabric but not yet emitted
        self._in_fabric = 0
        metrics = sim.metrics
        self._m_received = metrics.counter("switch", "cells_received",
                                           switch=name)
        self._m_switched = metrics.counter("switch", "cells_switched",
                                           switch=name)
        self._m_unroutable = metrics.counter("switch", "cells_unroutable",
                                             switch=name)
        self._m_policed_dropped = metrics.counter("switch", "policed_dropped",
                                                  switch=name)
        self._m_policed_tagged = metrics.counter("switch", "policed_tagged",
                                                 switch=name)
        self._m_crash_dropped = metrics.counter("switch", "crash_dropped",
                                                switch=name)

    def attach_output(self, port: str, link: Link) -> None:
        """Wire the outgoing link for *port* (port names = neighbour node)."""
        if port in self._out_links:
            raise ValueError(f"switch {self.name}: port {port} already wired")
        self._out_links[port] = link

    def output_link(self, port: str) -> Link:
        return self._out_links[port]

    @property
    def ports(self) -> Tuple[str, ...]:
        return tuple(self._out_links)

    def install_route(self, in_port: str, in_vpi: int, in_vci: int,
                      entry: VcTableEntry) -> None:
        key = (in_port, in_vpi, in_vci)
        if key in self._table:
            raise ValueError(
                f"switch {self.name}: VC ({in_port},{in_vpi},{in_vci}) already in use"
            )
        if entry.out_port not in self._out_links:
            raise ValueError(
                f"switch {self.name}: unknown output port {entry.out_port!r}"
            )
        self._table[key] = entry
        self._routes.setdefault(in_port, {})[(in_vpi << 16) | in_vci] = entry

    def remove_route(self, in_port: str, in_vpi: int, in_vci: int) -> None:
        self._table.pop((in_port, in_vpi, in_vci), None)
        port_routes = self._routes.get(in_port)
        if port_routes is not None:
            port_routes.pop((in_vpi << 16) | in_vci, None)

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def in_fabric(self) -> int:
        """Cells currently traversing the fabric (switched, not yet
        at an output buffer)."""
        return self._in_fabric

    def set_crashed(self, crashed: bool) -> None:
        """Crash (or restart) the switch — driven by fault injection.

        A crashed switch drops every arriving cell; its VC table is
        kept, so a restart restores forwarding without re-signalling.
        """
        self._crashed = crashed

    def receive(self, cell: Cell, in_port: str) -> None:
        """Cell arrival from the upstream link on *in_port*."""
        self.stats.received += 1
        self._m_received.inc()
        if self._crashed:
            self.stats.crash_dropped += 1
            self._m_crash_dropped.inc()
            return
        hdr = cell.header
        port_routes = self._routes.get(in_port)
        entry = port_routes.get((hdr.vpi << 16) | hdr.vci) \
            if port_routes is not None else None
        if entry is None:
            self.stats.unroutable += 1
            self._m_unroutable.inc()
            self.sim.recorder.record(
                "atm", "unroutable_cell", severity="warning",
                switch=self.name, in_port=in_port,
                vpi=cell.header.vpi, vci=cell.header.vci)
            return
        if entry.upc is not None:
            verdict = entry.upc.police(self.sim.now)
            if verdict == "drop":
                self.stats.policed_dropped += 1
                self._m_policed_dropped.inc()
                return
            if verdict == "tag":
                self.stats.policed_tagged += 1
                self._m_policed_tagged.inc()
                hdr = type(cell.header)(
                    vpi=cell.header.vpi, vci=cell.header.vci,
                    pti=cell.header.pti, clp=1, gfc=cell.header.gfc)
                cell = Cell(header=hdr, payload=cell.payload,
                            created_at=cell.created_at, seqno=cell.seqno,
                            hops=cell.hops)
        out = cell.with_vc(entry.out_vpi, entry.out_vci)
        out.hops = cell.hops + 1
        self.stats.switched += 1
        self._m_switched.inc()
        # model the fabric traversal as a fixed delay before the cell
        # reaches the output buffer
        self._in_fabric += 1
        self.sim.schedule(self.switching_delay, self._emit, out, entry)

    def _emit(self, cell: Cell, entry: VcTableEntry) -> None:
        self._in_fabric -= 1
        self.stats.emitted += 1
        self._out_links[entry.out_port].enqueue(cell, entry.category)

    # -- cell-train fast path --------------------------------------------

    def receive_train(self, train: CellTrain, in_port: str) -> None:
        """Train arrival from the upstream link on *in_port*.

        Processes the whole burst in one callback: one route lookup,
        per-cell policing with exact arrival times, in-place label
        swap (the batched path owns its cells), and an inline handoff
        to the output link with per-cell fabric-exit times.
        """
        cells = train.cells
        n = len(cells)
        sim = self.sim
        self.stats.received += n
        self._m_received.inc(n)
        if self._crashed:
            self.stats.crash_dropped += n
            self._m_crash_dropped.inc(n)
            sim.charge_cells(n)
            return
        hdr = cells[0].header
        port_routes = self._routes.get(in_port)
        entry = port_routes.get((hdr.vpi << 16) | hdr.vci) \
            if port_routes is not None else None
        if entry is None:
            self.stats.unroutable += n
            self._m_unroutable.inc(n)
            record = sim.recorder.record
            for c in cells:
                record("atm", "unroutable_cell", severity="warning",
                       switch=self.name, in_port=in_port,
                       vpi=c.header.vpi, vci=c.header.vci)
            sim.charge_cells(n)
            return
        times = train.times
        if entry.upc is not None:
            police = entry.upc.police
            for i in range(n):
                verdict = police(times[i])
                if verdict != "pass":
                    self._police_split(train, entry, i, verdict)
                    return
        # all conforming: relabel in place.  Trains are built by the
        # AAL5 sender, so body cells share one header shape and only
        # the last differs (AAL-indicate bit); two shared header
        # objects replace n per-cell copies.
        last = cells[-1]
        first_hdr = cells[0].header
        body_hdr = CellHeader._unchecked(entry.out_vpi, entry.out_vci,
                                         first_hdr.pti, first_hdr.clp,
                                         first_hdr.gfc)
        last_hdr = CellHeader._unchecked(entry.out_vpi, entry.out_vci,
                                         last.header.pti, last.header.clp,
                                         last.header.gfc)
        for c in cells:
            c.header = body_hdr
            c.hops += 1
        last.header = last_hdr
        self.stats.switched += n
        self._m_switched.inc(n)
        # fabric traversal folded into arithmetic: exit times become
        # the departures offered to the output link, emission inline
        self.stats.emitted += n
        delay = self.switching_delay
        for i in range(n):
            times[i] = times[i] + delay
        # the legacy switch enqueued onto the output link inline from
        # each _emit, so the forwarded train stops billing enqueues
        train.charged = False
        self._out_links[entry.out_port].enqueue_train(train)
        sim.charge_cells(2 * n)

    def _police_split(self, train: CellTrain, entry: VcTableEntry,
                      idx: int, verdict: str) -> None:
        """Slow path: at least one cell of the train failed policing.

        Replays the remaining cells through exact per-cell semantics —
        cells before *idx* already passed, *idx* carries *verdict*, the
        rest are policed here in arrival order.  Survivors traverse the
        fabric as individual ``_emit`` events, so a gapped frame reaches
        the receiver exactly as the legacy path would deliver it.
        """
        cells = train.cells
        times = train.times
        n = len(cells)
        sim = self.sim
        now = sim.now
        delay = self.switching_delay
        police = entry.upc.police
        for i in range(n):
            cell = cells[i]
            if i < idx:
                v = "pass"
            elif i == idx:
                v = verdict
            else:
                v = police(times[i])
            if v == "drop":
                self.stats.policed_dropped += 1
                self._m_policed_dropped.inc()
                continue
            if v == "tag":
                self.stats.policed_tagged += 1
                self._m_policed_tagged.inc()
                h = cell.header
                cell.header = CellHeader._unchecked(h.vpi, h.vci, h.pti,
                                                    1, h.gfc)
            out = cell.with_vc(entry.out_vpi, entry.out_vci)
            out.hops = cell.hops + 1
            self.stats.switched += 1
            self._m_switched.inc()
            self._in_fabric += 1
            t = times[i] + delay
            sim.schedule_at(t if t > now else now, self._emit, out, entry)
        sim.charge_cells(n)
