"""Discrete-event ATM network substrate.

The 1996 MITS prototype ran over OCRInet, a physical ATM research
network in the Ottawa region.  This subpackage replaces that hardware
with a cell-level discrete-event simulator:

* :mod:`repro.atm.simulator` — the event-queue kernel every other
  component schedules on;
* :mod:`repro.atm.cell` — 53-byte ATM cells with a real UNI header
  layout and HEC;
* :mod:`repro.atm.aal5` — AAL5 segmentation and reassembly (CPCS-PDU
  framing, CRC-32, pad, last-cell indication via PTI);
* :mod:`repro.atm.qos` — traffic contracts, GCRA policing and the four
  service categories (CBR, rt-VBR, nrt-VBR, UBR);
* :mod:`repro.atm.link` / :mod:`repro.atm.switch` — transmission lines
  with serialization + propagation delay and output-buffered switches
  with per-category priority queueing;
* :mod:`repro.atm.network` — hosts, VC setup/routing and the
  end-to-end cell relay;
* :mod:`repro.atm.train` / :mod:`repro.atm.flow` — the batched and
  flow-level fast paths (``fidelity="batched"`` / ``"hybrid"``; see
  DESIGN.md §"Fast path & hybrid fidelity");
* :mod:`repro.atm.topology` — canned topologies, including an
  OCRInet-like metro WAN.
"""

from repro.atm.simulator import Simulator, Event, Process
from repro.atm.cell import Cell, CellHeader, CELL_SIZE, PAYLOAD_SIZE, HEADER_SIZE
from repro.atm.aal5 import Aal5Sender, Aal5Receiver, segment_pdu, CpcsTrailer
from repro.atm.qos import (
    ServiceCategory,
    TrafficContract,
    Gcra,
    LeakyBucketShaper,
)
from repro.atm.link import Link
from repro.atm.switch import Switch, VcTableEntry
from repro.atm.train import CellTrain
from repro.atm.flow import FlowLane
from repro.atm.network import AtmNetwork, Host, VirtualCircuit

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Cell",
    "CellHeader",
    "CELL_SIZE",
    "PAYLOAD_SIZE",
    "HEADER_SIZE",
    "Aal5Sender",
    "Aal5Receiver",
    "segment_pdu",
    "CpcsTrailer",
    "ServiceCategory",
    "TrafficContract",
    "Gcra",
    "LeakyBucketShaper",
    "Link",
    "Switch",
    "VcTableEntry",
    "CellTrain",
    "FlowLane",
    "AtmNetwork",
    "Host",
    "VirtualCircuit",
]
