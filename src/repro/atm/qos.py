"""ATM traffic management: contracts, policing, shaping, service classes.

The thesis argues broadband networks are what make real-time
multimedia courseware delivery feasible (§1.3.3, §3.3).  The levers
that argument rests on are ATM's QoS machinery, reproduced here:

* a :class:`TrafficContract` (PCR/SCR/MBS/CDVT) per virtual circuit;
* :class:`Gcra` — the Generic Cell Rate Algorithm (virtual scheduling
  formulation, ITU-T I.371) used at the network ingress to police
  contracts: non-conforming cells are tagged (CLP=1) or dropped;
* :class:`LeakyBucketShaper` — sender-side pacing so a well-behaved
  source conforms to its own contract;
* :class:`ServiceCategory` — CBR / rt-VBR / nrt-VBR / ABR / UBR, which
  switches map to queueing priority.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ServiceCategory(enum.IntEnum):
    """ATM Forum service categories, ordered by switch priority."""

    CBR = 0      # constant bit rate: circuit emulation, live AV
    RT_VBR = 1   # real-time variable bit rate: compressed video
    NRT_VBR = 2  # non-real-time VBR: courseware object transfer
    ABR = 3      # available bit rate: bulk transfer with feedback
    UBR = 4      # best effort


@dataclass(frozen=True)
class TrafficContract:
    """Per-VC traffic descriptor.

    Rates are in cells per second; *cdvt* and burst tolerance in
    seconds.  ``pcr`` is required; ``scr``/``mbs`` only apply to VBR.
    """

    category: ServiceCategory
    pcr: float                      # peak cell rate (cells/s)
    scr: Optional[float] = None     # sustainable cell rate (cells/s)
    mbs: int = 1                    # maximum burst size (cells) at PCR
    cdvt: float = 250e-6            # cell delay variation tolerance (s)

    def __post_init__(self) -> None:
        if self.pcr <= 0:
            raise ValueError("PCR must be positive")
        if self.scr is not None:
            if self.scr <= 0 or self.scr > self.pcr:
                raise ValueError("SCR must be in (0, PCR]")
            if self.mbs < 1:
                raise ValueError("MBS must be >= 1 when SCR is given")

    @property
    def burst_tolerance(self) -> float:
        """BT = (MBS - 1) * (1/SCR - 1/PCR); 0 for single-rate contracts."""
        if self.scr is None:
            return 0.0
        return (self.mbs - 1) * (1.0 / self.scr - 1.0 / self.pcr)

    def effective_bandwidth_bps(self) -> float:
        """Rough bandwidth reservation used for connection admission:
        PCR for CBR/rt-VBR, SCR for nrt-VBR, zero for ABR/UBR."""
        cell_bits = 53 * 8
        if self.category in (ServiceCategory.CBR, ServiceCategory.RT_VBR):
            return self.pcr * cell_bits
        if self.category is ServiceCategory.NRT_VBR and self.scr is not None:
            return self.scr * cell_bits
        return 0.0


class Gcra:
    """Generic Cell Rate Algorithm, virtual-scheduling formulation.

    ``Gcra(increment=1/rate, limit=tolerance)``: a cell arriving at
    time *t* conforms iff ``t >= TAT - limit``; on conformance TAT
    advances by the increment.
    """

    def __init__(self, increment: float, limit: float) -> None:
        if increment <= 0:
            raise ValueError("GCRA increment must be positive")
        if limit < 0:
            raise ValueError("GCRA limit must be non-negative")
        self.increment = increment
        self.limit = limit
        self._tat = 0.0  # theoretical arrival time
        self.conforming = 0
        self.nonconforming = 0

    #: absolute slack absorbing float accumulation error; far below any
    #: physically meaningful CDVT (sub-nanosecond)
    _EPS = 1e-9

    def check(self, t: float) -> bool:
        """Test (and account) one cell arrival at time *t*."""
        if t >= self._tat - self.limit - self._EPS:
            self._tat = max(self._tat, t) + self.increment
            self.conforming += 1
            return True
        self.nonconforming += 1
        return False

    def reset(self) -> None:
        self._tat = 0.0
        self.conforming = 0
        self.nonconforming = 0


@dataclass
class PolicerStats:
    passed: int = 0
    tagged: int = 0
    dropped: int = 0


class UsageParameterControl:
    """Ingress policer for one VC: dual GCRA per I.371.

    PCR violations are dropped; SCR/burst violations are tagged CLP=1
    (so congested switches shed them first).
    """

    def __init__(self, contract: TrafficContract) -> None:
        self.contract = contract
        self._pcr_gcra = Gcra(1.0 / contract.pcr, contract.cdvt)
        self._scr_gcra = (
            Gcra(1.0 / contract.scr, contract.burst_tolerance + contract.cdvt)
            if contract.scr is not None
            else None
        )
        self.stats = PolicerStats()

    def police(self, t: float) -> str:
        """Classify one cell arrival: 'pass', 'tag', or 'drop'."""
        if not self._pcr_gcra.check(t):
            self.stats.dropped += 1
            return "drop"
        if self._scr_gcra is not None and not self._scr_gcra.check(t):
            self.stats.tagged += 1
            return "tag"
        self.stats.passed += 1
        return "pass"


class LeakyBucketShaper:
    """Sender-side shaper: computes the earliest conforming departure
    time for each cell so a source never violates its own contract.

    Stateful: call :meth:`next_departure` with the time the cell became
    ready; it returns the time it may be sent and advances the bucket.
    """

    def __init__(self, contract: TrafficContract) -> None:
        self.contract = contract
        rate = contract.scr if contract.scr is not None else contract.pcr
        self._increment = 1.0 / rate
        self._bucket_limit = contract.burst_tolerance
        self._tat = 0.0
        self._pcr_gap = 1.0 / contract.pcr
        self._last_departure = -float("inf")

    def next_departure(self, ready_at: float) -> float:
        """Earliest time >= *ready_at* at which the next cell conforms."""
        # sustained-rate constraint (leaky bucket with burst tolerance)
        depart = max(ready_at, self._tat - self._bucket_limit)
        # peak-rate constraint: successive cells >= 1/PCR apart
        depart = max(depart, self._last_departure + self._pcr_gap)
        self._tat = max(self._tat, depart) + self._increment
        self._last_departure = depart
        return depart
