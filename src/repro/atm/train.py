"""Cell trains: one AAL5 frame's cells batched into one unit of work.

The legacy event loop schedules ~6 events per cell (enqueue, finish,
deliver at each hop); a 342-cell courseware PDU costs ~2k events.  A
:class:`CellTrain` carries the whole frame's contiguous cells plus a
parallel list of per-cell times, so each pipeline stage (link
transmitter, switch fabric, receiving host) handles the burst in ONE
scheduled callback while still computing every per-cell timestamp and
counter with the exact arithmetic the per-cell path would have used.

The times list is mutated in place as the train moves:

========================  =========================================
stage                     ``times[i]`` holds
========================  =========================================
host commit               per-cell shaper departure ``d_i``
after link fast path      per-cell far-end arrival ``f_i + prop``
after switch relabel      per-cell fabric exit ``a_i + sw_delay``
                          (= departure offered to the next link)
========================  =========================================

Each stage either consumes the train whole (fast path) or *expands* it
back into per-cell events when exact legacy semantics require it
(armed loss/jitter RNGs, a busy or backlogged transmitter, policing
violations) — the expansion is byte-identical to the per-cell path, so
equivalence is never approximated where faults are in play.
"""

from __future__ import annotations

from typing import List, Optional

from repro.atm.cell import Cell
from repro.atm.qos import ServiceCategory

__all__ = ["CellTrain"]


class CellTrain:
    """A contiguous burst of cells from one AAL5 CPCS-PDU.

    ``pdu`` optionally keeps the sender-side CPCS-PDU bytes so the
    receiving host can reassemble without re-joining 48-octet slices
    (the payload bytes are immutable end to end; only headers are
    relabelled in flight).
    """

    __slots__ = ("cells", "category", "times", "pdu", "charged")

    def __init__(self, cells: List[Cell], category: ServiceCategory,
                 times: List[float], pdu: Optional[bytes] = None, *,
                 charged: bool = True) -> None:
        self.cells = cells
        self.category = category
        self.times = times
        self.pdu = pdu
        #: whether link commits bill per-cell enqueue equivalents to the
        #: event loop: True for host-committed trains (the legacy path
        #: scheduled one enqueue event per cell), False once a switch
        #: forwards the train (the legacy switch enqueued inline, free)
        self.charged = charged

    def __len__(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = self.cells[0].header if self.cells else None
        return (f"CellTrain(n={len(self.cells)}, vci="
                f"{head.vci if head else '?'}, "
                f"category={self.category.name})")
