"""Network assembly: hosts, virtual-circuit setup, routing, admission.

:class:`AtmNetwork` owns the node graph (hosts + switches + links),
computes routes (Dijkstra over link delay), performs connection
admission control against reserved bandwidth, installs per-hop VC
table entries, and hands applications a :class:`VirtualCircuit` with
AAL5 send/receive endpoints and contract-conformant shaping.

VCs are unidirectional like real ATM connections;
:meth:`AtmNetwork.open_duplex` opens a symmetric pair, which is what
the transport layer (Fig 3.5's client–server model) builds on.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.atm.aal5 import (
    Aal5Receiver, Aal5Sender, TRAILER_SIZE, parse_cpcs_pdu,
)
from repro.atm.cell import Cell, PAYLOAD_SIZE
from repro.atm.flow import FlowLane
from repro.atm.link import Link
from repro.atm.train import CellTrain
from repro.atm.qos import (
    LeakyBucketShaper,
        TrafficContract,
    UsageParameterControl,
)
from repro.atm.simulator import Simulator
from repro.atm.switch import Switch, VcTableEntry
from repro.util.errors import DecodingError, NetworkError

#: fidelity modes understood by :class:`AtmNetwork`
FIDELITY_MODES = ("cell", "batched", "hybrid")


#: how many raw per-PDU delay samples a VC keeps (the full
#: distribution lives in the bounded metrics histogram)
DELAY_SAMPLE_CAP = 1024

#: cap on outstanding send-time entries per host; beyond this the
#: oldest entries are evicted (their PDUs report NaN delay instead of
#: leaking memory forever on lossy links)
SEND_TIME_CAP = 8192


class SwitchPortSink:
    """Per-cell link sink delivering into one switch input port.

    A bound method instead of a per-link lambda: the profiler can
    attribute its cost to a real qualname, and the hot path avoids a
    closure-cell dereference per delivered cell.
    """

    __slots__ = ("switch", "port")

    def __init__(self, switch: Switch, port: str) -> None:
        self.switch = switch
        self.port = port

    def receive_cell(self, cell: Cell) -> None:
        self.switch.receive(cell, self.port)

    def receive_train(self, train: CellTrain) -> None:
        self.switch.receive_train(train, self.port)


@dataclass
class VcStats:
    pdus_sent: int = 0
    pdus_delivered: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    #: most recent per-PDU end-to-end delays (send call -> last cell
    #: delivered); bounded — the histogram keeps the full distribution
    delays: Deque[float] = field(
        default_factory=lambda: deque(maxlen=DELAY_SAMPLE_CAP))


class VirtualCircuit:
    """One direction of an established connection."""

    def __init__(self, vc_id: int, src: "Host", dst: "Host",
                 contract: TrafficContract, path: List[str],
                 first_vci: int, last_vci: int) -> None:
        self.vc_id = vc_id
        self.src = src
        self.dst = dst
        self.contract = contract
        self.path = path          # node names, src..dst
        self.first_vci = first_vci
        self.last_vci = last_vci
        self.sender = Aal5Sender(vpi=0, vci=first_vci)
        self.shaper = LeakyBucketShaper(contract)
        self.stats = VcStats()
        self.open = True
        #: hybrid fidelity: a FlowLane when this VC is simulated at
        #: flow level (background class); None keeps cell-level
        self.lane: Optional[FlowLane] = None
        metrics = src.sim.metrics
        route = f"{src.name}->{dst.name}"
        self.delay_hist = metrics.histogram("vc", "pdu_delay_seconds",
                                            vc=vc_id, route=route)
        self._m_pdus_sent = metrics.counter("vc", "pdus_sent",
                                            vc=vc_id, route=route)
        self._m_pdus_delivered = metrics.counter("vc", "pdus_delivered",
                                                 vc=vc_id, route=route)
        self.acct = src.sim.ledger.account("vc", str(vc_id), note=route)

    def send(self, payload: bytes) -> None:
        """Segment *payload* and inject its cells, paced by the shaper."""
        if not self.open:
            raise NetworkError(f"VC {self.vc_id} is closed")
        self.src._transmit(self, payload)


class Host:
    """Network endpoint.  One access link pair to its attachment switch."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.uplink: Optional[Link] = None          # host -> switch
        self.attached_switch: Optional[Switch] = None
        #: set by AtmNetwork from its fidelity mode: when True, each
        #: PDU's cells leave as ONE committed train instead of n
        #: scheduled per-cell enqueues
        self.batching = False
        # receive side: vci -> (reassembler, handler, vc)
        self._rx: Dict[int, Tuple[Aal5Receiver, Callable, VirtualCircuit]] = {}
        self._send_times: Dict[Tuple[int, int], float] = {}
        self.acct = sim.ledger.account("site", name)
        #: cells that arrived for a VCI with no receive binding (the
        #: VC was closed, or the label was never ours)
        self.unbound_cells = 0
        self._m_unbound = sim.metrics.counter("host", "cells_unbound",
                                              host=name)

    def _note_send_time(self, vc_id: int, seqno: int, now: float) -> None:
        # bound the in-flight map: a PDU whose last cell is dropped
        # never gets popped on delivery, so on lossy links the oldest
        # entries must be evicted (their delay is reported as NaN)
        while len(self._send_times) >= SEND_TIME_CAP:
            self._send_times.pop(next(iter(self._send_times)))
            self.sim.metrics.counter("host", "send_times_evicted",
                                     host=self.name).inc()
        self._send_times[(vc_id, seqno)] = now

    def _transmit(self, vc: VirtualCircuit, payload: bytes) -> None:
        lane = vc.lane
        if lane is not None:
            lane.send(payload)
            return
        now = self.sim.now
        batching = self.batching
        if batching:
            cells, pdu = vc.sender.segment_train(payload, created_at=now)
        else:
            cells = vc.sender.segment(payload, created_at=now)
        vc.stats.pdus_sent += 1
        vc.stats.bytes_sent += len(payload)
        vc._m_pdus_sent.inc()
        vc.acct.sent(units=1, cells=len(cells), nbytes=len(payload))
        self.acct.sent(units=1, cells=len(cells), nbytes=len(payload))
        self._note_send_time(vc.vc_id, cells[-1].seqno, now)
        category = vc.contract.category
        next_departure = vc.shaper.next_departure
        if batching:
            # identical per-cell shaper calls keep bucket state and
            # departure times bit-equal to the per-cell path; the whole
            # burst becomes ONE commit event at its first departure
            times = [next_departure(now) for _ in cells]
            train = CellTrain(cells, category, times, pdu)
            self.sim.schedule_at(times[0], self.uplink.commit_train, train)
        else:
            for cell in cells:
                self.sim.schedule_at(next_departure(now),
                                     self.uplink.enqueue, cell, category)

    def _bind_receive(self, vci: int, vc: VirtualCircuit,
                      handler: Callable[[bytes, "DeliveryInfo"], None]) -> None:
        def on_pdu(payload: bytes, last_cell: Cell) -> None:
            send_time = vc.src._send_times.pop((vc.vc_id, last_cell.seqno), None)
            delay = self.sim.now - send_time if send_time is not None else float("nan")
            vc.stats.pdus_delivered += 1
            vc.stats.bytes_delivered += len(payload)
            vc.stats.delays.append(delay)
            vc._m_pdus_delivered.inc()
            ncells = (len(payload) + TRAILER_SIZE + PAYLOAD_SIZE - 1) \
                // PAYLOAD_SIZE
            vc.acct.delivered(units=1, cells=ncells, nbytes=len(payload))
            self.acct.delivered(units=1, cells=ncells, nbytes=len(payload))
            vc.delay_hist.observe(delay)  # NaN (evicted send time) ignored
            handler(payload, DeliveryInfo(vc=vc, delay=delay,
                                          delivered_at=self.sim.now,
                                          hops=last_cell.hops))
        self._rx[vci] = (Aal5Receiver(on_pdu), handler, vc)

    def receive_cell(self, cell: Cell) -> None:
        """Entry point wired as the sink of the host's downlink."""
        entry = self._rx.get(cell.header.vci)
        if entry is None:
            # cell for a closed/unknown VC
            self.unbound_cells += 1
            self._m_unbound.inc()
            return
        entry[0].receive(cell)

    def receive_train(self, train: CellTrain) -> None:
        """Train-aware downlink sink: one lookup for the whole burst.

        PDU completion is deferred to the LAST cell's arrival time so
        delivery timestamps, delays and histograms match the per-cell
        path bit for bit.
        """
        cells = train.cells
        n = len(cells)
        entry = self._rx.get(cells[0].header.vci)
        if entry is None:
            self.unbound_cells += n
            self._m_unbound.inc(n)
            self.sim.charge_cells(n)
            return
        t_last = train.times[-1]
        now = self.sim.now
        self.sim.schedule_at(t_last if t_last > now else now,
                             self._finalize_train, entry[0], train)
        # n legacy receive events, minus the finalize event just booked
        self.sim.charge_cells(n - 1)

    def _finalize_train(self, rx: Aal5Receiver, train: CellTrain) -> None:
        """Reassemble a train at its last cell's arrival time."""
        cells = train.cells
        n = len(cells)
        cur = self._rx.get(cells[0].header.vci)
        if cur is None or cur[0] is not rx:
            # VC torn down between delivery and finalization
            self.unbound_cells += n
            self._m_unbound.inc(n)
            return
        last = cells[-1]
        if rx._buffer or not last.header.is_last_of_frame:
            # a partial frame is pending (per-cell fault-window
            # residue) — feed cells one by one, exact legacy semantics
            for c in cells:
                rx.receive(c)
            return
        # fast reassembly: the train IS one whole frame and the buffer
        # is empty; counters move exactly as n receive() calls would
        rx.cells_received += n
        pdu = train.pdu
        if pdu is None:
            pdu = b"".join(c.payload for c in cells)
        try:
            payload = parse_cpcs_pdu(pdu)
        except DecodingError:
            rx.cells_discarded += n
            rx.pdus_corrupted += 1
            return
        rx.cells_delivered += n
        rx.pdus_delivered += 1
        rx._on_pdu(payload, last)


@dataclass
class DeliveryInfo:
    """Metadata handed to receive handlers with each delivered PDU."""

    vc: VirtualCircuit
    delay: float
    delivered_at: float
    hops: int


class DuplexChannel:
    """A symmetric pair of VCs between two hosts."""

    def __init__(self, forward: VirtualCircuit, backward: VirtualCircuit) -> None:
        self.forward = forward
        self.backward = backward

    def endpoint(self, host_name: str) -> "DuplexEndpoint":
        if self.forward.src.name == host_name:
            return DuplexEndpoint(send_vc=self.forward, recv_vc=self.backward)
        if self.backward.src.name == host_name:
            return DuplexEndpoint(send_vc=self.backward, recv_vc=self.forward)
        raise NetworkError(f"host {host_name} is not an endpoint of this channel")


@dataclass
class DuplexEndpoint:
    send_vc: VirtualCircuit
    recv_vc: VirtualCircuit

    def send(self, payload: bytes) -> None:
        self.send_vc.send(payload)


class AtmNetwork:
    """The assembled network: topology + signalling + admission."""

    def __init__(self, sim: Simulator, *, police: bool = True,
                 admission_utilization: float = 0.9,
                 fidelity: str = "batched") -> None:
        if fidelity not in FIDELITY_MODES:
            raise ValueError(
                f"unknown fidelity {fidelity!r}; pick one of {FIDELITY_MODES}")
        self.sim = sim
        self.police = police
        #: simulation fidelity: "cell" = legacy one-event-per-cell,
        #: "batched" = cell-train fast path (default, equivalent),
        #: "hybrid" = batched foreground + flow-level background VCs
        self.fidelity = fidelity
        self.admission_utilization = admission_utilization
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        #: directed adjacency: (from, to) -> Link
        self.links: Dict[Tuple[str, str], Link] = {}
        self._vc_counter = itertools.count(1)
        # next free VCI per (switch, out_port); VCIs < 32 are reserved
        self._vci_alloc: Dict[Tuple[str, str], itertools.count] = {}
        #: every currently-open VC by id — fault injection tears
        #: circuits down by route, so the network must know its VCs
        self.vcs: Dict[int, VirtualCircuit] = {}

    # -- topology construction ------------------------------------------

    def add_switch(self, name: str, switching_delay: float = 4e-6) -> Switch:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name!r}")
        sw = Switch(self.sim, name, switching_delay)
        self.switches[name] = sw
        return sw

    def add_host(self, name: str, switch_name: str, *, rate_bps: float = 155.52e6,
                 prop_delay: float = 5e-6, buffer_cells: int = 1024) -> Host:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name!r}")
        if switch_name not in self.switches:
            raise NetworkError(f"unknown switch {switch_name!r}")
        host = Host(self.sim, name)
        sw = self.switches[switch_name]
        up = Link(self.sim, rate_bps, prop_delay, buffer_cells,
                  name=f"{name}->{switch_name}")
        down = Link(self.sim, rate_bps, prop_delay, buffer_cells,
                    name=f"{switch_name}->{name}")
        port_sink = SwitchPortSink(sw, name)
        up.sink = port_sink.receive_cell
        up.sink_train = port_sink.receive_train
        down.sink = host.receive_cell
        down.sink_train = host.receive_train
        host.batching = self.fidelity != "cell"
        host.uplink = up
        host.attached_switch = sw
        sw.attach_output(name, down)
        self.links[(name, switch_name)] = up
        self.links[(switch_name, name)] = down
        self.hosts[name] = host
        return host

    def add_trunk(self, a: str, b: str, *, rate_bps: float = 155.52e6,
                  prop_delay: float = 5e-5, buffer_cells: int = 2048) -> None:
        """Bidirectional switch-to-switch trunk (two simplex links)."""
        for src, dst in ((a, b), (b, a)):
            if src not in self.switches or dst not in self.switches:
                raise NetworkError(f"trunk endpoints must be switches: {src}, {dst}")
            link = Link(self.sim, rate_bps, prop_delay, buffer_cells,
                        name=f"{src}->{dst}")
            sw_dst = self.switches[dst]
            port_sink = SwitchPortSink(sw_dst, src)
            link.sink = port_sink.receive_cell
            link.sink_train = port_sink.receive_train
            self.switches[src].attach_output(dst, link)
            self.links[(src, dst)] = link

    # -- routing ----------------------------------------------------------

    def _neighbors(self, node: str) -> List[str]:
        return [dst for (src, dst) in self.links if src == node]

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """Dijkstra over per-hop latency (propagation + one cell time)."""
        dist: Dict[str, float] = {src: 0.0}
        prev: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        visited = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == dst:
                break
            for nxt in self._neighbors(node):
                # hosts only terminate circuits; never route through one
                if nxt in self.hosts and nxt != dst:
                    continue
                link = self.links[(node, nxt)]
                nd = d + link.prop_delay + link.cell_time
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    prev[nxt] = node
                    heapq.heappush(heap, (nd, nxt))
        if dst not in dist:
            raise NetworkError(f"no route from {src} to {dst}")
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    # -- signalling / admission -------------------------------------------

    def _alloc_vci(self, switch: str, out_port: str) -> int:
        key = (switch, out_port)
        if key not in self._vci_alloc:
            self._vci_alloc[key] = itertools.count(32)
        return next(self._vci_alloc[key])

    def open_vc(self, src: str, dst: str, contract: TrafficContract,
                handler: Callable[[bytes, DeliveryInfo], None], *,
                flow_class: str = "foreground") -> VirtualCircuit:
        """Set up a unidirectional VC src->dst, or raise NetworkError.

        Performs admission control along the route: the contract's
        effective bandwidth must fit within ``admission_utilization``
        of every link's remaining capacity.

        *flow_class* matters only under ``fidelity="hybrid"``:
        ``"background"`` VCs are collapsed to flow-level segments
        (see :mod:`repro.atm.flow`); ``"foreground"`` VCs — everything
        opened directly by streaming/conference code — keep cell-level
        simulation.
        """
        if src not in self.hosts or dst not in self.hosts:
            raise NetworkError("VC endpoints must be hosts")
        path = self.shortest_path(src, dst)
        eff_bw = contract.effective_bandwidth_bps()
        hop_links = [self.links[(path[i], path[i + 1])] for i in range(len(path) - 1)]
        for link in hop_links:
            if link.reserved_bps + eff_bw > link.rate_bps * self.admission_utilization:
                raise NetworkError(
                    f"admission control rejected VC {src}->{dst}: link "
                    f"{link.name} has {link.rate_bps * self.admission_utilization - link.reserved_bps:.0f} "
                    f"bps free, contract needs {eff_bw:.0f} bps"
                )
        for link in hop_links:
            link.reserved_bps += eff_bw

        vc_id = next(self._vc_counter)
        # allocate the label used on each hop's outgoing link
        first_vci = self._alloc_vci(src, path[1])
        in_vci = first_vci
        in_port = src
        for i in range(1, len(path) - 1):
            sw_name = path[i]
            out_port = path[i + 1]
            out_vci = self._alloc_vci(sw_name, out_port)
            upc = None
            if self.police and i == 1:
                upc = UsageParameterControl(contract)
            self.switches[sw_name].install_route(
                in_port, 0, in_vci,
                VcTableEntry(out_port=out_port, out_vpi=0, out_vci=out_vci,
                             category=contract.category, upc=upc))
            in_port = sw_name
            in_vci = out_vci

        vc = VirtualCircuit(vc_id, self.hosts[src], self.hosts[dst],
                            contract, path, first_vci, last_vci=in_vci)
        self.hosts[dst]._bind_receive(in_vci, vc, handler)
        if self.fidelity == "hybrid" and flow_class == "background":
            vc.lane = FlowLane(vc, hop_links,
                               [self.switches[p] for p in path[1:-1]])
        self.vcs[vc_id] = vc
        return vc

    def vcs_between(self, src: str, dst: str) -> List[VirtualCircuit]:
        """Open VCs from host *src* to host *dst*, oldest first."""
        return [vc for _, vc in sorted(self.vcs.items())
                if vc.open and vc.src.name == src and vc.dst.name == dst]

    def open_duplex(self, a: str, b: str, contract: TrafficContract,
                    handler_a: Callable[[bytes, DeliveryInfo], None],
                    handler_b: Callable[[bytes, DeliveryInfo], None], *,
                    flow_class: str = "background") -> DuplexChannel:
        """Open a symmetric VC pair; *handler_a* receives b->a traffic.

        Duplex pairs carry the request/response transport under RPC —
        background load by default, so hybrid fidelity collapses them
        to flow level while direct ``open_vc`` streams stay cell-level.
        """
        fwd = self.open_vc(a, b, contract, handler_b,
                           flow_class=flow_class)
        try:
            bwd = self.open_vc(b, a, contract, handler_a,
                               flow_class=flow_class)
        except NetworkError:
            self.close_vc(fwd)
            raise
        return DuplexChannel(forward=fwd, backward=bwd)

    def close_vc(self, vc: VirtualCircuit) -> None:
        """Tear down a VC: release labels, bandwidth, and bindings."""
        if not vc.open:
            return
        vc.open = False
        self.vcs.pop(vc.vc_id, None)
        self.sim.recorder.record(
            "atm", "vc_close", vc=vc.vc_id,
            route=f"{vc.path[0]}->{vc.path[-1]}")
        eff_bw = vc.contract.effective_bandwidth_bps()
        in_vci = vc.first_vci
        in_port = vc.path[0]
        for i in range(1, len(vc.path) - 1):
            sw_name = vc.path[i]
            sw = self.switches[sw_name]
            entry = sw._table.get((in_port, 0, in_vci))
            sw.remove_route(in_port, 0, in_vci)
            if entry is None:
                break
            in_port = sw_name
            in_vci = entry.out_vci
        for i in range(len(vc.path) - 1):
            link = self.links[(vc.path[i], vc.path[i + 1])]
            link.reserved_bps = max(0.0, link.reserved_bps - eff_bw)
        vc.dst._rx.pop(vc.last_vci, None)
        # drop in-flight send-time entries: PDUs whose last cell was
        # lost would otherwise leak one entry each, forever
        src_host = vc.src
        for key in [k for k in src_host._send_times if k[0] == vc.vc_id]:
            del src_host._send_times[key]
