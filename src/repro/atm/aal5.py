"""AAL5 segmentation and reassembly.

AAL5 (ITU-T I.363.5) is how MITS moves variable-length messages —
encoded MHEG objects, database requests, media frames — over the
fixed-size cell network.  A CPCS-PDU is::

    payload | pad (0..47) | CPCS-UU (1) | CPI (1) | length (2) | CRC-32 (4)

padded so the whole PDU is a multiple of 48 octets, then cut into
48-octet cell payloads.  The final cell is marked with the
AAL-indicate bit in the PTI.  The receiver accumulates payloads until
it sees the marker, then validates length and CRC; any lost cell makes
the CRC fail, so corruption is detected, never silent.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, List

from repro.atm.cell import Cell, CellHeader, PAYLOAD_SIZE, PTI_USER_0, PTI_USER_LAST
from repro.util.crc import crc32_aal5
from repro.util.errors import DecodingError

TRAILER_SIZE = 8
MAX_CPCS_PAYLOAD = 65535


@dataclass
class CpcsTrailer:
    """Decoded AAL5 CPCS-PDU trailer."""

    cpcs_uu: int
    cpi: int
    length: int
    crc: int

    def encode(self) -> bytes:
        return struct.pack(">BBHI", self.cpcs_uu, self.cpi, self.length, self.crc)

    @classmethod
    def decode(cls, data: bytes) -> "CpcsTrailer":
        if len(data) != TRAILER_SIZE:
            raise DecodingError("AAL5 trailer must be 8 octets")
        uu, cpi, length, crc = struct.unpack(">BBHI", data)
        return cls(cpcs_uu=uu, cpi=cpi, length=length, crc=crc)


def build_cpcs_pdu(payload: bytes, cpcs_uu: int = 0) -> bytes:
    """Frame *payload* into a complete CPCS-PDU (pad + trailer + CRC)."""
    if len(payload) > MAX_CPCS_PAYLOAD:
        raise ValueError(
            f"AAL5 payload limited to {MAX_CPCS_PAYLOAD} octets, got {len(payload)}"
        )
    pad_len = (-(len(payload) + TRAILER_SIZE)) % PAYLOAD_SIZE
    body = payload + bytes(pad_len)
    head = struct.pack(">BBH", cpcs_uu, 0, len(payload))
    reg = crc32_aal5(body)
    reg = crc32_aal5(head, reg)
    crc = reg ^ 0xFFFFFFFF
    return body + head + struct.pack(">I", crc)


def parse_cpcs_pdu(pdu: bytes) -> bytes:
    """Validate a reassembled CPCS-PDU and return the original payload."""
    if len(pdu) % PAYLOAD_SIZE != 0 or len(pdu) < PAYLOAD_SIZE:
        raise DecodingError(
            f"CPCS-PDU length {len(pdu)} is not a positive multiple of 48"
        )
    expected = crc32_aal5(pdu[:-4]) ^ 0xFFFFFFFF
    received = struct.unpack(">I", pdu[-4:])[0]
    if expected != received:
        raise DecodingError("AAL5 CRC-32 failure (cell loss or corruption)")
    trailer = CpcsTrailer.decode(pdu[-TRAILER_SIZE:])
    if trailer.length > len(pdu) - TRAILER_SIZE:
        raise DecodingError(
            f"AAL5 length field {trailer.length} exceeds PDU capacity"
        )
    return pdu[: trailer.length]


def segment_pdu(payload: bytes, vpi: int, vci: int, *, clp: int = 0,
                created_at: float = 0.0, first_seqno: int = 0) -> List[Cell]:
    """Segment *payload* into a list of ATM cells (AAL5 framing applied).

    The last cell carries ``PTI_USER_LAST``; all others ``PTI_USER_0``.
    """
    pdu = build_cpcs_pdu(payload)
    ncells = len(pdu) // PAYLOAD_SIZE
    cells = []
    for i in range(ncells):
        chunk = pdu[i * PAYLOAD_SIZE : (i + 1) * PAYLOAD_SIZE]
        pti = PTI_USER_LAST if i == ncells - 1 else PTI_USER_0
        hdr = CellHeader(vpi=vpi, vci=vci, pti=pti, clp=clp)
        cells.append(Cell(header=hdr, payload=chunk,
                          created_at=created_at, seqno=first_seqno + i))
    return cells


class Aal5Sender:
    """Stateful per-VC segmenter that assigns monotone cell sequence numbers."""

    def __init__(self, vpi: int, vci: int, clp: int = 0) -> None:
        self.vpi = vpi
        self.vci = vci
        self.clp = clp
        self._next_seqno = 0
        self.pdus_sent = 0
        self.cells_sent = 0

    def segment(self, payload: bytes, created_at: float = 0.0) -> List[Cell]:
        cells = segment_pdu(payload, self.vpi, self.vci, clp=self.clp,
                            created_at=created_at,
                            first_seqno=self._next_seqno)
        self._next_seqno += len(cells)
        self.pdus_sent += 1
        self.cells_sent += len(cells)
        return cells

    def segment_train(self, payload: bytes,
                      created_at: float = 0.0) -> "tuple[List[Cell], bytes]":
        """Like :meth:`segment`, but also returns the CPCS-PDU bytes.

        The batched fast path attaches the PDU to the cell train so the
        receiving host can reassemble without re-joining the 48-octet
        payload slices.  Cells and sender counters are identical to
        :meth:`segment`.
        """
        pdu = build_cpcs_pdu(payload)
        ncells = len(pdu) // PAYLOAD_SIZE
        vpi, vci, clp = self.vpi, self.vci, self.clp
        seqno = self._next_seqno
        cells = []
        for i in range(ncells):
            pti = PTI_USER_LAST if i == ncells - 1 else PTI_USER_0
            hdr = CellHeader(vpi=vpi, vci=vci, pti=pti, clp=clp)
            cells.append(Cell(header=hdr,
                              payload=pdu[i * PAYLOAD_SIZE:
                                          (i + 1) * PAYLOAD_SIZE],
                              created_at=created_at, seqno=seqno + i))
        self._next_seqno += ncells
        self.pdus_sent += 1
        self.cells_sent += ncells
        return cells, pdu


class Aal5Receiver:
    """Per-VC reassembler.

    Feed cells with :meth:`receive`; complete, valid PDUs are handed to
    *on_pdu* (payload bytes, last-cell arrival context).  PDUs whose
    CRC fails (cell loss upstream) are counted and dropped, matching
    AAL5 semantics — recovery is the job of the layer above.
    """

    #: guard against unbounded buffering when the final cell of a frame
    #: was lost: once a partial frame exceeds this many cells it is
    #: discarded together with the frame that follows it.
    MAX_FRAME_CELLS = (MAX_CPCS_PAYLOAD + TRAILER_SIZE) // PAYLOAD_SIZE + 2

    def __init__(self, on_pdu: Callable[[bytes, Cell], None]) -> None:
        self._on_pdu = on_pdu
        self._buffer: List[bytes] = []
        self.pdus_delivered = 0
        self.pdus_corrupted = 0
        self.cells_received = 0
        #: cell conservation: every received cell either ends up in a
        #: delivered PDU, is discarded with a corrupt/runaway frame,
        #: or still sits in the partial-frame buffer
        self.cells_delivered = 0
        self.cells_discarded = 0

    @property
    def cells_buffered(self) -> int:
        return len(self._buffer)

    def conserves(self) -> bool:
        """bytes in == PDU bytes out + discarded (in 48-octet cells)."""
        return self.cells_received == (self.cells_delivered
                                       + self.cells_discarded
                                       + len(self._buffer))

    def receive(self, cell: Cell) -> None:
        self.cells_received += 1
        self._buffer.append(cell.payload)
        if len(self._buffer) > self.MAX_FRAME_CELLS:
            # runaway partial frame: drop it (equivalent to a timeout)
            self.cells_discarded += len(self._buffer)
            self._buffer.clear()
            self.pdus_corrupted += 1
            return
        if cell.header.is_last_of_frame:
            ncells = len(self._buffer)
            pdu = b"".join(self._buffer)
            self._buffer.clear()
            try:
                payload = parse_cpcs_pdu(pdu)
            except DecodingError:
                self.cells_discarded += ncells
                self.pdus_corrupted += 1
                return
            self.cells_delivered += ncells
            self.pdus_delivered += 1
            self._on_pdu(payload, cell)
