"""Canned topologies for experiments.

Two builders are provided:

* :func:`star_campus` — one switch, N hosts: the minimal lab setup the
  prototype chapter (Ch. 5) used, a PC navigator talking to a
  SUN/ULTRA database server over one ATM switch;
* :func:`ocrinet_like` — a five-switch metro ring with spurs modelled
  on OCRInet, the Ottawa-Carleton research network MITS was deployed
  on, with OC-3 (155 Mb/s) access links and OC-3/OC-12 trunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.atm.network import AtmNetwork
from repro.atm.simulator import Simulator

OC3_BPS = 155.52e6
OC12_BPS = 622.08e6
T3_BPS = 44.736e6


@dataclass
class TopologySpec:
    """Description of a built topology, for reporting."""

    name: str
    switches: List[str]
    hosts: List[str]
    trunk_bps: float
    access_bps: float


def star_campus(sim: Simulator, host_names: Sequence[str], *,
                access_bps: float = OC3_BPS, prop_delay: float = 5e-6,
                police: bool = True,
                buffer_cells: int = 1024,
                fidelity: str = "batched") -> tuple[AtmNetwork, TopologySpec]:
    """One switch, all hosts attached directly — a campus LAN."""
    if len(host_names) < 2:
        raise ValueError("a star needs at least two hosts")
    net = AtmNetwork(sim, police=police, fidelity=fidelity)
    net.add_switch("sw0")
    for name in host_names:
        net.add_host(name, "sw0", rate_bps=access_bps, prop_delay=prop_delay,
                     buffer_cells=buffer_cells)
    spec = TopologySpec(name="star", switches=["sw0"], hosts=list(host_names),
                        trunk_bps=access_bps, access_bps=access_bps)
    return net, spec


#: (host, attachment switch) pairs mirroring the MITS site layout:
#: production center and database in the core, author/user/facilitator
#: sites at the edges.
OCRINET_SITES = [
    ("production", "ottawa-u"),
    ("database", "ottawa-u"),
    ("author1", "carleton"),
    ("author2", "nrc"),
    ("facilitator", "crc"),
    ("user1", "bnr"),
    ("user2", "crc"),
    ("user3", "carleton"),
]


def ocrinet_like(sim: Simulator, *, extra_users: int = 0,
                 trunk_bps: float = OC12_BPS, access_bps: float = OC3_BPS,
                 police: bool = True,
                 fidelity: str = "batched") -> tuple[AtmNetwork, TopologySpec]:
    """Five-switch metro ring with spurs, modelled on OCRInet.

    Switches: ottawa-u, carleton, nrc, crc, bnr, connected in a ring
    with one chord (ottawa-u — crc) for path diversity.  *extra_users*
    adds userN hosts round-robin across the edge switches, which is
    how the scaling experiments grow load.
    """
    net = AtmNetwork(sim, police=police, fidelity=fidelity)
    switches = ["ottawa-u", "carleton", "nrc", "crc", "bnr"]
    for sw in switches:
        net.add_switch(sw)
    ring = list(zip(switches, switches[1:] + switches[:1]))
    for a, b in ring:
        net.add_trunk(a, b, rate_bps=trunk_bps, prop_delay=1e-4)
    net.add_trunk("ottawa-u", "crc", rate_bps=trunk_bps, prop_delay=1.5e-4)

    hosts = []
    for host, sw in OCRINET_SITES:
        net.add_host(host, sw, rate_bps=access_bps)
        hosts.append(host)
    edge = ["carleton", "nrc", "crc", "bnr"]
    for i in range(extra_users):
        name = f"user{4 + i}"
        net.add_host(name, edge[i % len(edge)], rate_bps=access_bps)
        hosts.append(name)
    spec = TopologySpec(name="ocrinet", switches=switches, hosts=hosts,
                        trunk_bps=trunk_bps, access_bps=access_bps)
    return net, spec
