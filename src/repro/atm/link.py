"""Transmission links.

A :class:`Link` is a unidirectional transmission line with a fixed
bit rate, a propagation delay, and a finite output buffer organised as
per-service-category priority queues (CBR drains before rt-VBR, etc.;
within a category, CLP=1 cells are dropped first under overflow).

Serialization time per cell is ``424 bits / rate``; cells arrive at
the attached sink one propagation delay after transmission completes.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

from repro.atm.cell import Cell, CELL_SIZE
from repro.atm.qos import ServiceCategory
from repro.atm.simulator import Simulator
from repro.atm.train import CellTrain
from repro.obs.accounting import NULL_ACCOUNT

CELL_BITS = CELL_SIZE * 8


@dataclass
class LinkStats:
    enqueued: int = 0
    transmitted: int = 0
    dropped_overflow: int = 0
    dropped_errors: int = 0
    dropped_down: int = 0
    busy_time: float = 0.0
    #: subset of dropped_overflow: buffered cells displaced by a
    #: higher-priority arrival (the arrival itself was accepted)
    dropped_shed: int = 0
    #: subset of dropped_down: cells lost mid-flight when the link
    #: went down during their serialization (vs. dropped on arrival)
    dropped_down_wire: int = 0
    #: transmitted cells handed to the sink (scheduled for delivery)
    delivered: int = 0
    #: transmitted cells with no sink attached to receive them
    dropped_no_sink: int = 0

    def conserves_buffer(self, queued: int, in_service: int) -> bool:
        """Every accepted cell is transmitted, shed, queued, or in service."""
        return self.enqueued == (self.transmitted + self.dropped_shed
                                 + queued + in_service)

    def conserves_wire(self) -> bool:
        """Every transmitted cell is delivered or accounted as lost."""
        return self.transmitted == (self.delivered + self.dropped_errors
                                    + self.dropped_down_wire
                                    + self.dropped_no_sink)


class Link:
    """Unidirectional cell pipe with priority queueing.

    The *sink* is any callable taking one :class:`Cell`; it is invoked
    when the cell fully arrives at the far end.
    """

    def __init__(self, sim: Simulator, rate_bps: float, prop_delay: float = 1e-5,
                 buffer_cells: int = 512, name: str = "", *,
                 error_rate: float = 0.0,
                 error_seed: int = 0) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if buffer_cells < 1:
            raise ValueError("link buffer must hold at least one cell")
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.buffer_cells = buffer_cells
        self.name = name
        #: fault injection: probability a transmitted cell is lost on
        #: the wire (seeded, so experiments are reproducible).  The RNG
        #: is created lazily by the ``error_rate`` setter, so enabling
        #: loss on a link constructed with ``error_rate=0.0`` works.
        self._error_seed = error_seed
        self._error_rng: Optional[random.Random] = None
        self._error_rate = 0.0
        self.error_rate = error_rate
        #: fault injection: link outage — while down, arriving and
        #: in-flight cells are lost and the transmitter is parked
        self._down = False
        #: outage edges, for deciding the fate of train cells whose
        #: serialization window a transition bisected: time of the
        #: current outage's onset, and the last closed (down, up) span
        self._down_since = 0.0
        self._last_outage: Optional[Tuple[float, float]] = None
        #: fault injection: extra per-cell propagation jitter, uniform
        #: in [0, _jitter) seconds (seeded); can reorder cells, which
        #: the AAL5 CRC turns into detected frame loss upstream
        self._jitter = 0.0
        self._jitter_rng: Optional[random.Random] = None
        self.sink: Optional[Callable[[Cell], None]] = None
        #: train-aware sink (same far end as ``sink``); when absent,
        #: arriving trains are expanded back into per-cell events
        self.sink_train: Optional[Callable[[CellTrain], None]] = None
        #: per-category FIFO of (cell, category, enqueue_time); the
        #: timestamp feeds queue-residency accounting in the ledger
        self._queues: List[Deque[Tuple[Cell, ServiceCategory, float]]] = [
            deque() for _ in ServiceCategory
        ]
        self._queued = 0
        self._busy = False
        #: transmitter clock: the time the serializer frees up, shared
        #: by the per-cell path and the arithmetic train fast path so
        #: the two can interleave without overbooking link capacity
        self._free_at = 0.0
        #: cells committed to the transmitter as trains and not yet
        #: finished — counted by ``in_service`` so buffer conservation
        #: holds at every event boundary
        self._train_inflight = 0
        #: service-start times of committed train cells that have not
        #: started yet — replays the per-cell path's queue-occupancy
        #: gauge excursions (each legacy cell visits the queue between
        #: its arrival and its service start)
        self._future_starts: Deque[float] = deque()
        self.stats = LinkStats()
        #: bandwidth reserved by connection admission (bits/s)
        self.reserved_bps = 0.0
        metrics = sim.metrics
        label = name or f"link@{id(self):x}"
        self._m_enqueued = metrics.counter("link", "cells_enqueued", link=label)
        self._m_transmitted = metrics.counter("link", "cells_transmitted",
                                              link=label)
        self._m_drops = metrics.counter("link", "drops_total", link=label)
        self._m_occupancy = metrics.gauge("link", "queue_occupancy", link=label)
        self._metrics = metrics
        self._label = label
        self.acct = sim.ledger.account("link", label)

    @property
    def error_rate(self) -> float:
        """Probability a transmitted cell is lost on the wire."""
        return self._error_rate

    @error_rate.setter
    def error_rate(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        self._error_rate = rate
        # regression guard: a link constructed with error_rate=0.0 has
        # no RNG yet — create one here so enabling loss later actually
        # drops cells instead of silently no-opping
        if rate > 0 and self._error_rng is None:
            self._error_rng = random.Random(self._error_seed)

    def set_error_rate(self, rate: float, seed: Optional[int] = None) -> None:
        """Enable (or change) seeded random cell loss on this link.

        With *seed* given the loss RNG is re-seeded; otherwise an
        existing RNG (or the construction-time seed) is kept so
        adjusting the rate mid-run stays reproducible.
        """
        if seed is not None:
            self._error_seed = seed
            self._error_rng = random.Random(seed) if rate > 0 else None
        self.error_rate = rate

    def inject_errors(self, rate: float, seed: int = 0) -> None:
        """Enable (or change) seeded random cell loss on this link."""
        self.set_error_rate(rate, seed=seed)

    # -- fault hooks (driven by repro.faults.FaultInjector) --------------

    @property
    def down(self) -> bool:
        return self._down

    def set_down(self, down: bool) -> None:
        """Take the link out of (or back into) service.

        While down, arriving cells are dropped and the transmitter is
        parked; cells already buffered resume transmission when the
        link comes back up.
        """
        if down == self._down:
            return
        self._down = down
        if down:
            self._down_since = self.sim.now
        else:
            self._last_outage = (self._down_since, self.sim.now)
            if not self._busy and self._queued:
                self._start_transmission()

    def set_jitter(self, jitter: float, seed: int = 0) -> None:
        """Add (or clear) seeded uniform propagation jitter."""
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self._jitter = jitter
        self._jitter_rng = random.Random(seed) if jitter > 0 else None

    @property
    def cell_time(self) -> float:
        """Serialization time of one cell on this link."""
        return CELL_BITS / self.rate_bps

    @property
    def queue_length(self) -> int:
        return self._queued

    @property
    def in_service(self) -> int:
        """Cells committed to the transmitter and not yet finished:
        1 while a per-cell transmission is serializing, plus every cell
        of any train in arithmetic flight."""
        return (1 if self._busy else 0) + self._train_inflight

    def enqueue(self, cell: Cell, category: ServiceCategory = ServiceCategory.UBR) -> bool:
        """Offer a cell for transmission.  Returns False when dropped.

        On overflow the link first tries to shed a buffered CLP=1 cell
        of the lowest-priority non-empty class; if none exists and the
        arriving cell itself is the lowest class, the arrival is lost.
        """
        if self._down:
            self.stats.dropped_down += 1
            self._count_drop("link_down", category.name)
            return False
        if self._queued >= self.buffer_cells:
            if not self._shed_low_priority(category):
                self.stats.dropped_overflow += 1
                self._count_drop("overflow", category.name)
                return False
        self._queues[category].append((cell, category, self.sim.now))
        self._queued += 1
        self.stats.enqueued += 1
        self._m_enqueued.inc()
        self._m_occupancy.set(self._queued)
        if not self._busy:
            self._start_transmission()
        return True

    def _count_drop(self, reason: str, category: str) -> None:
        self.acct.drop()
        self._m_drops.inc()
        self._metrics.counter("link", "drops", link=self._label,
                              reason=reason, category=category).inc()
        self.sim.recorder.record("atm", "cell_drop", severity="warning",
                                 link=self._label, reason=reason,
                                 category=category)

    def _shed_low_priority(self, arriving: ServiceCategory) -> bool:
        """Try to make room for an *arriving*-class cell by dropping a
        lower-priority buffered cell (CLP=1 preferred).  Returns True
        if room was made."""
        for cat in sorted(ServiceCategory, reverse=True):
            if cat <= arriving:
                break
            q = self._queues[cat]
            if q:
                # prefer a tagged cell if one is buffered
                for i, (c, _, _t) in enumerate(q):
                    if c.header.clp == 1:
                        del q[i]
                        break
                else:
                    q.pop()
                self._queued -= 1
                self.stats.dropped_overflow += 1
                self.stats.dropped_shed += 1
                self._count_drop("shed", cat.name)
                self._m_occupancy.set(self._queued)
                return True
        return False

    def _start_transmission(self) -> None:
        if self._down:
            self._busy = False
            return
        for q in self._queues:
            if q:
                cell, _cat, enq_time = q.popleft()
                self._queued -= 1
                self.acct.dwell(self.sim.now - enq_time)
                self._m_occupancy.set(self._queued)
                break
        else:
            self._busy = False
            return
        self._busy = True
        tx = self.cell_time
        self.stats.busy_time += tx
        # serialize after any train still arithmetically in flight; in
        # pure per-cell runs _free_at is always <= now, so this reduces
        # to the legacy schedule(tx) with bit-identical timestamps
        start = self._free_at
        now = self.sim.now
        if start < now:
            start = now
        self._free_at = start + tx
        self.sim.schedule_at(start + tx, self._finish_transmission, cell)

    def _finish_transmission(self, cell: Cell) -> None:
        self.stats.transmitted += 1
        self._m_transmitted.inc()
        if self._down:
            # went down mid-transmission: the cell is lost on the wire
            self.stats.dropped_down += 1
            self.stats.dropped_down_wire += 1
            self._count_drop("link_down", "any")
        elif self._error_rng is not None and \
                self._error_rng.random() < self._error_rate:
            self.stats.dropped_errors += 1
            self._count_drop("error", "any")
        elif self.sink is not None:
            self.stats.delivered += 1
            delay = self.prop_delay
            if self._jitter_rng is not None:
                delay += self._jitter_rng.uniform(0.0, self._jitter)
            self.sim.schedule(delay, self.sink, cell)
        else:
            self.stats.dropped_no_sink += 1
            self._count_drop("no_sink", "any")
        self._start_transmission()

    # -- cell-train fast path --------------------------------------------

    def commit_train(self, train: CellTrain) -> None:
        """Scheduled entry point for a train commit (first departure due)."""
        self.enqueue_train(train)

    def enqueue_train(self, train: CellTrain) -> int:
        """Offer a whole train to the transmitter.

        Returns the number of cells committed arithmetically (0 when
        the train was expanded back into exact per-cell events).

        The fast path is taken only when it is provably equivalent to
        per-cell processing: transmitter idle or train-only backlog, no
        armed loss/error/jitter RNG (those draw once per transmitted
        cell — the stream must be preserved), a train-aware sink, and
        room in the buffer.  Everything else falls back to scheduling
        the legacy ``enqueue`` per cell at its exact departure time.

        **Horizon rule.**  Every pending event fires at some time
        ``H`` or later, and an event at time ``t`` can only create new
        departures at ``t`` or later, so departures *strictly before*
        ``H`` are final: no cross-traffic can still slip between them,
        and the wire schedule computed here is exactly what the
        per-cell path would have produced.  Cells due at or after
        ``H`` are split off and re-committed when their time comes —
        by then any interleaving traffic has committed ahead of them.
        """
        cells = train.cells
        n = len(cells)
        if (self._down or self._busy or self._queued
                or self._error_rng is not None
                or self._jitter_rng is not None
                or self.sink_train is None
                or n + self._train_inflight > self.buffer_cells):
            self._expand_train(train)
            return 0
        sim = self.sim
        times = train.times
        horizon = sim._next_event_time()
        if horizon is not None and times[n - 1] >= horizon:
            now = sim.now
            # a departure is safe if it precedes every pending event
            # (nothing can still commit ahead of it) or is already due
            # (this commit is the earliest event, so any same-time
            # rival enqueues after us — legacy order)
            k = 0
            while k < n and (times[k] < horizon or times[k] <= now):
                k += 1
            if k == 0:
                # inline-forwarded train whose first departure lies at
                # or beyond the next pending event: cross-traffic with
                # earlier departures may still commit — wait until due.
                # The deferral keeps this event's seq: among equal
                # timestamps the legacy per-cell events it stands for
                # were sequenced with THIS commit attempt, so a rival
                # scheduled later must not overtake it
                sim.reschedule_at(times[0], sim.current_seq,
                                  self.commit_train, train)
                return 0
            if k < n:
                rest = CellTrain(cells[k:], train.category, times[k:],
                                 train.pdu, charged=train.charged)
                del cells[k:]
                del times[k:]
                train.pdu = None
                sim.reschedule_at(rest.times[0], sim.current_seq,
                                  self.commit_train, rest)
                n = k
        tx = self.cell_time
        prop = self.prop_delay
        stats = self.stats
        stats.enqueued += n
        self._m_enqueued.inc(n)
        acct = self.acct
        ledger_on = acct is not NULL_ACCOUNT
        free = self._free_at
        fs = self._future_starts
        occ_max = 0
        for i in range(n):
            d = times[i]
            start = free if free > d else d
            if ledger_on:
                acct.dwell(start - d)
            free = start + tx
            times[i] = free + prop
            while fs and fs[0] <= d:
                fs.popleft()
            fs.append(start)
            if len(fs) > occ_max:
                occ_max = len(fs)
        stats.busy_time += tx * n
        self._free_at = free
        self._train_inflight += n
        # the legacy path walks every cell through the queue between
        # arrival and service start; replay the same gauge excursion
        # (peak depth seen, then drained) so snapshots stay identical
        self._m_occupancy.set(occ_max)
        self._m_occupancy.set(0)
        sim.schedule_at(times[0], self._deliver_train, train)
        if train.charged:
            sim.charge_cells(n - 1)
        return n

    def _expand_train(self, train: CellTrain) -> None:
        """Re-schedule a train as exact legacy per-cell enqueue events."""
        sim = self.sim
        now = sim.now
        enqueue = self.enqueue
        cat = train.category
        cells = train.cells
        times = train.times
        for i in range(len(cells)):
            t = times[i]
            sim.schedule_at(t if t > now else now, enqueue, cells[i], cat)

    def _deliver_train(self, train: CellTrain) -> None:
        """Fires at the train's first far-end arrival (``times`` holds
        arrivals).  Resolves the wire fate of every cell whose finish
        precedes the next pending event — by the horizon rule nothing
        can change link state before then — and hands the survivors to
        the train sink in one call.  Cells finishing at or beyond the
        horizon are re-delivered when their arrival comes round, so a
        fault or error-RNG arming event never bisects a decided batch.
        """
        sim = self.sim
        times = train.times
        cells = train.cells
        n = len(cells)
        prop = self.prop_delay
        horizon = sim._next_event_time()
        if n > 1 and horizon is not None and times[n - 1] - prop >= horizon:
            now = sim.now
            k = 1
            while k < n and (times[k] - prop < horizon
                             or times[k] - prop <= now):
                k += 1
            rest = CellTrain(cells[k:], train.category, times[k:],
                             train.pdu, charged=train.charged)
            del cells[k:]
            del times[k:]
            train.pdu = None
            # re-delivery inherits this event's seq for the same reason
            # commit continuations do: the legacy finish events for the
            # remaining cells were sequenced with this delivery
            sim.reschedule_at(rest.times[0], sim.current_seq,
                              self._deliver_train, rest)
            n = k
        self._train_inflight -= n
        stats = self.stats
        stats.transmitted += n
        self._m_transmitted.inc(n)
        sim.charge_cells(n - 1)
        outage = self._last_outage
        if not self._down and (outage is None or outage[1] <= times[0] - prop):
            if self._jitter_rng is None and self._error_rng is None:
                stats.delivered += n
                self.sink_train(train)
                return
        self._deliver_slow(train)

    def _deliver_slow(self, train: CellTrain) -> None:
        """Per-cell fate for a delivery window a fault event touched:
        an outage edge, or an error/jitter RNG armed mid-flight.  Each
        cell is judged by the link state at its own finish instant,
        exactly as the per-cell ``_finish_transmission`` would have."""
        stats = self.stats
        prop = self.prop_delay
        down_since = self._down_since
        outage = self._last_outage
        err_rng = self._error_rng
        err_rate = self._error_rate
        jit_rng = self._jitter_rng
        survivors = []
        surv_times = []
        for cell, arr in zip(train.cells, train.times):
            finish = arr - prop
            if (self._down and finish > down_since) or \
                    (outage is not None
                     and outage[0] < finish <= outage[1]):
                stats.dropped_down += 1
                stats.dropped_down_wire += 1
                self._count_drop("link_down", "any")
            elif err_rng is not None and err_rng.random() < err_rate:
                stats.dropped_errors += 1
                self._count_drop("error", "any")
            elif jit_rng is not None:
                stats.delivered += 1
                if self.sink is not None:
                    self.sim.schedule_at(
                        finish + (prop + jit_rng.uniform(0.0, self._jitter)),
                        self.sink, cell)
            else:
                stats.delivered += 1
                survivors.append(cell)
                surv_times.append(arr)
        if survivors:
            self.sink_train(CellTrain(
                survivors, train.category, surv_times,
                train.pdu if len(survivors) == len(train.cells) else None,
                charged=train.charged))

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the transmitter was busy."""
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / self.sim.now)
