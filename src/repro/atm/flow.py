"""Flow-level fidelity: background VCs as rate × duration segments.

In ``fidelity="hybrid"`` mode, traced foreground VCs (video streams,
conference AV — anything opened directly with ``open_vc``) keep full
cell-level simulation, while background VCs (the RPC/transport duplex
pairs under database queries, registration, facilitator chat) are
collapsed to flow-level: one :class:`FlowLane` per VC computes each
PDU's delivery time arithmetically from the shaper schedule plus the
path's cut-through pipeline latency, then applies every per-cell
counter — link, switch, AAL5, ledger — atomically in a single event.

The arithmetic mirrors the batched fast path on an uncontended path
(identical shaper calls, per-hop serialization + propagation + fabric
delay for the last cell), so hybrid timing matches full fidelity
except under cross-traffic contention on shared trunks — which is the
±tolerance the differential harness checks, not byte equality.

Outages still bite: a down link or crashed switch along the path eats
the burst with the same drop accounting the cell path would record, so
the conservation auditor balances in hybrid mode too.  Per-cell error
RNGs and policing are bypassed — background flows model capacity and
load, not wire-level loss; that is what "when hybrid is safe" in
DESIGN.md is about.
"""

from __future__ import annotations

from typing import List

from repro.atm.aal5 import TRAILER_SIZE
from repro.atm.cell import PAYLOAD_SIZE

__all__ = ["FlowLane"]


class _FlowCell:
    """Stand-in for the last cell of a flow-level PDU: just enough for
    the host's delivery bookkeeping (send-time key and hop count)."""

    __slots__ = ("seqno", "hops")

    def __init__(self, seqno: int, hops: int) -> None:
        self.seqno = seqno
        self.hops = hops


class FlowLane:
    """Flow-level transport for one background VC in hybrid mode."""

    __slots__ = ("vc", "links", "switches", "tail_latency",
                 "cell_equiv_events")

    def __init__(self, vc, links: List, switches: List) -> None:
        self.vc = vc
        self.links = links
        self.switches = switches
        # cut-through pipeline: once the last cell departs the shaper it
        # crosses each hop one serialization + propagation behind the
        # cells ahead of it, plus each fabric's fixed delay
        lat = 0.0
        for link in links:
            lat += link.cell_time + link.prop_delay
        for sw in switches:
            lat += sw.switching_delay
        self.tail_latency = lat
        # legacy event cost per cell on this path: the scheduled access
        # enqueue, finish + delivery per link, one fabric emit per
        # switch — charged so events_run stays comparable across modes
        self.cell_equiv_events = 1 + 2 * len(links) + len(switches)

    def send(self, payload: bytes) -> None:
        """Account the PDU's send side and schedule its delivery."""
        vc = self.vc
        src = vc.src
        sim = src.sim
        now = sim.now
        total = len(payload) + TRAILER_SIZE
        total += (-total) % PAYLOAD_SIZE
        n = total // PAYLOAD_SIZE
        sender = vc.sender
        first_seqno = sender._next_seqno
        sender._next_seqno += n
        sender.pdus_sent += 1
        sender.cells_sent += n
        vc.stats.pdus_sent += 1
        vc.stats.bytes_sent += len(payload)
        vc._m_pdus_sent.inc()
        vc.acct.sent(units=1, cells=n, nbytes=len(payload))
        src.acct.sent(units=1, cells=n, nbytes=len(payload))
        last_seqno = first_seqno + n - 1
        src._note_send_time(vc.vc_id, last_seqno, now)
        next_departure = vc.shaper.next_departure
        d = now
        for _ in range(n):
            d = next_departure(now)
        sim.schedule_at(d + self.tail_latency, self._deliver,
                        payload, last_seqno, n)

    def _deliver(self, payload: bytes, last_seqno: int, n: int) -> None:
        """The burst's single event: walk the path, apply per-cell
        equivalent counters, and hand the PDU to the receive binding."""
        vc = self.vc
        sim = vc.src.sim
        sim.charge_cells(n * self.cell_equiv_events - 1)
        links = self.links
        switches = self.switches
        nswitches = len(switches)
        cat_name = vc.contract.category.name
        for i, link in enumerate(links):
            if link.down:
                # the whole burst dies at this hop; upstream hops have
                # already balanced their books
                link.stats.dropped_down += n
                link.acct.drop(n)
                link._m_drops.inc(n)
                link._metrics.counter(
                    "link", "drops", link=link._label,
                    reason="link_down", category=cat_name).inc(n)
                sim.recorder.record(
                    "atm", "cell_drop", severity="warning",
                    link=link._label, reason="link_down",
                    category=cat_name)
                return
            stats = link.stats
            stats.enqueued += n
            stats.transmitted += n
            stats.delivered += n
            stats.busy_time += link.cell_time * n
            link._m_enqueued.inc(n)
            link._m_transmitted.inc(n)
            if i < nswitches:
                sw = switches[i]
                sw.stats.received += n
                sw._m_received.inc(n)
                if sw.crashed:
                    sw.stats.crash_dropped += n
                    sw._m_crash_dropped.inc(n)
                    return
                sw.stats.switched += n
                sw.stats.emitted += n
                sw._m_switched.inc(n)
        dst = vc.dst
        entry = dst._rx.get(vc.last_vci)
        if not vc.open or entry is None:
            dst.unbound_cells += n
            dst._m_unbound.inc(n)
            return
        rx = entry[0]
        rx.cells_received += n
        rx.cells_delivered += n
        rx.pdus_delivered += 1
        rx._on_pdu(payload, _FlowCell(last_seqno, nswitches))
