"""ATM cells.

An ATM cell is 53 octets: a 5-octet header and a 48-octet payload.
We implement the UNI header layout (ITU-T I.361):

======  ====  =========================================
field   bits  meaning
======  ====  =========================================
GFC      4    generic flow control (unused, 0)
VPI      8    virtual path identifier
VCI     16    virtual channel identifier
PTI      3    payload type; bit 0 of PTI marks the last
              cell of an AAL5 CPCS-PDU, bit 2 marks OAM
CLP      1    cell loss priority (1 = drop first)
HEC      8    header error control, CRC-8 over octets 1-4
======  ====  =========================================

Cells carry their payload as ``bytes`` and a few simulation-only
annotations (origin timestamp, sequence number) that a real wire would
not carry; those never enter the encoded form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.util.bitstream import BitReader, BitWriter
from repro.util.crc import crc8_hec
from repro.util.errors import DecodingError

CELL_SIZE = 53
HEADER_SIZE = 5
PAYLOAD_SIZE = 48

#: PTI values (3 bits).  Bit 0 = AAL-indicate (last cell of an AAL5
#: frame); bit 1 = explicit forward congestion indication; bit 2 = OAM.
PTI_USER_0 = 0b000
PTI_USER_LAST = 0b001
PTI_USER_CONGESTION = 0b010
PTI_OAM_SEGMENT = 0b100

MAX_VPI = 0xFF
MAX_VCI = 0xFFFF


@dataclass(slots=True)
class CellHeader:
    """Decoded 5-octet UNI cell header."""

    vpi: int
    vci: int
    pti: int = PTI_USER_0
    clp: int = 0
    gfc: int = 0

    @classmethod
    def _unchecked(cls, vpi: int, vci: int, pti: int, clp: int,
                   gfc: int) -> "CellHeader":
        """Construct without range validation — switching fast path.

        Only for fields copied from an already-validated header or a
        VC table entry; skips ``__post_init__`` and its five range
        checks per relabelled cell.
        """
        hdr = cls.__new__(cls)
        hdr.vpi = vpi
        hdr.vci = vci
        hdr.pti = pti
        hdr.clp = clp
        hdr.gfc = gfc
        return hdr

    def __post_init__(self) -> None:
        if not 0 <= self.vpi <= MAX_VPI:
            raise ValueError(f"VPI out of range: {self.vpi}")
        if not 0 <= self.vci <= MAX_VCI:
            raise ValueError(f"VCI out of range: {self.vci}")
        if not 0 <= self.pti <= 0b111:
            raise ValueError(f"PTI out of range: {self.pti}")
        if self.clp not in (0, 1):
            raise ValueError(f"CLP must be 0 or 1: {self.clp}")
        if not 0 <= self.gfc <= 0xF:
            raise ValueError(f"GFC out of range: {self.gfc}")

    @property
    def is_last_of_frame(self) -> bool:
        """True when PTI marks this as the final cell of an AAL5 PDU."""
        return bool(self.pti & 0b001) and not (self.pti & 0b100)

    def encode(self) -> bytes:
        """Render the 5-octet header including the computed HEC."""
        w = BitWriter()
        w.write(self.gfc, 4)
        w.write(self.vpi, 8)
        w.write(self.vci, 16)
        w.write(self.pti, 3)
        w.write(self.clp, 1)
        first4 = w.getvalue()
        return first4 + bytes([crc8_hec(first4)])

    @classmethod
    def decode(cls, data: bytes) -> "CellHeader":
        """Parse a 5-octet header, verifying the HEC."""
        if len(data) != HEADER_SIZE:
            raise DecodingError(f"cell header must be 5 octets, got {len(data)}")
        if crc8_hec(data[:4]) != data[4]:
            raise DecodingError("cell header HEC mismatch (corrupted header)")
        r = BitReader(data)
        gfc = r.read(4)
        vpi = r.read(8)
        vci = r.read(16)
        pti = r.read(3)
        clp = r.read(1)
        return cls(vpi=vpi, vci=vci, pti=pti, clp=clp, gfc=gfc)


@dataclass(slots=True)
class Cell:
    """A 53-octet ATM cell plus simulation bookkeeping."""

    header: CellHeader
    payload: bytes
    #: simulated time the cell entered the network (for delay stats)
    created_at: float = 0.0
    #: per-VC sequence number assigned by the sender (loss diagnostics)
    seqno: int = 0
    #: hop count, incremented at each switch traversal
    hops: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if len(self.payload) != PAYLOAD_SIZE:
            raise ValueError(
                f"ATM cell payload must be exactly {PAYLOAD_SIZE} octets, "
                f"got {len(self.payload)}"
            )

    def encode(self) -> bytes:
        """The 53 octets as they would appear on the wire."""
        return self.header.encode() + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "Cell":
        if len(data) != CELL_SIZE:
            raise DecodingError(f"ATM cell must be 53 octets, got {len(data)}")
        return cls(header=CellHeader.decode(data[:HEADER_SIZE]),
                   payload=data[HEADER_SIZE:])

    def with_vc(self, vpi: int, vci: int) -> "Cell":
        """Copy of this cell relabelled onto another VP/VC (switching)."""
        hdr = CellHeader(vpi=vpi, vci=vci, pti=self.header.pti,
                         clp=self.header.clp, gfc=self.header.gfc)
        return Cell(header=hdr, payload=self.payload,
                    created_at=self.created_at, seqno=self.seqno,
                    hops=self.hops)
