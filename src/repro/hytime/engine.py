"""HyTime document processing model (Fig 2.3).

"The application calls the HyTime engine, which in turn calls the SGML
parser.  As it is parsing the document, the parser informs the HyTime
engine about everything that it encounters...  After the document has
been parsed, the application may query the HyTime engine in various
ways.  The engine assumes responsibility for determining where things
are on FCS schedules, for resolving document location elements to the
data they indicate."

Document conventions understood by this engine:

* the root element declares ``modules="base location ..."``;
* ``<clink anchor="..." target="...">`` declares a hyperlink between
  name-space addresses (ids);
* ``<fcs id="..">`` with ``<axis name=".." unit=".." extent="..">``
  children and ``<event name=".." axis=".." start=".." length="..">``
  children declares schedules;
* any element with an ``id`` enters the name space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hytime.location import (
    Hyperlink, NameSpaceAddress, build_name_space, resolve_address,
)
from repro.hytime.modules import (
    HyTimeModule, parse_module_names, validate_modules,
)
from repro.hytime.scheduling import Axis, Event, FiniteCoordinateSpace
from repro.hytime.sgml import Dtd, SgmlElement, SgmlParser
from repro.util.errors import DecodingError


@dataclass
class HyTimeDocument:
    """The engine-internal structure built while parsing (Fig 2.3)."""

    root: SgmlElement
    modules: List[HyTimeModule]
    name_space: Dict[str, SgmlElement]
    hyperlinks: List[Hyperlink]
    schedules: Dict[str, FiniteCoordinateSpace]

    def resolve(self, name: str) -> SgmlElement:
        return resolve_address(NameSpaceAddress(name), self.root,
                               name_space=self.name_space)

    def links_from(self, anchor_id: str) -> List[Hyperlink]:
        return [l for l in self.hyperlinks
                if isinstance(l.anchor, NameSpaceAddress)
                and l.anchor.name == anchor_id]

    def events_at(self, fcs_name: str, axis: str, point: float) -> List[str]:
        fcs = self.schedules.get(fcs_name)
        if fcs is None:
            raise DecodingError(f"no FCS named {fcs_name!r}")
        return [e.name for e in fcs.overlapping(axis, point)]


class HyTimeEngine:
    """Parses documents and answers structural queries."""

    def __init__(self, dtd: Optional[Dtd] = None) -> None:
        self.parser = SgmlParser(dtd)
        self.documents_processed = 0

    def process(self, text: str) -> HyTimeDocument:
        """Full document processing: parse, validate modules, build the
        name space, collect hyperlinks, populate FCS schedules."""
        root = self.parser.parse(text)
        declared = root.attributes.get("modules", "base").split()
        modules = parse_module_names(declared)
        validate_modules(modules)
        name_space = build_name_space(root)

        hyperlinks: List[Hyperlink] = []
        if HyTimeModule.HYPERLINKS in modules:
            for clink in root.find_all("clink"):
                anchor = clink.attributes.get("anchor")
                target = clink.attributes.get("target")
                if anchor is None or target is None:
                    raise DecodingError("<clink> needs anchor and target")
                hyperlinks.append(Hyperlink(
                    anchor=NameSpaceAddress(anchor),
                    target=NameSpaceAddress(target)))
            # links must resolve — HyTime validates addressability
            for link in hyperlinks:
                link.endpoints(root)
        elif root.find_all("clink"):
            raise DecodingError(
                "document uses <clink> without the hyperlinks module")

        schedules: Dict[str, FiniteCoordinateSpace] = {}
        if HyTimeModule.SCHEDULING in modules:
            for fcs_el in root.find_all("fcs"):
                fcs_id = fcs_el.attributes.get("id")
                if fcs_id is None:
                    raise DecodingError("<fcs> needs an id")
                axes = []
                for axis_el in fcs_el.children:
                    if axis_el.name != "axis":
                        continue
                    try:
                        axes.append(Axis(
                            name=axis_el.attributes["name"],
                            unit=axis_el.attributes.get("unit", "unit"),
                            extent=float(axis_el.attributes["extent"])))
                    except (KeyError, ValueError) as exc:
                        raise DecodingError(f"malformed <axis>: {exc}") from exc
                fcs = FiniteCoordinateSpace(fcs_id, axes)
                for ev_el in fcs_el.children:
                    if ev_el.name != "event":
                        continue
                    try:
                        name = ev_el.attributes["name"]
                        axis = ev_el.attributes["axis"]
                        start = float(ev_el.attributes["start"])
                        length = float(ev_el.attributes["length"])
                    except (KeyError, ValueError) as exc:
                        raise DecodingError(f"malformed <event>: {exc}") from exc
                    fcs.schedule(Event(name=name,
                                       extents={axis: (start, length)}))
                schedules[fcs_id] = fcs
        elif root.find_all("fcs"):
            raise DecodingError(
                "document uses <fcs> without the scheduling module")

        self.documents_processed += 1
        return HyTimeDocument(root=root, modules=modules,
                              name_space=name_space,
                              hyperlinks=hyperlinks, schedules=schedules)
