"""HyTime location addressing (Fig 2.2, §2.2.1.3).

Three address forms:

1. **name-space**: a unique name — "the most robust form of address in
   that it can survive changes in the object being addressed";
2. **coordinate**: a position along axes — here, a path of child
   indices in the document tree, or a (first, length) span over an
   element's children;
3. **semantic**: a construct interpreted by an application-supplied
   resolver ("HyTime passes semantic addresses to interpretation
   programs").

All three resolve to elements; coordinate and semantic addresses can
be converted to name-space addresses where the target carries an id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

from repro.hytime.sgml import SgmlElement
from repro.util.errors import DecodingError


@dataclass(frozen=True)
class NameSpaceAddress:
    """Address by unique name (the basis of hyperlinking)."""

    name: str


@dataclass(frozen=True)
class CoordinateAddress:
    """Address by position: child-index path from the document root."""

    path: tuple

    def __init__(self, path: Sequence[int]) -> None:
        object.__setattr__(self, "path", tuple(int(p) for p in path))


@dataclass(frozen=True)
class SemanticAddress:
    """Address by semantic construct, resolved by an interpreter."""

    query: str


Address = Union[NameSpaceAddress, CoordinateAddress, SemanticAddress]
SemanticResolver = Callable[[str, SgmlElement], Optional[SgmlElement]]


def build_name_space(root: SgmlElement) -> Dict[str, SgmlElement]:
    """Index every element carrying an ``id`` attribute."""
    index: Dict[str, SgmlElement] = {}

    def walk(el: SgmlElement) -> None:
        ident = el.attributes.get("id")
        if ident is not None:
            if ident in index:
                raise DecodingError(f"duplicate id {ident!r} in document")
            index[ident] = el
        for child in el.children:
            walk(child)

    walk(root)
    return index


def resolve_address(address: Address, root: SgmlElement, *,
                    name_space: Optional[Dict[str, SgmlElement]] = None,
                    semantic_resolver: Optional[SemanticResolver] = None
                    ) -> SgmlElement:
    """Resolve any of the three address forms to an element."""
    if isinstance(address, NameSpaceAddress):
        space = name_space if name_space is not None else build_name_space(root)
        el = space.get(address.name)
        if el is None:
            raise DecodingError(f"no element named {address.name!r}")
        return el
    if isinstance(address, CoordinateAddress):
        node = root
        for i, index in enumerate(address.path):
            if not 0 <= index < len(node.children):
                raise DecodingError(
                    f"coordinate path {list(address.path)} leaves the tree "
                    f"at step {i}")
            node = node.children[index]
        return node
    if isinstance(address, SemanticAddress):
        if semantic_resolver is None:
            raise DecodingError(
                "semantic addressing needs an interpretation program")
        el = semantic_resolver(address.query, root)
        if el is None:
            raise DecodingError(
                f"semantic address {address.query!r} resolved to nothing")
        return el
    raise DecodingError(f"unknown address form {type(address).__name__}")


def to_name_space(address: Address, root: SgmlElement, *,
                  semantic_resolver: Optional[SemanticResolver] = None
                  ) -> NameSpaceAddress:
    """Convert coordinate/semantic addresses to name-space form so all
    three can be linked uniformly (§2.2.1.3)."""
    el = resolve_address(address, root, semantic_resolver=semantic_resolver)
    ident = el.attributes.get("id")
    if ident is None:
        raise DecodingError(
            f"target <{el.name}> has no id; cannot normalise the address")
    return NameSpaceAddress(ident)


@dataclass
class Hyperlink:
    """A traversable link between two addressed endpoints."""

    anchor: Address
    target: Address
    link_type: str = "clink"

    def endpoints(self, root: SgmlElement, *,
                  semantic_resolver: Optional[SemanticResolver] = None
                  ) -> tuple:
        return (resolve_address(self.anchor, root,
                                semantic_resolver=semantic_resolver),
                resolve_address(self.target, root,
                                semantic_resolver=semantic_resolver))
