"""A minimal SGML parser.

HyTime is "an extension to SGML so that markup and DTDs can be used to
describe the structure of multimedia documents" (§2.2.1.1).  This
parser covers the subset HyTime documents in this repo use: start/end
tags with quoted attributes, empty elements (``<e/>``), character data
with the standard entities, comments, and DTDs given programmatically
as :class:`ElementDecl` tables (element name -> permitted children,
required attributes).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.util.errors import DecodingError


@dataclass
class SgmlElement:
    """A parsed element: generic identifier, attributes, content."""

    name: str
    attributes: Dict[str, str] = field(default_factory=dict)
    children: List["SgmlElement"] = field(default_factory=list)
    text: str = ""
    parent: Optional["SgmlElement"] = None

    def find_all(self, name: str) -> List["SgmlElement"]:
        """All descendants (document order) with the given name."""
        found = []
        for child in self.children:
            if child.name == name:
                found.append(child)
            found.extend(child.find_all(name))
        return found

    def attr(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.attributes.get(name, default)

    def full_text(self) -> str:
        parts = [self.text]
        parts.extend(c.full_text() for c in self.children)
        return "".join(parts)

    def path(self) -> List[int]:
        """Coordinate path: child indices from the root to this node."""
        node, path = self, []
        while node.parent is not None:
            path.append(node.parent.children.index(node))
            node = node.parent
        path.reverse()
        return path


@dataclass
class ElementDecl:
    """One DTD element declaration."""

    name: str
    #: permitted child element names; None means ANY; () means EMPTY
    children: Optional[Sequence[str]] = None
    required_attributes: Sequence[str] = ()
    allow_text: bool = True


class Dtd:
    """A document type definition: element declarations + root name."""

    def __init__(self, root: str, declarations: Sequence[ElementDecl]) -> None:
        self.root = root
        self.declarations = {d.name: d for d in declarations}

    def validate(self, element: SgmlElement, _is_root: bool = True) -> None:
        if _is_root and element.name != self.root:
            raise DecodingError(
                f"DTD expects root <{self.root}>, got <{element.name}>")
        decl = self.declarations.get(element.name)
        if decl is None:
            raise DecodingError(f"element <{element.name}> not declared in DTD")
        for attr in decl.required_attributes:
            if attr not in element.attributes:
                raise DecodingError(
                    f"<{element.name}> missing required attribute {attr!r}")
        if decl.children == () and element.children:
            raise DecodingError(f"<{element.name}> is declared EMPTY")
        if not decl.allow_text and element.text.strip():
            raise DecodingError(
                f"<{element.name}> does not allow character data")
        if decl.children is not None:
            permitted = set(decl.children)
            for child in element.children:
                if child.name not in permitted:
                    raise DecodingError(
                        f"<{child.name}> not permitted inside "
                        f"<{element.name}>")
        for child in element.children:
            self.validate(child, _is_root=False)


_TOKEN = re.compile(
    r"<!--.*?-->"                                  # comment
    r"|<!\[CDATA\[.*?\]\]>"                        # CDATA
    r"|</([A-Za-z][\w.-]*)\s*>"                    # end tag
    r"|<([A-Za-z][\w.-]*)((?:\s+[\w.-]+\s*=\s*\"[^\"]*\")*)\s*(/?)>"  # start
    , re.DOTALL)

_ATTR = re.compile(r"([\w.-]+)\s*=\s*\"([^\"]*)\"")

_ENTITIES = {"&amp;": "&", "&lt;": "<", "&gt;": ">", "&quot;": '"',
             "&apos;": "'"}


def _decode_text(raw: str) -> str:
    for ent, char in _ENTITIES.items():
        raw = raw.replace(ent, char)
    return raw


class SgmlParser:
    """Parse SGML text into an element tree, optionally DTD-validated."""

    def __init__(self, dtd: Optional[Dtd] = None) -> None:
        self.dtd = dtd

    def parse(self, text: str) -> SgmlElement:
        # strip doctype/processing instructions
        text = re.sub(r"<\?.*?\?>|<!DOCTYPE[^>]*>", "", text, flags=re.DOTALL)
        root: Optional[SgmlElement] = None
        stack: List[SgmlElement] = []
        pos = 0
        for match in _TOKEN.finditer(text):
            gap = text[pos:match.start()]
            if gap.strip():
                if not stack:
                    raise DecodingError(
                        f"character data outside root: {gap.strip()[:40]!r}")
                stack[-1].text += _decode_text(gap)
            pos = match.end()
            whole = match.group(0)
            if whole.startswith("<!--"):
                continue
            if whole.startswith("<![CDATA["):
                if not stack:
                    raise DecodingError("CDATA outside root")
                stack[-1].text += whole[9:-3]
                continue
            end_name, start_name, attr_text, selfclose = (
                match.group(1), match.group(2), match.group(3), match.group(4))
            if end_name:
                if not stack or stack[-1].name != end_name:
                    raise DecodingError(
                        f"mismatched end tag </{end_name}>")
                closed = stack.pop()
                if not stack:
                    root = closed
            else:
                element = SgmlElement(
                    name=start_name,
                    attributes={k: _decode_text(v)
                                for k, v in _ATTR.findall(attr_text or "")})
                if stack:
                    element.parent = stack[-1]
                    stack[-1].children.append(element)
                elif root is not None:
                    raise DecodingError("multiple root elements")
                if selfclose:
                    if not stack and root is None:
                        root = element
                else:
                    stack.append(element)
        tail = text[pos:]
        if tail.strip():
            raise DecodingError(f"character data after root: {tail.strip()[:40]!r}")
        if stack:
            raise DecodingError(f"unclosed element <{stack[-1].name}>")
        if root is None:
            raise DecodingError("no root element found")
        if self.dtd is not None:
            self.dtd.validate(root)
        return root


def write_sgml(element: SgmlElement, indent: int = 0) -> str:
    """Serialise an element tree back to SGML text."""
    pad = "  " * indent
    attrs = "".join(f' {k}="{_encode_text(v)}"'
                    for k, v in element.attributes.items())
    if not element.children and not element.text:
        return f"{pad}<{element.name}{attrs}/>"
    parts = [f"{pad}<{element.name}{attrs}>"]
    if element.text:
        parts.append(pad + "  " + _encode_text(element.text).strip())
    for child in element.children:
        parts.append(write_sgml(child, indent + 1))
    parts.append(f"{pad}</{element.name}>")
    return "\n".join(parts)


def _encode_text(raw: str) -> str:
    raw = raw.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    return raw.replace('"', "&quot;")
