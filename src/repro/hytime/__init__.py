"""HyTime (ISO/IEC 10744) subset — the baseline MHEG is compared against.

Chapter 2 of the thesis weighs HyTime against MHEG and chooses MHEG
for MITS because HyTime documents must be *parsed and resolved* at
presentation time while MHEG objects interchange in final form
(§2.3.2).  To make that comparison measurable (benchmark EX.1) rather
than rhetorical, this subpackage implements a working subset:

* :mod:`repro.hytime.sgml` — an SGML parser (tags, attributes,
  entities, DTD element declarations with content-model checking);
* :mod:`repro.hytime.modules` — the module system and its dependency
  graph (Fig 2.1);
* :mod:`repro.hytime.location` — the three address forms of Fig 2.2:
  name-space, coordinate, and semantic addressing;
* :mod:`repro.hytime.scheduling` — finite coordinate spaces, axes,
  events, and the rendition mapping between FCSs;
* :mod:`repro.hytime.engine` — the document processing model of
  Fig 2.3: application -> HyTime engine -> SGML parser.
"""

from repro.hytime.sgml import SgmlParser, SgmlElement, Dtd, ElementDecl
from repro.hytime.modules import HyTimeModule, validate_modules, MODULE_DEPENDENCIES
from repro.hytime.location import (
    NameSpaceAddress, CoordinateAddress, SemanticAddress, resolve_address,
)
from repro.hytime.scheduling import Axis, Event, FiniteCoordinateSpace, Rendition
from repro.hytime.engine import HyTimeEngine, HyTimeDocument

__all__ = [
    "SgmlParser",
    "SgmlElement",
    "Dtd",
    "ElementDecl",
    "HyTimeModule",
    "validate_modules",
    "MODULE_DEPENDENCIES",
    "NameSpaceAddress",
    "CoordinateAddress",
    "SemanticAddress",
    "resolve_address",
    "Axis",
    "Event",
    "FiniteCoordinateSpace",
    "Rendition",
    "HyTimeEngine",
    "HyTimeDocument",
]
