"""Finite coordinate spaces, events, and rendition (§2.2.1.2-2.2.1.3).

"The scheduling module places document objects in Finite Coordinate
Spaces (FCS), which are defined as collections of axes.  Events are
located on the axes of a FCS."  The rendition module "specifies how
events in one FCS can be mapped to another FCS — typically the first
FCS provides a generic representation while the second specifies the
layout for a particular presentation."

Synchronisation in HyTime is coordinate manipulation: an event's
position can be a function of another event's position, which
:meth:`FiniteCoordinateSpace.place_after` and friends provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.util.errors import DecodingError


@dataclass(frozen=True)
class Axis:
    """One dimension of an FCS, with a measurement unit."""

    name: str
    unit: str                  # e.g. "second", "pixel"
    extent: float              # size of the addressable range

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise ValueError(f"axis {self.name!r} needs a positive extent")


@dataclass
class Event:
    """A document object placed in an FCS: per-axis (start, length)."""

    name: str
    extents: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def start(self, axis: str) -> float:
        return self.extents[axis][0]

    def length(self, axis: str) -> float:
        return self.extents[axis][1]

    def end(self, axis: str) -> float:
        start, length = self.extents[axis]
        return start + length


class FiniteCoordinateSpace:
    """A collection of axes holding scheduled events."""

    def __init__(self, name: str, axes: List[Axis]) -> None:
        if not axes:
            raise ValueError("an FCS needs at least one axis")
        names = [a.name for a in axes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate axis names")
        self.name = name
        self.axes = {a.name: a for a in axes}
        self.events: Dict[str, Event] = {}

    def schedule(self, event: Event) -> Event:
        """Place an event, checking every extent fits its axis."""
        if event.name in self.events:
            raise DecodingError(f"event {event.name!r} already scheduled")
        for axis_name, (start, length) in event.extents.items():
            axis = self.axes.get(axis_name)
            if axis is None:
                raise DecodingError(
                    f"event {event.name!r} uses unknown axis {axis_name!r}")
            if length < 0 or start < 0 or start + length > axis.extent:
                raise DecodingError(
                    f"event {event.name!r} extent ({start}, {length}) falls "
                    f"outside axis {axis_name!r} (0..{axis.extent})")
        self.events[event.name] = event
        return event

    def place_after(self, name: str, other: str, axis: str, length: float,
                    gap: float = 0.0, **extra_axes) -> Event:
        """Synchronisation: start *name* where *other* ends (+gap)."""
        try:
            prev = self.events[other]
        except KeyError as exc:
            raise DecodingError(f"no event {other!r} to align with") from exc
        extents = {axis: (prev.end(axis) + gap, length)}
        for ax, span in extra_axes.items():
            extents[ax] = tuple(span)
        return self.schedule(Event(name=name, extents=extents))

    def place_with(self, name: str, other: str, axis: str, length: float,
                   **extra_axes) -> Event:
        """Synchronisation: start *name* together with *other*."""
        try:
            prev = self.events[other]
        except KeyError as exc:
            raise DecodingError(f"no event {other!r} to align with") from exc
        extents = {axis: (prev.start(axis), length)}
        for ax, span in extra_axes.items():
            extents[ax] = tuple(span)
        return self.schedule(Event(name=name, extents=extents))

    def overlapping(self, axis: str, point: float) -> List[Event]:
        """Events whose extent on *axis* covers *point* (presentation
        queries: 'what is on screen at t?')."""
        out = []
        for event in self.events.values():
            if axis in event.extents:
                start, length = event.extents[axis]
                if start <= point < start + length:
                    out.append(event)
        return sorted(out, key=lambda e: e.name)

    def timeline(self, axis: str) -> List[Tuple[float, float, str]]:
        """(start, end, event name) along *axis*, ordered by start."""
        out = []
        for event in self.events.values():
            if axis in event.extents:
                out.append((event.start(axis), event.end(axis), event.name))
        return sorted(out)


@dataclass
class Rendition:
    """A mapping from a source FCS to a target FCS.

    Each axis of the source maps linearly (scale + offset) onto an
    axis of the target — e.g. generic time in seconds onto a
    presentation timeline, or abstract layout units onto pixels.
    """

    source: FiniteCoordinateSpace
    target: FiniteCoordinateSpace
    #: source axis -> (target axis, scale, offset)
    axis_map: Dict[str, Tuple[str, float, float]]

    def project(self) -> List[Event]:
        """Map every source event into the target FCS (and schedule it)."""
        projected = []
        for event in self.source.events.values():
            extents: Dict[str, Tuple[float, float]] = {}
            for axis_name, (start, length) in event.extents.items():
                mapping = self.axis_map.get(axis_name)
                if mapping is None:
                    raise DecodingError(
                        f"no rendition mapping for axis {axis_name!r}")
                target_axis, scale, offset = mapping
                extents[target_axis] = (start * scale + offset,
                                        length * scale)
            projected.append(self.target.schedule(
                Event(name=event.name, extents=extents)))
        return projected
