"""HyTime modules and their inter-dependencies (Fig 2.1).

"HyTime is designed to be used modularly.  There is one required
module and a number of interdependent optional modules...  Every
HyTime document states what modules and options are needed for its
processing."
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Set

from repro.util.errors import DecodingError


class HyTimeModule(enum.Enum):
    BASE = "base"
    MEASUREMENT = "measurement"
    LOCATION = "location"        # location address module
    HYPERLINKS = "hyperlinks"
    SCHEDULING = "scheduling"
    RENDITION = "rendition"


#: module -> modules it requires (Fig 2.1)
MODULE_DEPENDENCIES: Dict[HyTimeModule, FrozenSet[HyTimeModule]] = {
    HyTimeModule.BASE: frozenset(),
    HyTimeModule.MEASUREMENT: frozenset({HyTimeModule.BASE}),
    HyTimeModule.LOCATION: frozenset({HyTimeModule.BASE}),
    HyTimeModule.HYPERLINKS: frozenset({HyTimeModule.BASE,
                                        HyTimeModule.LOCATION}),
    HyTimeModule.SCHEDULING: frozenset({HyTimeModule.BASE,
                                        HyTimeModule.MEASUREMENT}),
    HyTimeModule.RENDITION: frozenset({HyTimeModule.BASE,
                                       HyTimeModule.MEASUREMENT,
                                       HyTimeModule.SCHEDULING}),
}


def dependency_closure(modules: Iterable[HyTimeModule]) -> Set[HyTimeModule]:
    """All modules needed to support *modules* (including themselves
    and the always-required base module)."""
    needed: Set[HyTimeModule] = {HyTimeModule.BASE}
    frontier = list(modules)
    while frontier:
        mod = frontier.pop()
        if mod in needed:
            continue
        needed.add(mod)
        frontier.extend(MODULE_DEPENDENCIES[mod])
    return needed


def validate_modules(declared: Iterable[HyTimeModule]) -> None:
    """Check a document's declared module set is dependency-complete."""
    declared_set = set(declared)
    if HyTimeModule.BASE not in declared_set:
        raise DecodingError("the base module is required by all documents")
    for mod in declared_set:
        missing = MODULE_DEPENDENCIES[mod] - declared_set
        if missing:
            names = ", ".join(sorted(m.value for m in missing))
            raise DecodingError(
                f"module {mod.value!r} requires undeclared module(s): {names}")


def parse_module_names(names: Iterable[str]) -> List[HyTimeModule]:
    out = []
    for name in names:
        try:
            out.append(HyTimeModule(name))
        except ValueError as exc:
            raise DecodingError(f"unknown HyTime module {name!r}") from exc
    return out
