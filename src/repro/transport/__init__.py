"""Transport layer: reliable messaging and RPC over ATM virtual circuits.

The thesis's client–server model (Fig 3.5) has user sites running a
client module that issues requests — ``Get_List_Doc``,
``Get_Selected_Doc`` — to a database server, with responses and media
streams flowing back over the ATM network.  This subpackage builds the
stack those sit on:

* :mod:`repro.transport.wire` — a compact self-describing binary
  encoding for python values (the request/response bodies);
* :mod:`repro.transport.messages` — typed message framing with
  correlation ids;
* :mod:`repro.transport.connection` — a sliding-window ARQ giving
  reliable, ordered message delivery over lossy AAL5 frames;
* :mod:`repro.transport.rpc` — request/response endpoints with named
  methods, plus one-way streams for media delivery.
"""

from repro.transport.wire import dump_value, load_value
from repro.transport.messages import Message, MessageType
from repro.transport.connection import Connection
from repro.transport.rpc import RpcClient, RpcServer, RpcError, StreamReceiver

__all__ = [
    "dump_value",
    "load_value",
    "Message",
    "MessageType",
    "Connection",
    "RpcClient",
    "RpcServer",
    "RpcError",
    "StreamReceiver",
]
