"""Self-describing binary encoding for request/response bodies.

A small tagged format (one tag byte, big-endian lengths) covering the
value types MITS messages need: None, bool, int, float, bytes, str,
list, and str-keyed dict.  It is *not* the MHEG interchange encoding —
MHEG objects travel as ASN.1 produced by :mod:`repro.mheg.codec`; this
format frames the control plane around them (method names, object
ids, query parameters, and opaque ASN.1 blobs as ``bytes``).
"""

from __future__ import annotations

import struct
from typing import Any

from repro.util.errors import DecodingError, EncodingError

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_BYTES = 0x05
_T_STR = 0x06
_T_LIST = 0x07
_T_DICT = 0x08

#: recursion guard: no real MITS message nests this deep
_MAX_DEPTH = 32


def dump_value(value: Any) -> bytes:
    """Encode *value* to bytes.  Raises EncodingError for alien types."""
    out = bytearray()
    _encode(value, out, 0)
    return bytes(out)


def _encode(value: Any, out: bytearray, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise EncodingError("value nests too deeply to encode")
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1,
                             "big", signed=True)
        out.append(_T_INT)
        out.extend(struct.pack(">I", len(raw)))
        out.extend(raw)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(_T_BYTES)
        out.extend(struct.pack(">I", len(data)))
        out.extend(data)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_T_STR)
        out.extend(struct.pack(">I", len(data)))
        out.extend(data)
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out.extend(struct.pack(">I", len(value)))
        for item in value:
            _encode(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out.extend(struct.pack(">I", len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise EncodingError(
                    f"dict keys must be str, got {type(key).__name__}")
            _encode(key, out, depth + 1)
            _encode(item, out, depth + 1)
    else:
        raise EncodingError(f"cannot encode {type(value).__name__}")


def load_value(data: bytes) -> Any:
    """Decode bytes produced by :func:`dump_value`."""
    value, pos = _decode(data, 0, 0)
    if pos != len(data):
        raise DecodingError(f"{len(data) - pos} trailing bytes after value")
    return value


def _read_len(data: bytes, pos: int) -> tuple[int, int]:
    if pos + 4 > len(data):
        raise DecodingError("truncated length field")
    return struct.unpack_from(">I", data, pos)[0], pos + 4


def _decode(data: bytes, pos: int, depth: int) -> tuple[Any, int]:
    if depth > _MAX_DEPTH:
        raise DecodingError("value nests too deeply to decode")
    if pos >= len(data):
        raise DecodingError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        n, pos = _read_len(data, pos)
        if pos + n > len(data):
            raise DecodingError("truncated int")
        return int.from_bytes(data[pos:pos + n], "big", signed=True), pos + n
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise DecodingError("truncated float")
        return struct.unpack_from(">d", data, pos)[0], pos + 8
    if tag == _T_BYTES:
        n, pos = _read_len(data, pos)
        if pos + n > len(data):
            raise DecodingError("truncated bytes")
        return data[pos:pos + n], pos + n
    if tag == _T_STR:
        n, pos = _read_len(data, pos)
        if pos + n > len(data):
            raise DecodingError("truncated str")
        try:
            return data[pos:pos + n].decode("utf-8"), pos + n
        except UnicodeDecodeError as exc:
            raise DecodingError(f"invalid utf-8 in str: {exc}") from exc
    if tag == _T_LIST:
        n, pos = _read_len(data, pos)
        items = []
        for _ in range(n):
            item, pos = _decode(data, pos, depth + 1)
            items.append(item)
        return items, pos
    if tag == _T_DICT:
        n, pos = _read_len(data, pos)
        result = {}
        for _ in range(n):
            key, pos = _decode(data, pos, depth + 1)
            if not isinstance(key, str):
                raise DecodingError("dict key is not a str")
            value, pos = _decode(data, pos, depth + 1)
            result[key] = value
        return result, pos
    raise DecodingError(f"unknown wire tag 0x{tag:02x}")
