"""Reliable ordered message delivery over a lossy duplex VC.

AAL5 gives loss *detection* (a dropped cell fails the frame CRC) but
no recovery, so the connection implements a go-back-N sliding-window
ARQ:

* every DATA-bearing message carries a sequence number; the receiver
  delivers in order and discards out-of-order arrivals (go-back-N);
* every message (including bare ACKs) carries the cumulative ack —
  the next in-order sequence the receiver expects;
* unacked messages are retransmitted after a timeout, with the window
  bounding how much may be in flight.

The retransmit timeout adapts to the path (Jacobson/Karn, as in RFC
6298): each new-transmission ack contributes an RTT sample to
smoothed estimators (``SRTT``/``RTTVAR``), the timeout is
``SRTT + 4*RTTVAR`` clamped to ``[rto, rto_max]``, and consecutive
timeouts back the timer off exponentially until an ack makes forward
progress.  Retransmitted segments never yield samples (Karn's rule),
so a resent message can't poison the estimate with an ambiguous ack.
A fixed aggressive timeout measurably hurts here: classroom's 16 KB
courseware messages serialise for ~86 ms on a 1.5 Mbit/s access link,
so a constant 50 ms timer fires mid-flight and resends the *entire*
go-back-N window through AAL5 segmentation — pure duplicate cells
(see DESIGN.md "Trace-driven performance diagnosis").

Applications register an ``on_message`` callback and call
:meth:`Connection.send`; everything below that — segmentation,
retransmission, ordering — is invisible, which is exactly the
"transparency for end users" the thesis's client-server section asks
the distribution platform to provide.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.atm.network import DeliveryInfo, DuplexEndpoint
from repro.atm.simulator import Event, Simulator
from repro.transport.messages import FLAG_MORE_FRAGMENTS, Message, MessageType
from repro.util.errors import DecodingError, NetworkError

#: largest message body carried in a single AAL5 frame; bigger bodies
#: are fragmented (AAL5 caps the CPCS payload at 65535 octets and the
#: message header takes 36)
MAX_FRAGMENT_BODY = 32768


@dataclass
class ConnectionStats:
    sent: int = 0
    retransmitted: int = 0
    delivered: int = 0
    out_of_order_dropped: int = 0
    decode_errors: int = 0
    acks_sent: int = 0
    failed: int = 0
    send_failures: int = 0
    reconnects: int = 0
    #: sequence numbers cumulatively acked by the peer
    acked: int = 0
    #: backlog + in-flight messages discarded when close() ran
    flushed: int = 0


class Connection:
    """One reliable endpoint.  Create one at each end of a duplex VC."""

    def __init__(self, sim: Simulator, endpoint: DuplexEndpoint, *,
                 window: int = 32, retransmit_timeout: float = 0.05,
                 rto_max: float = 2.0, max_retries: int = 30,
                 on_message: Optional[Callable[[Message], None]] = None,
                 on_error: Optional[Callable[[Exception], None]] = None,
                 name: str = "") -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.sim = sim
        self.endpoint = endpoint
        self.window = window
        #: floor of the adaptive timeout; also the pre-sample initial RTO
        self.rto_min = retransmit_timeout
        self.rto_max = rto_max
        self.rto = retransmit_timeout
        self.max_retries = max_retries
        #: Jacobson estimators; None until the first RTT sample lands
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        #: consecutive timeouts without ack progress (exponent of the
        #: backoff applied on top of the adaptive RTO)
        self._backoff = 0
        self.on_message = on_message
        #: invoked (instead of raising out of the event loop) when the
        #: peer is declared unreachable after max_retries timeouts
        self.on_error = on_error
        #: invoked (once per outage) when the underlying VC refuses a
        #: send — the hook a reconnect policy hangs off (see
        #: :func:`connect_pair`'s ``auto_reconnect``)
        self.on_transport_lost: Optional[Callable[["Connection"], None]] = None
        self.name = name
        self.stats = ConnectionStats()
        self.closed = False
        #: set while the underlying VC is torn down; cleared by rebind
        self.transport_lost = False
        #: set when the connection was torn down by a retry exhaustion
        self.last_error: Optional[Exception] = None

        self._next_seq = 0          # next sequence number to assign
        self._send_base = 0         # oldest unacked sequence
        self._recv_next = 0         # next expected sequence
        self._backlog: Deque[Message] = deque()   # waiting for window space
        self._in_flight: Dict[int, Message] = {}
        self._retries: Dict[int, int] = {}
        self._sent_at: Dict[int, float] = {}   # first-transmission times
        self._timer: Optional[Event] = None
        self._reassembly: list = []
        metrics = sim.metrics
        label = name or f"conn@{id(self):x}"
        self._m_retransmits = metrics.counter("connection", "retransmits",
                                              conn=label)
        self._m_failures = metrics.counter("connection", "failures",
                                           conn=label)
        self._m_rtt = metrics.histogram("connection", "rtt_seconds",
                                        conn=label)
        self._m_window = metrics.gauge("connection", "window_occupancy",
                                       conn=label)
        self._m_reconnects = metrics.counter("connection", "reconnects",
                                             conn=label)
        self._m_rto = metrics.gauge("connection", "rto_seconds",
                                    conn=label)
        self._m_rto.set(self.rto)
        self._label = label
        sim.register_entity("connection", self)
        # wire receive side: the caller must route incoming AAL5 PDUs
        # (for the VC underlying this endpoint) to handle_pdu.

    def conserves(self) -> bool:
        """sent == acked + in-flight + retransmit-pending (+ flushed).

        Every sequence number ever assigned is either cumulatively
        acked, still in flight, waiting in the backlog for window
        space, or was flushed by close().
        """
        return self._next_seq == (self.stats.acked + len(self._in_flight)
                                  + len(self._backlog) + self.stats.flushed)

    # -- sending ---------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Queue *msg* for reliable in-order delivery to the peer.

        Bodies larger than one AAL5 frame are fragmented transparently;
        the receiving connection reassembles before delivering.
        """
        if self.closed:
            raise NetworkError(f"connection {self.name} is closed")
        if len(msg.body) > MAX_FRAGMENT_BODY:
            body = msg.body
            offsets = range(0, len(body), MAX_FRAGMENT_BODY)
            last = len(body) - (len(body) % MAX_FRAGMENT_BODY or MAX_FRAGMENT_BODY)
            for off in offsets:
                frag = Message(
                    type=msg.type, corr_id=msg.corr_id,
                    trace_id=msg.trace_id, span_id=msg.span_id,
                    body=body[off:off + MAX_FRAGMENT_BODY],
                    flags=msg.flags | (FLAG_MORE_FRAGMENTS if off < last else 0))
                self._enqueue(frag)
        else:
            self._enqueue(msg)

    def _enqueue(self, msg: Message) -> None:
        msg.seq = self._next_seq
        self._next_seq += 1
        self._backlog.append(msg)
        self._pump()

    def _pump(self) -> None:
        while self._backlog and len(self._in_flight) < self.window:
            msg = self._backlog.popleft()
            self._transmit(msg)

    def _transmit(self, msg: Message) -> None:
        msg.ack = self._recv_next
        self._in_flight[msg.seq] = msg
        self._retries.setdefault(msg.seq, 0)
        self._sent_at[msg.seq] = self.sim.now
        self._m_window.set(len(self._in_flight))
        data = msg.encode()
        if msg.trace_id:
            self.sim.ledger.account("trace", f"t{msg.trace_id:x}").sent(
                units=1, nbytes=len(data))
        self._raw_send(data)
        self.stats.sent += 1
        self._arm_timer()

    def _raw_send(self, data: bytes) -> bool:
        """Push bytes at the VC, absorbing a torn-down circuit.

        A closed VC must not unwind the simulator loop (the retransmit
        timer sends from inside it); instead the loss is recorded once
        and ``on_transport_lost`` is scheduled so a reconnect policy
        can re-establish the circuit.  Un-sent messages stay in flight
        and ride the go-back-N timer onto the replacement VC.
        """
        try:
            self.endpoint.send(data)
            return True
        except NetworkError:
            self.stats.send_failures += 1
            if not self.transport_lost:
                self.transport_lost = True
                self.sim.recorder.record(
                    "transport", "vc_lost", severity="warning",
                    conn=self.name)
                if self.on_transport_lost is not None:
                    self.sim.schedule(0.0, self.on_transport_lost, self)
            return False

    def rebind(self, endpoint: DuplexEndpoint) -> None:
        """Attach this connection to a freshly-opened duplex endpoint.

        ARQ state (sequence numbers, in-flight messages, the receive
        cursor) is preserved: the peer's connection keeps its state
        too, so in-flight messages are simply retransmitted over the
        new circuit and delivery stays exactly-once in-order.
        """
        self.endpoint = endpoint
        self.transport_lost = False
        self.closed = False
        self.stats.reconnects += 1
        self._m_reconnects.inc()
        self.sim.recorder.record("transport", "reconnected",
                                 conn=self.name)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        # the replacement circuit may have a different path; keep the
        # smoothed estimate but drop the outage's accumulated backoff
        self._backoff = 0
        if self._in_flight:
            # resend immediately rather than waiting out the RTO
            self.sim.schedule(0.0, self._on_timeout)
        self._pump()

    def _observe_rtt(self, sample: float) -> None:
        """Fold one new-transmission RTT sample into the adaptive RTO.

        Standard Jacobson smoothing (RFC 6298 §2): first sample seeds
        ``SRTT = R``, ``RTTVAR = R/2``; later samples blend with gains
        1/8 and 1/4.  The timeout is ``SRTT + 4*RTTVAR`` clamped to
        ``[rto_min, rto_max]`` so a quiet path can never drop the
        timer below the configured floor nor a congested one push it
        past the ceiling.
        """
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(
                self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self.rto = min(max(self._srtt + 4.0 * self._rttvar,
                           self.rto_min), self.rto_max)
        self._m_rto.set(self.rto)

    #: cap on the backoff exponent: the timer never exceeds 8× the
    #: adaptive RTO.  Karn's rule means a fully-retransmitted window
    #: yields no samples, so an unbounded backoff would ratchet to
    #: rto_max and crawl through recovery on a genuinely lossy path.
    BACKOFF_CAP = 3

    def _arm_timer(self) -> None:
        if self._timer is None and self._in_flight:
            exponent = min(self._backoff, self.BACKOFF_CAP)
            timeout = min(self.rto * (2 ** exponent), self.rto_max)
            self._timer = self.sim.schedule(timeout, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timer = None
        if not self._in_flight or self.closed:
            return
        # go-back-N: resend everything still in flight, oldest first.
        # Only the head-of-line message is charged a retry — the rest
        # are retransmitted because of it, not through their own fault.
        base = min(self._in_flight)
        self._retries[base] = self._retries.get(base, 0) + 1
        if self._retries[base] > self.max_retries:
            # tear down fully, then report through the error callback:
            # raising here would unwind the simulator loop and leave
            # the connection half-torn-down (timer armed, state stale)
            error = NetworkError(
                f"connection {self.name}: message seq={base} exceeded "
                f"{self.max_retries} retries; peer unreachable")
            head = self._in_flight.get(base)
            self.sim.recorder.record(
                "transport", "connection_failed", severity="error",
                trace_id=(head.trace_id or None) if head else None,
                conn=self.name, seq=base, retries=self.max_retries)
            self.close()
            self.last_error = error
            self.stats.failed += 1
            self._m_failures.inc()
            if self.on_error is not None:
                self.on_error(error)
            return
        recorder = self.sim.recorder
        for seq in sorted(self._in_flight):
            msg = self._in_flight[seq]
            msg.ack = self._recv_next
            # Karn's rule: a retransmitted segment yields no RTT sample
            self._sent_at.pop(seq, None)
            recorder.record("transport", "retransmit", severity="warning",
                            trace_id=msg.trace_id or None, conn=self.name,
                            seq=seq, retry=self._retries[base])
            self._raw_send(msg.encode())
            self.stats.retransmitted += 1
            self._m_retransmits.inc()
        # exponential backoff: each consecutive timeout doubles the
        # timer (capped at rto_max) until an ack makes progress
        self._backoff += 1
        self._arm_timer()

    # -- receiving -------------------------------------------------------

    def handle_pdu(self, payload: bytes, info: DeliveryInfo) -> None:
        """Entry point for AAL5 PDUs arriving on the underlying VC."""
        try:
            msg = Message.decode(payload)
        except DecodingError:
            self.stats.decode_errors += 1
            return
        self._process_ack(msg.ack)
        if msg.type is MessageType.ACK:
            return
        if msg.seq == self._recv_next:
            self._recv_next += 1
            self.stats.delivered += 1
            self._send_ack()
            self._deliver(msg)
        elif msg.seq < self._recv_next:
            # duplicate of something already delivered: re-ack
            self._send_ack()
        else:
            # gap: go-back-N receivers drop and re-assert the cumulative ack
            self.stats.out_of_order_dropped += 1
            self._send_ack()

    def _process_ack(self, ack: int) -> None:
        advanced = False
        for seq in [s for s in self._in_flight if s < ack]:
            del self._in_flight[seq]
            self.stats.acked += 1
            self._retries.pop(seq, None)
            sent_at = self._sent_at.pop(seq, None)
            if sent_at is not None:
                rtt = self.sim.now - sent_at
                self._m_rtt.observe(rtt)
                self._observe_rtt(rtt)
                # a measurable (never-retransmitted) segment made it:
                # the backed-off timer may relax to the adaptive RTO.
                # Acks of retransmitted segments do NOT clear the
                # backoff (RFC 6298 §5.7) — with Karn discarding their
                # samples, that would re-arm a known-too-short timer
                # and starve the estimator forever.
                self._backoff = 0
            advanced = True
        self._m_window.set(len(self._in_flight))
        if ack > self._send_base:
            self._send_base = ack
        if advanced:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            self._arm_timer()
            self._pump()

    def _deliver(self, msg: Message) -> None:
        """Reassemble fragments; hand complete messages to the app."""
        if msg.more_fragments:
            self._reassembly.append(msg.body)
            return
        if self._reassembly:
            self._reassembly.append(msg.body)
            msg = Message(type=msg.type, seq=msg.seq, ack=msg.ack,
                          corr_id=msg.corr_id,
                          trace_id=msg.trace_id, span_id=msg.span_id,
                          body=b"".join(self._reassembly))
            self._reassembly = []
        if msg.trace_id:
            self.sim.ledger.account("trace", f"t{msg.trace_id:x}").delivered(
                units=1, nbytes=len(msg.body))
        if self.on_message is not None:
            self.on_message(msg)

    def _send_ack(self) -> None:
        self._raw_send(
            Message(type=MessageType.ACK, ack=self._recv_next).encode())
        self.stats.acks_sent += 1

    # -- teardown --------------------------------------------------------

    def close(self) -> None:
        self.closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.stats.flushed += len(self._backlog) + len(self._in_flight)
        self._backlog.clear()
        self._in_flight.clear()
        self._retries.clear()
        self._sent_at.clear()
        # a half-reassembled fragment chain must not splice stale bytes
        # into a message delivered after reuse of the receive path
        self._reassembly = []
        self._m_window.set(0)


def connect_pair(sim: Simulator, network, a: str, b: str, contract, *,
                 window: int = 32, rto: float = 0.05,
                 auto_reconnect: bool = False, max_reconnects: int = 8,
                 reconnect_delay: float = 0.05
                 ) -> tuple[Connection, Connection]:
    """Open a duplex VC between hosts *a* and *b* and wrap both ends in
    connections, fully wired.  Returns (conn_at_a, conn_at_b).

    With ``auto_reconnect`` the pair re-establishes itself after a VC
    teardown: the first failed send on either end schedules (after
    ``reconnect_delay``) a full teardown of the old channel and the
    signalling of a replacement, onto which both connections carry
    their ARQ state — in-flight messages are retransmitted, nothing is
    delivered twice or out of order.  After ``max_reconnects``
    attempts the pair gives up and reports through ``on_error``.
    """
    holder: dict = {}

    def handler_a(payload: bytes, info: DeliveryInfo) -> None:
        holder["a"].handle_pdu(payload, info)

    def handler_b(payload: bytes, info: DeliveryInfo) -> None:
        holder["b"].handle_pdu(payload, info)

    channel = network.open_duplex(a, b, contract, handler_a, handler_b)
    holder["a"] = Connection(sim, channel.endpoint(a), window=window,
                             retransmit_timeout=rto, name=f"{a}->{b}")
    holder["b"] = Connection(sim, channel.endpoint(b), window=window,
                             retransmit_timeout=rto, name=f"{b}->{a}")
    if auto_reconnect:
        state = {"channel": channel, "attempts": 0, "pending": False}

        def on_lost(_conn: Connection) -> None:
            # one re-establishment per outage, even when both ends
            # notice the teardown in the same RTO window
            if state["pending"]:
                return
            state["pending"] = True
            sim.schedule(reconnect_delay, reopen)

        def reopen() -> None:
            state["pending"] = False
            ca, cb = holder["a"], holder["b"]
            if state["attempts"] >= max_reconnects:
                error = NetworkError(
                    f"connection {a}<->{b}: gave up after "
                    f"{max_reconnects} reconnect attempts")
                for conn in (ca, cb):
                    conn.close()
                    conn.last_error = error
                    conn.stats.failed += 1
                    conn._m_failures.inc()
                    if conn.on_error is not None:
                        conn.on_error(error)
                return
            state["attempts"] += 1
            # release the surviving half of the old channel before
            # re-signalling, or admission control double-counts it
            old = state["channel"]
            network.close_vc(old.forward)
            network.close_vc(old.backward)
            try:
                fresh = network.open_duplex(a, b, contract,
                                            handler_a, handler_b)
            except NetworkError:
                state["pending"] = True
                sim.schedule(reconnect_delay, reopen)
                return
            state["channel"] = fresh
            ca.rebind(fresh.endpoint(a))
            cb.rebind(fresh.endpoint(b))

        holder["a"].on_transport_lost = on_lost
        holder["b"].on_transport_lost = on_lost
    return holder["a"], holder["b"]
