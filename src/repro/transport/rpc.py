"""Request/response endpoints and media streams.

:class:`RpcServer` registers named methods; :class:`RpcClient` calls
them.  Both ride on a reliable :class:`~repro.transport.connection.Connection`,
so requests and responses survive cell loss.  Because everything runs
inside the discrete-event simulator, calls are asynchronous: the
client's :meth:`RpcClient.call` returns a :class:`PendingCall` whose
callback fires when the response arrives (or reports a timeout).

Streams model on-demand media delivery: the server pushes
``STREAM_DATA`` chunks tied to a correlation id; the client hands them
to a :class:`StreamReceiver` which reassembles ordered chunks and
signals completion on ``STREAM_END`` — the path a video object takes
from the content server to the navigator.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.atm.simulator import Event, Simulator
from repro.obs.tracing import NULL_SPAN, TraceContext
from repro.transport.connection import Connection
from repro.transport.messages import Message, MessageType
from repro.transport.wire import dump_value, load_value
from repro.util.errors import NetworkError, ReproError


class RpcError(ReproError):
    """A remote method signalled failure."""

    def __init__(self, method: str, reason: str) -> None:
        super().__init__(f"{method}: {reason}")
        self.method = method
        self.reason = reason


@dataclass
class PendingCall:
    """Handle for an in-flight request."""

    method: str
    corr_id: int
    on_result: Optional[Callable[[Any], None]] = None
    on_error: Optional[Callable[[RpcError], None]] = None
    done: bool = False
    result: Any = None
    error: Optional[RpcError] = None
    #: transmissions so far (1 = first attempt) and retries still allowed
    attempts: int = 1
    retries_left: int = 0
    timeout: float = 10.0
    _body: bytes = b""
    _trace_id: int = 0
    _span_id: int = 0
    _timeout_event: Optional[Event] = None
    #: client-side span covering the request/response round trip
    _span: Any = NULL_SPAN
    #: context the caller had attached when issuing the call; completion
    #: callbacks run under it so follow-up spans parent correctly
    _ctx: Optional[TraceContext] = None

    def _complete(self, result: Any) -> None:
        if self.done:
            return
        self.done = True
        self.result = result
        if self._timeout_event is not None:
            self._timeout_event.cancel()
        if self.on_result is not None:
            self.on_result(result)

    def _fail(self, error: RpcError) -> None:
        if self.done:
            return
        self.done = True
        self.error = error
        if self._timeout_event is not None:
            self._timeout_event.cancel()
        if self.on_error is not None:
            self.on_error(error)


class StreamReceiver:
    """Collects STREAM_DATA chunks for one correlation id."""

    def __init__(self, on_chunk: Optional[Callable[[bytes], None]] = None,
                 on_end: Optional[Callable[["StreamReceiver"], None]] = None) -> None:
        self.chunks: List[bytes] = []
        self.finished = False
        self.on_chunk = on_chunk
        self.on_end = on_end
        self.first_chunk_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._span: Any = NULL_SPAN
        self._ctx: Optional[TraceContext] = None

    @property
    def data(self) -> bytes:
        return b"".join(self.chunks)

    def _feed(self, chunk: bytes, now: float) -> None:
        if self.first_chunk_at is None:
            self.first_chunk_at = now
        self.chunks.append(chunk)
        if self.on_chunk is not None:
            self.on_chunk(chunk)

    def _end(self, now: float) -> None:
        self.finished = True
        self.finished_at = now
        if self.on_end is not None:
            self.on_end(self)


class RpcClient:
    """Caller side.  Wire with ``RpcClient(sim, connection)``.

    With ``max_retries > 0`` a timed-out call is retried with
    exponential backoff plus seeded jitter before the failure is
    reported — the recovery half of content-server stall injection.
    Retries reuse the original correlation id, so semantics are
    at-least-once: a late response to an earlier attempt still
    completes the call (handlers should be idempotent, as MITS
    catalogue lookups are).
    """

    def __init__(self, sim: Simulator, connection: Connection, *,
                 default_timeout: float = 10.0,
                 max_retries: int = 0,
                 backoff_base: float = 0.2,
                 backoff_factor: float = 2.0,
                 backoff_jitter: float = 0.5,
                 retry_seed: int = 7) -> None:
        self.sim = sim
        self.connection = connection
        self.default_timeout = default_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self._retry_rng = random.Random(retry_seed)
        self._corr = itertools.count(1)
        self._pending: Dict[int, PendingCall] = {}
        self._streams: Dict[int, StreamReceiver] = {}
        label = connection.name or "rpc"
        metrics = sim.metrics
        self._m_retries = metrics.counter("rpc", "retries", client=label)
        self._m_exhausted = metrics.counter("rpc", "retries_exhausted",
                                            client=label)
        connection.on_message = self._on_message

    def call(self, method: str, params: Any = None, *,
             on_result: Optional[Callable[[Any], None]] = None,
             on_error: Optional[Callable[[RpcError], None]] = None,
             timeout: Optional[float] = None,
             max_retries: Optional[int] = None) -> PendingCall:
        """Issue a request.  Completion is signalled via callbacks."""
        corr = next(self._corr)
        tracer = self.sim.tracer
        t = timeout if timeout is not None else self.default_timeout
        retries = max_retries if max_retries is not None else self.max_retries
        pending = PendingCall(method=method, corr_id=corr,
                              on_result=on_result, on_error=on_error,
                              retries_left=retries, timeout=t,
                              _ctx=tracer.current)
        pending._span = tracer.span(f"rpc.client:{method}", method=method)
        self._pending[corr] = pending
        body = dump_value({"method": method, "params": params})
        msg = Message(type=MessageType.REQUEST, corr_id=corr, body=body)
        self._stamp(msg, pending._span)
        pending._body = msg.body
        pending._trace_id = msg.trace_id
        pending._span_id = msg.span_id
        self.connection.send(msg)
        pending._timeout_event = self.sim.schedule(
            t, self._on_timeout, corr)
        return pending

    def open_stream(self, method: str, params: Any = None, *,
                    on_chunk: Optional[Callable[[bytes], None]] = None,
                    on_end: Optional[Callable[[StreamReceiver], None]] = None,
                    timeout: Optional[float] = None) -> StreamReceiver:
        """Issue a request whose response is a chunk stream."""
        corr = next(self._corr)
        tracer = self.sim.tracer
        receiver = StreamReceiver(on_chunk=on_chunk, on_end=on_end)
        receiver._ctx = tracer.current
        receiver._span = tracer.span(f"rpc.client:{method}", method=method,
                                     stream=True)
        self._streams[corr] = receiver
        body = dump_value({"method": method, "params": params})
        msg = Message(type=MessageType.REQUEST, corr_id=corr, body=body)
        self._stamp(msg, receiver._span)
        self.connection.send(msg)
        return receiver

    @staticmethod
    def _stamp(msg: Message, span: Any) -> None:
        ctx = span.context
        if ctx is not None:
            msg.trace_id = ctx.trace_id
            msg.span_id = ctx.span_id

    def _on_timeout(self, corr: int) -> None:
        pending = self._pending.get(corr)
        if pending is None or pending.done:
            self._pending.pop(corr, None)
            return
        if pending.retries_left > 0:
            pending.retries_left -= 1
            # exponential backoff with seeded jitter: attempt n waits
            # base * factor**(n-1), stretched by up to +jitter*100%
            delay = (self.backoff_base
                     * self.backoff_factor ** (pending.attempts - 1)
                     * (1.0 + self.backoff_jitter * self._retry_rng.random()))
            pending.attempts += 1
            self._note_retry(pending)
            self.sim.schedule(delay, self._resend, corr)
            pending._timeout_event = self.sim.schedule(
                delay + pending.timeout, self._on_timeout, corr)
            return
        self._pending.pop(corr, None)
        if pending.attempts > 1:
            self._m_exhausted.inc()
            self.sim.recorder.record(
                "rpc", "retries_exhausted", severity="error",
                trace_id=pending._trace_id or None,
                method=pending.method, attempts=pending.attempts)
        pending._span.set(error="timeout")
        pending._span.end()
        tracer = self.sim.tracer
        token = tracer.attach(pending._ctx)
        try:
            pending._fail(RpcError(pending.method, "timed out"))
        finally:
            tracer.detach(token)

    def _note_retry(self, pending: PendingCall) -> None:
        self._m_retries.inc()
        self.sim.recorder.record(
            "rpc", "retry", severity="warning",
            trace_id=pending._trace_id or None,
            method=pending.method, attempt=pending.attempts)

    def _resend(self, corr: int) -> None:
        pending = self._pending.get(corr)
        if pending is None or pending.done:
            return
        msg = Message(type=MessageType.REQUEST, corr_id=corr,
                      trace_id=pending._trace_id, span_id=pending._span_id,
                      body=pending._body)
        try:
            self.connection.send(msg)
        except NetworkError as exc:
            # connection torn down while backing off: fail structurally
            self._pending.pop(corr, None)
            if pending._timeout_event is not None:
                pending._timeout_event.cancel()
            pending._span.set(error=str(exc))
            pending._span.end()
            tracer = self.sim.tracer
            token = tracer.attach(pending._ctx)
            try:
                pending._fail(RpcError(pending.method, str(exc)))
            finally:
                tracer.detach(token)

    def _on_message(self, msg: Message) -> None:
        tracer = self.sim.tracer
        if msg.type is MessageType.RESPONSE:
            pending = self._pending.pop(msg.corr_id, None)
            if pending is not None:
                pending._span.end()
                token = tracer.attach(pending._ctx)
                try:
                    pending._complete(load_value(msg.body))
                finally:
                    tracer.detach(token)
        elif msg.type is MessageType.ERROR:
            pending = self._pending.pop(msg.corr_id, None)
            if pending is not None:
                reason = load_value(msg.body)
                pending._span.set(error=str(reason))
                pending._span.end()
                token = tracer.attach(pending._ctx)
                try:
                    pending._fail(RpcError(pending.method, str(reason)))
                finally:
                    tracer.detach(token)
        elif msg.type is MessageType.STREAM_DATA:
            stream = self._streams.get(msg.corr_id)
            if stream is not None:
                token = tracer.attach(stream._ctx)
                try:
                    stream._feed(msg.body, self.sim.now)
                finally:
                    tracer.detach(token)
        elif msg.type is MessageType.STREAM_END:
            stream = self._streams.pop(msg.corr_id, None)
            if stream is not None:
                stream._span.set(chunks=len(stream.chunks))
                stream._span.end()
                token = tracer.attach(stream._ctx)
                try:
                    stream._end(self.sim.now)
                finally:
                    tracer.detach(token)


#: handler signature: handler(params) -> result value, or raise RpcError
Handler = Callable[[Any], Any]
#: stream handler: handler(params) -> iterable of bytes chunks
StreamHandler = Callable[[Any], Any]


class SharedProcessor:
    """A serialising CPU shared by all of one server's RPC endpoints.

    The 1996 database site was one SUN/ULTRA: concurrent requests from
    different clients queued for the same machine.  Endpoints created
    with a shared processor dispatch through its FIFO, so response
    time grows with concurrent load — the behaviour the Fig 3.5
    scaling experiment measures.
    """

    def __init__(self, sim: Simulator, service_time: float) -> None:
        self.sim = sim
        self.service_time = service_time
        #: fault injection: multiplier on per-job service time (>1 =
        #: degraded CPU / thrashing disk)
        self.slowdown = 1.0
        self._stalled_until = 0.0
        self._queue: list = []
        self._busy = False
        self.jobs_done = 0
        self.busy_time = 0.0

    def stall(self, duration: float) -> None:
        """Freeze the processor for *duration* seconds from now.

        Queued and newly-submitted jobs wait; nothing is lost.  Models
        a content-server GC pause / failover blackout.
        """
        self._stalled_until = max(self._stalled_until,
                                  self.sim.now + duration)
        # wake up when the stall expires so queued work resumes even
        # if no new submissions arrive
        if self._queue and not self._busy:
            self._run_next()

    def set_slowdown(self, factor: float) -> None:
        """Scale every subsequent job's service time by *factor*."""
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        self.slowdown = factor

    def submit(self, job: Callable[[], None]) -> None:
        self._queue.append(job)
        if not self._busy:
            self._run_next()

    def _run_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        if self.sim.now < self._stalled_until:
            # hold the queue until the stall lifts; _busy stays True so
            # concurrent submits don't double-schedule the wakeup
            self._busy = True
            self.sim.schedule(self._stalled_until - self.sim.now,
                              self._run_next)
            return
        self._busy = True
        job = self._queue.pop(0)
        service = self.service_time * self.slowdown
        self.busy_time += service
        self.sim.schedule(service, self._finish, job)

    def _finish(self, job: Callable[[], None]) -> None:
        job()
        self.jobs_done += 1
        self._run_next()


class RpcServer:
    """Callee side: dispatches named methods over one connection.

    A server typically serves many clients, each over its own
    connection; create one RpcServer per connection sharing the same
    handler registry via :meth:`clone_for`.
    """

    def __init__(self, sim: Simulator, connection: Connection, *,
                 chunk_size: int = 8192,
                 service_time: float = 0.0,
                 processor: Optional["SharedProcessor"] = None) -> None:
        self.sim = sim
        self.connection = connection
        self.chunk_size = chunk_size
        #: fixed per-request processing delay (models server CPU/disk);
        #: ignored when a shared processor serialises requests instead
        self.service_time = service_time
        self.processor = processor
        self._handlers: Dict[str, Handler] = {}
        self._stream_handlers: Dict[str, StreamHandler] = {}
        self.requests_served = 0
        connection.on_message = self._on_message

    def register(self, method: str, handler: Handler) -> None:
        self._handlers[method] = handler

    def register_stream(self, method: str, handler: StreamHandler) -> None:
        self._stream_handlers[method] = handler

    def clone_for(self, connection: Connection) -> "RpcServer":
        """A new server endpoint sharing this one's handler registry."""
        twin = RpcServer(self.sim, connection, chunk_size=self.chunk_size,
                         service_time=self.service_time,
                         processor=self.processor)
        twin._handlers = self._handlers
        twin._stream_handlers = self._stream_handlers
        return twin

    def _on_message(self, msg: Message) -> None:
        if msg.type is not MessageType.REQUEST:
            return
        # re-attach the caller's trace context on this site: the span
        # tree continues across the wire under one trace_id
        ctx = TraceContext(msg.trace_id, msg.span_id) if msg.trace_id \
            else None
        try:
            envelope = load_value(msg.body)
            method = envelope["method"]
            params = envelope.get("params")
        except Exception:
            self._send(Message(
                type=MessageType.ERROR, corr_id=msg.corr_id,
                body=dump_value("malformed request")), ctx)
            return
        if self.processor is not None:
            self.processor.submit(
                lambda: self._dispatch(method, params, msg.corr_id, ctx))
        else:
            self.sim.schedule(self.service_time, self._dispatch,
                              method, params, msg.corr_id, ctx)

    def _send(self, msg: Message, ctx: Optional[TraceContext]) -> None:
        if ctx is not None:
            msg.trace_id = ctx.trace_id
            msg.span_id = ctx.span_id
        self.connection.send(msg)

    def _dispatch(self, method: str, params: Any, corr_id: int,
                  ctx: Optional[TraceContext] = None) -> None:
        tracer = self.sim.tracer
        token = tracer.attach(ctx)
        try:
            with tracer.span(f"rpc.server:{method}", method=method) as span:
                self._serve(method, params, corr_id,
                            span.context if span.context is not None else ctx)
        finally:
            tracer.detach(token)

    def _serve(self, method: str, params: Any, corr_id: int,
               ctx: Optional[TraceContext]) -> None:
        self.requests_served += 1
        if method in self._stream_handlers:
            try:
                chunks = self._stream_handlers[method](params)
            except Exception as exc:
                self._send(Message(
                    type=MessageType.ERROR, corr_id=corr_id,
                    body=dump_value(str(exc))), ctx)
                return
            for chunk in chunks:
                for i in range(0, len(chunk), self.chunk_size):
                    self._send(Message(
                        type=MessageType.STREAM_DATA, corr_id=corr_id,
                        body=bytes(chunk[i:i + self.chunk_size])), ctx)
            self._send(Message(type=MessageType.STREAM_END,
                               corr_id=corr_id), ctx)
            return
        handler = self._handlers.get(method)
        if handler is None:
            self._send(Message(
                type=MessageType.ERROR, corr_id=corr_id,
                body=dump_value(f"unknown method {method!r}")), ctx)
            return
        try:
            result = handler(params)
        except RpcError as exc:
            self._send(Message(
                type=MessageType.ERROR, corr_id=corr_id,
                body=dump_value(exc.reason)), ctx)
            return
        except Exception as exc:
            self._send(Message(
                type=MessageType.ERROR, corr_id=corr_id,
                body=dump_value(f"internal error: {exc}")), ctx)
            return
        self._send(Message(type=MessageType.RESPONSE, corr_id=corr_id,
                           body=dump_value(result)), ctx)
