"""Typed message framing.

Each AAL5 frame at the transport level carries exactly one message:

=========  =====================================================
field      size / meaning
=========  =====================================================
magic      2 octets, ``MB`` (for MEDIABASE)
type       1 octet, :class:`MessageType`
flags      1 octet (bit 0: more fragments follow)
seq        4 octets, ARQ sequence number
ack        4 octets, cumulative acknowledgement
corr_id    4 octets, request/response correlation id
trace_id   8 octets, distributed-trace identity (0 = untraced)
span_id    8 octets, originating span within the trace
body_len   4 octets
body       opaque payload (wire-encoded value or media chunk)
=========  =====================================================

Messages whose body exceeds one AAL5 frame are fragmented by the
connection layer; bit 0 of *flags* marks non-final fragments.

The trace fields propagate a :class:`~repro.obs.tracing.TraceContext`
across sites: an RPC request stamps the caller's span, the server
re-attaches it, and every response/stream/retransmission stays
correlated to the originating request.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.util.errors import DecodingError

_MAGIC = b"MB"
_HEADER = struct.Struct(">2sBBIIIQQI")

FLAG_MORE_FRAGMENTS = 0x01


class MessageType(enum.IntEnum):
    DATA = 0        # reliable payload-bearing segment
    ACK = 1         # bare acknowledgement (no payload)
    REQUEST = 2     # RPC request (rides inside DATA body)
    RESPONSE = 3    # RPC response
    ERROR = 4       # RPC error response
    STREAM_DATA = 5 # one chunk of a media stream
    STREAM_END = 6  # end-of-stream marker


@dataclass
class Message:
    """One transport message (one AAL5 frame)."""

    type: MessageType
    seq: int = 0
    ack: int = 0
    corr_id: int = 0
    body: bytes = b""
    flags: int = 0
    trace_id: int = 0
    span_id: int = 0

    @property
    def more_fragments(self) -> bool:
        return bool(self.flags & FLAG_MORE_FRAGMENTS)

    def encode(self) -> bytes:
        return _HEADER.pack(_MAGIC, int(self.type), self.flags, self.seq,
                            self.ack, self.corr_id, self.trace_id,
                            self.span_id, len(self.body)) + self.body

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        if len(data) < _HEADER.size:
            raise DecodingError(
                f"message too short: {len(data)} < {_HEADER.size}")
        (magic, mtype, flags, seq, ack, corr, trace_id, span_id,
         blen) = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise DecodingError(f"bad message magic {magic!r}")
        try:
            mtype = MessageType(mtype)
        except ValueError as exc:
            raise DecodingError(f"unknown message type {mtype}") from exc
        body = data[_HEADER.size:]
        if len(body) != blen:
            raise DecodingError(
                f"message body length mismatch: header says {blen}, "
                f"frame has {len(body)}")
        return cls(type=mtype, seq=seq, ack=ack, corr_id=corr, body=body,
                   flags=flags, trace_id=trace_id, span_id=span_id)
