"""Meeting and discussing (§5.2.1), with the on-line facilitator site.

"The meeting and discussing module provides an environment for the
students and the on-line consultants to communicate with each other."
Two mechanisms: **mailboxes** (the e-mail style) and **conferences**
(named rooms with a live message feed).  The facilitator site runs a
:class:`Facilitator` — teachers or specialists "work on-line to answer
questions"; ours matches student questions against a keyword-indexed
knowledge base, queueing unmatched questions for a human, which is how
we exercise the on-demand-help path without people.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.errors import DatabaseError


@dataclass
class Message:
    message_id: int
    sender: str
    recipient: str          # mailbox name or conference name
    body: str
    sent_at: float
    conference: bool = False

    def summary(self) -> Dict:
        return {"message_id": self.message_id, "sender": self.sender,
                "recipient": self.recipient, "body": self.body,
                "sent_at": self.sent_at}


class DiscussionService:
    """Mailboxes and conferences."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._mailboxes: Dict[str, List[Message]] = {}
        self._conferences: Dict[str, List[Message]] = {}
        self._members: Dict[str, set] = {}

    # -- e-mail style -----------------------------------------------------

    def send_mail(self, sender: str, recipient: str, body: str,
                  now: float = 0.0) -> Message:
        msg = Message(message_id=next(self._ids), sender=sender,
                      recipient=recipient, body=body, sent_at=now)
        self._mailboxes.setdefault(recipient, []).append(msg)
        return msg

    def read_mail(self, mailbox: str, *, drain: bool = True) -> List[Message]:
        messages = self._mailboxes.get(mailbox, [])
        if drain:
            self._mailboxes[mailbox] = []
        return list(messages)

    # -- conferences ------------------------------------------------------

    def open_conference(self, name: str) -> None:
        self._conferences.setdefault(name, [])
        self._members.setdefault(name, set())

    def join(self, conference: str, member: str) -> None:
        if conference not in self._conferences:
            raise DatabaseError(f"no conference {conference!r}")
        self._members[conference].add(member)

    def leave(self, conference: str, member: str) -> None:
        self._members.get(conference, set()).discard(member)

    def members(self, conference: str) -> List[str]:
        if conference not in self._conferences:
            raise DatabaseError(f"no conference {conference!r}")
        return sorted(self._members[conference])

    def say(self, conference: str, sender: str, body: str,
            now: float = 0.0) -> Message:
        if conference not in self._conferences:
            raise DatabaseError(f"no conference {conference!r}")
        if sender not in self._members[conference]:
            raise DatabaseError(
                f"{sender!r} is not in conference {conference!r}")
        msg = Message(message_id=next(self._ids), sender=sender,
                      recipient=conference, body=body, sent_at=now,
                      conference=True)
        self._conferences[conference].append(msg)
        return msg

    def transcript(self, conference: str, since_id: int = 0) -> List[Message]:
        if conference not in self._conferences:
            raise DatabaseError(f"no conference {conference!r}")
        return [m for m in self._conferences[conference]
                if m.message_id > since_id]


@dataclass
class FaqEntry:
    keywords: List[str]
    answer: str


class Facilitator:
    """The on-line facilitator: answers questions on demand.

    Questions whose words overlap an FAQ entry's keywords get that
    answer immediately; everything else lands in ``pending`` for the
    (simulated) human specialist, who answers via :meth:`answer_pending`.
    """

    def __init__(self, name: str = "facilitator") -> None:
        self.name = name
        self.faq: List[FaqEntry] = []
        self.pending: List[Tuple[str, str]] = []  # (student, question)
        self.answered = 0

    def teach(self, keywords: List[str], answer: str) -> None:
        self.faq.append(FaqEntry(keywords=[k.lower() for k in keywords],
                                 answer=answer))

    def ask(self, student: str, question: str) -> Optional[str]:
        words = set(question.lower().replace("?", " ").split())
        best: Tuple[int, Optional[FaqEntry]] = (0, None)
        for entry in self.faq:
            overlap = sum(1 for kw in entry.keywords if kw in words)
            if overlap > best[0]:
                best = (overlap, entry)
        if best[1] is not None:
            self.answered += 1
            return best[1].answer
        self.pending.append((student, question))
        return None

    def answer_pending(self, answer_fn) -> List[Tuple[str, str, str]]:
        """Drain the queue: answer_fn(student, question) -> answer text.
        Returns (student, question, answer) triples."""
        out = []
        for student, question in self.pending:
            answer = answer_fn(student, question)
            out.append((student, question, answer))
            self.answered += 1
        self.pending.clear()
        return out
