"""Bulletin board (§5.2.1).

"When information is to be published to all the students, bulletin
board should be used...  We use news group to achieve this feature."
Posts are organised in newsgroup-style groups with threading by
subject.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.errors import DatabaseError


@dataclass
class BulletinPost:
    post_id: int
    group: str
    author: str
    subject: str
    body: str
    posted_at: float
    #: id of the post this replies to (threading)
    in_reply_to: Optional[int] = None

    def summary(self) -> Dict:
        return {"post_id": self.post_id, "group": self.group,
                "author": self.author, "subject": self.subject,
                "posted_at": self.posted_at,
                "in_reply_to": self.in_reply_to}


class BulletinBoard:
    """Newsgroup-style board with threads."""

    DEFAULT_GROUPS = ("school.announcements", "school.courses",
                      "school.exercises")

    def __init__(self) -> None:
        self._groups: Dict[str, List[BulletinPost]] = {
            g: [] for g in self.DEFAULT_GROUPS}
        self._ids = itertools.count(1)
        self._by_id: Dict[int, BulletinPost] = {}

    def groups(self) -> List[str]:
        return sorted(self._groups)

    def add_group(self, name: str) -> None:
        self._groups.setdefault(name, [])

    def post(self, group: str, author: str, subject: str, body: str,
             now: float = 0.0, in_reply_to: Optional[int] = None
             ) -> BulletinPost:
        if group not in self._groups:
            raise DatabaseError(f"no bulletin group {group!r}")
        if in_reply_to is not None and in_reply_to not in self._by_id:
            raise DatabaseError(f"no post {in_reply_to} to reply to")
        post = BulletinPost(post_id=next(self._ids), group=group,
                            author=author, subject=subject, body=body,
                            posted_at=now, in_reply_to=in_reply_to)
        self._groups[group].append(post)
        self._by_id[post.post_id] = post
        return post

    def list_posts(self, group: str) -> List[Dict]:
        if group not in self._groups:
            raise DatabaseError(f"no bulletin group {group!r}")
        return [p.summary() for p in self._groups[group]]

    def read(self, post_id: int) -> BulletinPost:
        post = self._by_id.get(post_id)
        if post is None:
            raise DatabaseError(f"no post {post_id}")
        return post

    def thread(self, post_id: int) -> List[BulletinPost]:
        """The root post and all (transitive) replies, in post order."""
        root = self.read(post_id)
        while root.in_reply_to is not None:
            root = self.read(root.in_reply_to)
        members = {root.post_id}
        out = [root]
        for post in sorted(self._by_id.values(), key=lambda p: p.post_id):
            if post.in_reply_to in members and post.post_id not in members:
                members.add(post.post_id)
                out.append(post)
        return out
