"""School service: RPC surface and client for the TeleSchool features.

One :class:`SchoolService` runs at the database/facilitator site and
registers its methods alongside the database server's on the same (or
a separate) RPC endpoint; :class:`SchoolClient` is the navigator-side
wrapper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.school.bulletin import BulletinBoard
from repro.school.discussion import DiscussionService, Facilitator
from repro.school.exercise import Exercise, ExerciseService
from repro.transport.rpc import PendingCall, RpcClient, RpcServer


class SchoolService:
    """Server-side aggregation of the school features."""

    def __init__(self, sim=None) -> None:
        self.sim = sim
        self.bulletin = BulletinBoard()
        self.exercises = ExerciseService()
        self.discussion = DiscussionService()
        self.facilitator = Facilitator()
        self.discussion.open_conference("common-room")

    @property
    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def attach(self, rpc: RpcServer) -> RpcServer:
        rpc.register("Bulletin.Groups", lambda p: self.bulletin.groups())
        rpc.register("Bulletin.Post",
                     lambda p: self.bulletin.post(
                         p["group"], p["author"], p["subject"], p["body"],
                         now=self.now,
                         in_reply_to=p.get("in_reply_to")).summary())
        rpc.register("Bulletin.List",
                     lambda p: self.bulletin.list_posts(p["group"]))
        rpc.register("Bulletin.Read",
                     lambda p: {**self.bulletin.read(p["post_id"]).summary(),
                                "body": self.bulletin.read(p["post_id"]).body})
        rpc.register("Exercise.List",
                     lambda p: self.exercises.list_for_course(
                         p["course_code"]))
        rpc.register("Exercise.Get",
                     lambda p: self.exercises.get(
                         p["exercise_id"]).describe())
        rpc.register("Exercise.Submit",
                     lambda p: self.exercises.submit(
                         p["exercise_id"], p["student_number"],
                         p["answers"]))
        rpc.register("Exercise.Standings",
                     lambda p: self.exercises.standings(p["exercise_id"]))
        rpc.register("Mail.Send",
                     lambda p: self.discussion.send_mail(
                         p["sender"], p["recipient"], p["body"],
                         now=self.now).summary())
        rpc.register("Mail.Read",
                     lambda p: [m.summary() for m in
                                self.discussion.read_mail(p["mailbox"])])
        rpc.register("Conference.Join", self._join)
        rpc.register("Conference.Say",
                     lambda p: self.discussion.say(
                         p["conference"], p["sender"], p["body"],
                         now=self.now).summary())
        rpc.register("Conference.Transcript",
                     lambda p: [m.summary() for m in
                                self.discussion.transcript(
                                    p["conference"],
                                    p.get("since_id", 0))])
        rpc.register("Facilitator.Ask", self._ask)
        return rpc

    def _join(self, p: Dict[str, Any]) -> List[str]:
        self.discussion.join(p["conference"], p["member"])
        return self.discussion.members(p["conference"])

    def _ask(self, p: Dict[str, Any]) -> Dict[str, Any]:
        answer = self.facilitator.ask(p["student_number"], p["question"])
        if answer is None:
            return {"answered": False,
                    "message": "your question was forwarded to a "
                               "specialist; check your mailbox later"}
        return {"answered": True, "answer": answer}


class SchoolClient:
    """Navigator-side wrapper over the school RPC methods."""

    def __init__(self, rpc: RpcClient) -> None:
        self.rpc = rpc

    def bulletin_groups(self, **cb) -> PendingCall:
        return self.rpc.call("Bulletin.Groups", None, **cb)

    def bulletin_post(self, group: str, author: str, subject: str,
                      body: str, in_reply_to: Optional[int] = None,
                      **cb) -> PendingCall:
        return self.rpc.call("Bulletin.Post",
                             {"group": group, "author": author,
                              "subject": subject, "body": body,
                              "in_reply_to": in_reply_to}, **cb)

    def bulletin_list(self, group: str, **cb) -> PendingCall:
        return self.rpc.call("Bulletin.List", {"group": group}, **cb)

    def bulletin_read(self, post_id: int, **cb) -> PendingCall:
        return self.rpc.call("Bulletin.Read", {"post_id": post_id}, **cb)

    def exercises_for_course(self, course_code: str, **cb) -> PendingCall:
        return self.rpc.call("Exercise.List",
                             {"course_code": course_code}, **cb)

    def get_exercise(self, exercise_id: str, **cb) -> PendingCall:
        return self.rpc.call("Exercise.Get",
                             {"exercise_id": exercise_id}, **cb)

    def submit_exercise(self, exercise_id: str, student_number: str,
                        answers: List[Any], **cb) -> PendingCall:
        return self.rpc.call("Exercise.Submit",
                             {"exercise_id": exercise_id,
                              "student_number": student_number,
                              "answers": answers}, **cb)

    def standings(self, exercise_id: str, **cb) -> PendingCall:
        return self.rpc.call("Exercise.Standings",
                             {"exercise_id": exercise_id}, **cb)

    def send_mail(self, sender: str, recipient: str, body: str,
                  **cb) -> PendingCall:
        return self.rpc.call("Mail.Send", {"sender": sender,
                                           "recipient": recipient,
                                           "body": body}, **cb)

    def read_mail(self, mailbox: str, **cb) -> PendingCall:
        return self.rpc.call("Mail.Read", {"mailbox": mailbox}, **cb)

    def join_conference(self, conference: str, member: str,
                        **cb) -> PendingCall:
        return self.rpc.call("Conference.Join",
                             {"conference": conference, "member": member},
                             **cb)

    def say(self, conference: str, sender: str, body: str,
            **cb) -> PendingCall:
        return self.rpc.call("Conference.Say",
                             {"conference": conference, "sender": sender,
                              "body": body}, **cb)

    def transcript(self, conference: str, since_id: int = 0,
                   **cb) -> PendingCall:
        return self.rpc.call("Conference.Transcript",
                             {"conference": conference,
                              "since_id": since_id}, **cb)

    def ask_facilitator(self, student_number: str, question: str,
                        **cb) -> PendingCall:
        return self.rpc.call("Facilitator.Ask",
                             {"student_number": student_number,
                              "question": question}, **cb)
