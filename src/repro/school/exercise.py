"""Exercises (§5.2.1).

"Practicing is the best way to learn...  exercises can be provided as
a separate module.  Problems designed for the exercises can be in
various styles besides the traditional text-based one.  Contest can
also be organized to stimulate the interests of the students."

Three question styles, auto-grading, per-student score records, and
contests (ranked standings over an exercise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple, Union

from repro.util.errors import DatabaseError


@dataclass
class MultipleChoiceQuestion:
    prompt: str
    options: List[str]
    correct: int
    points: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.correct < len(self.options):
            raise ValueError("correct option index out of range")

    def grade(self, answer: Any) -> float:
        return self.points if answer == self.correct else 0.0

    def describe(self) -> Dict[str, Any]:
        return {"style": "multiple-choice", "prompt": self.prompt,
                "options": list(self.options), "points": self.points}


@dataclass
class NumericQuestion:
    prompt: str
    answer: float
    tolerance: float = 1e-6
    points: float = 1.0

    def grade(self, answer: Any) -> float:
        try:
            value = float(answer)
        except (TypeError, ValueError):
            return 0.0
        return self.points if abs(value - self.answer) <= self.tolerance \
            else 0.0

    def describe(self) -> Dict[str, Any]:
        return {"style": "numeric", "prompt": self.prompt,
                "points": self.points}


@dataclass
class TextQuestion:
    prompt: str
    keywords: List[str]          # all must appear for full credit
    points: float = 1.0

    def grade(self, answer: Any) -> float:
        if not isinstance(answer, str) or not self.keywords:
            return 0.0
        text = answer.lower()
        hits = sum(1 for kw in self.keywords if kw.lower() in text)
        return self.points * hits / len(self.keywords)

    def describe(self) -> Dict[str, Any]:
        return {"style": "text", "prompt": self.prompt,
                "points": self.points}


Question = Union[MultipleChoiceQuestion, NumericQuestion, TextQuestion]


@dataclass
class Exercise:
    exercise_id: str
    course_code: str
    title: str
    questions: List[Question] = field(default_factory=list)

    def max_score(self) -> float:
        return sum(q.points for q in self.questions)

    def grade(self, answers: List[Any]) -> Tuple[float, List[float]]:
        if len(answers) != len(self.questions):
            raise DatabaseError(
                f"exercise {self.exercise_id} has {len(self.questions)} "
                f"questions, got {len(answers)} answers")
        per_question = [q.grade(a) for q, a in zip(self.questions, answers)]
        return sum(per_question), per_question

    def describe(self) -> Dict[str, Any]:
        return {"exercise_id": self.exercise_id,
                "course_code": self.course_code, "title": self.title,
                "max_score": self.max_score(),
                "questions": [q.describe() for q in self.questions]}


class ExerciseService:
    """Holds exercises and student submissions."""

    def __init__(self) -> None:
        self._exercises: Dict[str, Exercise] = {}
        #: (exercise_id, student_number) -> best score
        self._scores: Dict[Tuple[str, str], float] = {}
        self.submissions = 0

    def add(self, exercise: Exercise) -> None:
        if exercise.exercise_id in self._exercises:
            raise DatabaseError(
                f"duplicate exercise {exercise.exercise_id!r}")
        if not exercise.questions:
            raise DatabaseError(
                f"exercise {exercise.exercise_id!r} has no questions")
        self._exercises[exercise.exercise_id] = exercise

    def get(self, exercise_id: str) -> Exercise:
        exercise = self._exercises.get(exercise_id)
        if exercise is None:
            raise DatabaseError(f"no exercise {exercise_id!r}")
        return exercise

    def list_for_course(self, course_code: str) -> List[Dict[str, Any]]:
        return [e.describe() for e in self._exercises.values()
                if e.course_code == course_code]

    def submit(self, exercise_id: str, student_number: str,
               answers: List[Any]) -> Dict[str, Any]:
        exercise = self.get(exercise_id)
        score, per_question = exercise.grade(answers)
        self.submissions += 1
        key = (exercise_id, student_number)
        best = max(score, self._scores.get(key, 0.0))
        self._scores[key] = best
        return {"score": score, "best": best,
                "max_score": exercise.max_score(),
                "per_question": per_question}

    def best_score(self, exercise_id: str, student_number: str) -> float:
        return self._scores.get((exercise_id, student_number), 0.0)

    def standings(self, exercise_id: str) -> List[Dict[str, Any]]:
        """Contest view: students ranked by best score."""
        self.get(exercise_id)
        rows = [{"student_number": student, "score": score}
                for (eid, student), score in self._scores.items()
                if eid == exercise_id]
        return sorted(rows, key=lambda r: (-r["score"], r["student_number"]))
