"""Multimedia conferencing (§5.2.1 Meeting and Discussing).

"E-mail, telephone, and multimedia conferencing facilities are
provided for the students to choose from according to the resources
available on their platforms."  Text mail and conferences live in
:mod:`repro.school.discussion`; this module adds the audio conference:

* each participant paces 20 ms PCM frames onto a VC toward the bridge;
* the :class:`AudioBridge` (at the facilitator site) aligns frames into
  mixing windows and returns to each participant the **mix-minus** —
  the sum of everyone else's audio, clipped to int16;
* participants record what they hear, with arrival bookkeeping, so
  tests and experiments can check both content and timeliness.

Frames ride as raw AAL5 PDUs (CBR contracts fit: 8 kHz * 16 bit =
128 kb/s per leg), exactly the voice-over-ATM arrangement of the era.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.atm.network import AtmNetwork, DeliveryInfo, VirtualCircuit
from repro.atm.qos import ServiceCategory, TrafficContract
from repro.atm.simulator import Simulator
from repro.util.errors import NetworkError

SAMPLE_RATE = 8000
FRAME_SECONDS = 0.02
FRAME_SAMPLES = int(SAMPLE_RATE * FRAME_SECONDS)

_FRAME_HEADER = struct.Struct(">HI")  # participant id, frame index


def pack_audio_frame(participant: int, index: int,
                     samples: np.ndarray) -> bytes:
    return _FRAME_HEADER.pack(participant, index) + \
        samples.astype("<i2").tobytes()


def unpack_audio_frame(data: bytes):
    participant, index = _FRAME_HEADER.unpack_from(data)
    samples = np.frombuffer(data[_FRAME_HEADER.size:], dtype="<i2")
    return participant, index, samples.astype(np.int16)


def conference_contract() -> TrafficContract:
    """One voice leg: 128 kb/s CBR plus framing headroom."""
    cells_per_frame = (FRAME_SAMPLES * 2 + 8 + 48) // 48 + 1
    return TrafficContract(ServiceCategory.CBR,
                           pcr=cells_per_frame / FRAME_SECONDS * 1.2)


class AudioBridge:
    """The conference mixing bridge at the facilitator site."""

    def __init__(self, sim: Simulator, mix_delay: float = FRAME_SECONDS
                 ) -> None:
        self.sim = sim
        self.mix_delay = mix_delay
        #: participant id -> VC back toward that participant
        self._return_vcs: Dict[int, VirtualCircuit] = {}
        #: frame index -> participant id -> samples
        self._windows: Dict[int, Dict[int, np.ndarray]] = {}
        self._mixed: set = set()
        self.frames_received = 0
        self.frames_mixed = 0

    def attach(self, participant: int, return_vc: VirtualCircuit) -> None:
        self._return_vcs[participant] = return_vc

    def on_pdu(self, payload: bytes, info: DeliveryInfo) -> None:
        participant, index, samples = unpack_audio_frame(payload)
        if participant not in self._return_vcs:
            return
        self.frames_received += 1
        window = self._windows.setdefault(index, {})
        window[participant] = samples
        if index not in self._mixed:
            self._mixed.add(index)
            # mix after a short alignment delay so slower legs land
            self.sim.schedule(self.mix_delay, self._mix_window, index)

    def _mix_window(self, index: int) -> None:
        window = self._windows.pop(index, {})
        if not window:
            return
        self.frames_mixed += 1
        total = np.zeros(FRAME_SAMPLES, dtype=np.int64)
        for samples in window.values():
            n = min(len(samples), FRAME_SAMPLES)
            total[:n] += samples[:n]
        for participant, vc in self._return_vcs.items():
            # mix-minus: everyone except the listener
            own = window.get(participant)
            minus = total.copy()
            if own is not None:
                n = min(len(own), FRAME_SAMPLES)
                minus[:n] -= own[:n]
            mixed = np.clip(minus, -32768, 32767).astype(np.int16)
            vc.send(pack_audio_frame(0xFFFF, index, mixed))


@dataclass
class HeardFrame:
    index: int
    samples: np.ndarray
    arrived_at: float


class ConferenceParticipant:
    """One student (or facilitator) leg of the audio conference."""

    def __init__(self, sim: Simulator, participant_id: int,
                 send_vc: VirtualCircuit) -> None:
        self.sim = sim
        self.participant_id = participant_id
        self.send_vc = send_vc
        self.heard: List[HeardFrame] = []
        self.frames_sent = 0
        self._talk_process = None

    def on_pdu(self, payload: bytes, info: DeliveryInfo) -> None:
        _, index, samples = unpack_audio_frame(payload)
        self.heard.append(HeardFrame(index=index, samples=samples,
                                     arrived_at=self.sim.now))

    def talk(self, audio: np.ndarray) -> None:
        """Pace *audio* (int16 PCM at 8 kHz) as 20 ms frames."""
        if audio.dtype != np.int16:
            raise NetworkError("conference audio must be int16 PCM")

        def pump():
            index = 0
            pos = 0
            while pos < len(audio):
                frame = audio[pos:pos + FRAME_SAMPLES]
                if len(frame) < FRAME_SAMPLES:
                    frame = np.pad(frame, (0, FRAME_SAMPLES - len(frame)))
                self.send_vc.send(pack_audio_frame(
                    self.participant_id, index, frame))
                self.frames_sent += 1
                index += 1
                pos += FRAME_SAMPLES
                yield FRAME_SECONDS

        self._talk_process = self.sim.spawn(pump())

    def heard_audio(self) -> np.ndarray:
        """Concatenate everything heard, in frame order."""
        if not self.heard:
            return np.zeros(0, dtype=np.int16)
        ordered = sorted(self.heard, key=lambda h: h.index)
        return np.concatenate([h.samples for h in ordered])


def build_conference(sim: Simulator, network: AtmNetwork, bridge_host: str,
                     participant_hosts: List[str]
                     ) -> tuple[AudioBridge, List[ConferenceParticipant]]:
    """Wire a bridge and participants over an existing network."""
    bridge = AudioBridge(sim)
    participants: List[ConferenceParticipant] = []
    contract = conference_contract()
    for pid, host in enumerate(participant_hosts, start=1):
        up = network.open_vc(host, bridge_host, contract, bridge.on_pdu)
        participant = ConferenceParticipant(sim, pid, up)
        down = network.open_vc(bridge_host, host, contract,
                               participant.on_pdu)
        bridge.attach(pid, down)
        participants.append(participant)
    return bridge, participants
