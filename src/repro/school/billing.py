"""Billing services (§5.2.1 Administration).

"On the other hand, this leaves some space for the further studying
and development of the billing services for the TeleLearning
applications."  This fills that space with usage-based accounting:

* every classroom session is metered (connect time and content bytes
  streamed), every course registration and exercise submission is an
  event;
* a :class:`Tariff` prices the meters; :class:`BillingService`
  accumulates per-student ledgers and renders itemised statements.

Deliberately simple — flat tariffs, no proration — matching what a
1996 virtual school would have fielded first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.util.errors import DatabaseError


@dataclass(frozen=True)
class Tariff:
    """Prices per metered unit (currency units are abstract)."""

    per_registration: float = 50.0
    per_session_minute: float = 0.25
    per_streamed_megabyte: float = 0.10
    per_exercise_submission: float = 0.0    # practice is free

    def __post_init__(self) -> None:
        for name in ("per_registration", "per_session_minute",
                     "per_streamed_megabyte", "per_exercise_submission"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class LedgerEntry:
    at: float
    kind: str          # registration / session / stream / exercise
    detail: str
    quantity: float
    amount: float


class BillingService:
    """Per-student usage ledgers under one tariff."""

    def __init__(self, tariff: Tariff = Tariff()) -> None:
        self.tariff = tariff
        self._ledgers: Dict[str, List[LedgerEntry]] = {}

    def _add(self, student: str, entry: LedgerEntry) -> LedgerEntry:
        self._ledgers.setdefault(student, []).append(entry)
        return entry

    # -- metering events ----------------------------------------------------

    def record_registration(self, student: str, course_code: str,
                            at: float = 0.0) -> LedgerEntry:
        return self._add(student, LedgerEntry(
            at=at, kind="registration", detail=course_code, quantity=1,
            amount=self.tariff.per_registration))

    def record_session(self, student: str, course_code: str,
                       seconds: float, at: float = 0.0) -> LedgerEntry:
        if seconds < 0:
            raise DatabaseError("session duration cannot be negative")
        minutes = seconds / 60.0
        return self._add(student, LedgerEntry(
            at=at, kind="session", detail=course_code, quantity=minutes,
            amount=minutes * self.tariff.per_session_minute))

    def record_stream(self, student: str, content_ref: str,
                      bytes_streamed: int, at: float = 0.0) -> LedgerEntry:
        if bytes_streamed < 0:
            raise DatabaseError("streamed bytes cannot be negative")
        megabytes = bytes_streamed / 1e6
        return self._add(student, LedgerEntry(
            at=at, kind="stream", detail=content_ref, quantity=megabytes,
            amount=megabytes * self.tariff.per_streamed_megabyte))

    def record_exercise(self, student: str, exercise_id: str,
                        at: float = 0.0) -> LedgerEntry:
        return self._add(student, LedgerEntry(
            at=at, kind="exercise", detail=exercise_id, quantity=1,
            amount=self.tariff.per_exercise_submission))

    # -- statements ---------------------------------------------------------

    def balance(self, student: str) -> float:
        return sum(e.amount for e in self._ledgers.get(student, []))

    def statement(self, student: str) -> Dict:
        """An itemised statement, grouped by kind."""
        entries = self._ledgers.get(student, [])
        by_kind: Dict[str, Dict[str, float]] = {}
        for e in entries:
            bucket = by_kind.setdefault(e.kind, {"quantity": 0.0,
                                                 "amount": 0.0,
                                                 "items": 0})
            bucket["quantity"] += e.quantity
            bucket["amount"] += e.amount
            bucket["items"] += 1
        return {"student": student,
                "entries": len(entries),
                "by_kind": by_kind,
                "total": self.balance(student)}

    def revenue(self) -> float:
        return sum(self.balance(s) for s in self._ledgers)
