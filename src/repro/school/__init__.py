"""TeleSchool services (§5.2.1 feature set).

Beyond classroom presentation, the navigator's feature analysis lists
administration, library browsing, meeting and discussing, a bulletin
board, and exercises.  These services live here, server-side, with
RPC registrations that extend the database server's surface:

* :mod:`repro.school.bulletin` — the news-group style bulletin board;
* :mod:`repro.school.exercise` — exercises with several question
  styles, grading, and contests;
* :mod:`repro.school.discussion` — meeting/discussing between
  students and the on-line facilitator (e-mail, text conference), with
  a scriptable facilitator persona;
* :mod:`repro.school.service` — glues the above to a
  :class:`~repro.transport.rpc.RpcServer` and provides the client
  wrapper.
"""

from repro.school.bulletin import BulletinBoard, BulletinPost
from repro.school.exercise import (
    Exercise, ExerciseService, MultipleChoiceQuestion, NumericQuestion,
    TextQuestion,
)
from repro.school.discussion import (
    DiscussionService, Facilitator, Message,
)
from repro.school.service import SchoolService, SchoolClient
from repro.school.billing import BillingService, Tariff

__all__ = [
    "BulletinBoard",
    "BulletinPost",
    "Exercise",
    "ExerciseService",
    "MultipleChoiceQuestion",
    "NumericQuestion",
    "TextQuestion",
    "DiscussionService",
    "Facilitator",
    "Message",
    "SchoolService",
    "SchoolClient",
    "BillingService",
    "Tariff",
]
