"""MPEG-like video sequence codec.

Reproduces the structure that matters for delivery experiments: a
group-of-pictures (GOP) layout where intra (I) frames are coded like
JPEG stills and predicted (P) frames code only the quantised DCT of
the difference from the previous *reconstructed* frame.  As in real
MPEG, I frames are several times larger than P frames, so streaming a
sequence produces bursty, variable-bit-rate traffic — the workload
ATM's rt-VBR class exists for.

The encoded stream is framed so a server can send it frame by frame:
:class:`VideoStream` iterates (timestamp, frame bytes) pairs without
decoding pixels.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np
import scipy.fft

from repro.media.image import quant_table, _encode_blocks, _decode_blocks
from repro.util.bitstream import BitReader, BitWriter
from repro.util.errors import DecodingError, EncodingError

_MAGIC = b"SMPG"
_FRAME_I = 0
_FRAME_P = 1


@dataclass
class FrameInfo:
    """Per-frame metadata exposed without pixel decoding."""

    index: int
    kind: str            # "I" or "P"
    size: int            # encoded bytes
    timestamp: float     # presentation time in seconds


def _blockify(frame: np.ndarray) -> np.ndarray:
    H, W = frame.shape
    return (frame.reshape(H // 8, 8, W // 8, 8)
            .transpose(0, 2, 1, 3).reshape(-1, 8, 8))


def _unblockify(blocks: np.ndarray, H: int, W: int) -> np.ndarray:
    return (blocks.reshape(H // 8, W // 8, 8, 8)
            .transpose(0, 2, 1, 3).reshape(H, W))


class VideoCodec:
    """Encode/decode grayscale frame sequences (T, H, W) uint8."""

    coding_method = "SMPG"

    def __init__(self, quality: int = 60, gop: int = 12,
                 frame_rate: float = 25.0) -> None:
        if gop < 1:
            raise EncodingError("GOP length must be >= 1")
        self.quality = quality
        self.gop = gop
        self.frame_rate = frame_rate

    # -- encoding ---------------------------------------------------------

    def _code_plane(self, plane: np.ndarray, q: np.ndarray) -> bytes:
        coeffs = scipy.fft.dctn(_blockify(plane), axes=(1, 2), norm="ortho")
        quantised = np.round(coeffs / q).astype(np.int32).reshape(-1, 64)
        w = BitWriter()
        _encode_blocks(quantised, w)
        return w.getvalue()

    def _decode_plane(self, data: bytes, H: int, W: int,
                      q: np.ndarray) -> np.ndarray:
        nblocks = (H // 8) * (W // 8)
        quantised = _decode_blocks(BitReader(data), nblocks)
        coeffs = (quantised * q.reshape(-1)).reshape(-1, 8, 8)
        return _unblockify(
            scipy.fft.idctn(coeffs, axes=(1, 2), norm="ortho"), H, W)

    def encode(self, frames: np.ndarray) -> bytes:
        if frames.ndim != 3:
            raise EncodingError("VideoCodec takes (T, H, W) arrays")
        if frames.dtype != np.uint8:
            raise EncodingError("VideoCodec takes uint8 arrays")
        T, h, w = frames.shape
        if T == 0:
            raise EncodingError("empty sequence")
        if h % 8 or w % 8:
            raise EncodingError("frame dimensions must be multiples of 8")
        q = quant_table(self.quality)
        parts: List[bytes] = []
        reference = None
        for t in range(T):
            plane = frames[t].astype(np.float64) - 128.0
            if t % self.gop == 0 or reference is None:
                kind = _FRAME_I
                payload = self._code_plane(plane, q)
                recon = self._decode_plane(payload, h, w, q)
            else:
                kind = _FRAME_P
                payload = self._code_plane(plane - reference, q)
                recon = reference + self._decode_plane(payload, h, w, q)
            reference = recon
            parts.append(struct.pack(">BI", kind, len(payload)) + payload)
        header = _MAGIC + struct.pack(">HHHfB", T, h, w,
                                      self.frame_rate, self.gop)
        return header + struct.pack(">B", self.quality) + b"".join(parts)

    # -- decoding ---------------------------------------------------------

    @staticmethod
    def parse_header(data: bytes) -> Tuple[int, int, int, float, int, int]:
        """(frames, height, width, frame_rate, gop, quality)."""
        if data[:4] != _MAGIC:
            raise DecodingError("not an SMPG payload")
        T, h, w, rate, gop = struct.unpack_from(">HHHfB", data, 4)
        quality = data[4 + struct.calcsize(">HHHfB")]
        return T, h, w, rate, gop, quality

    def decode(self, data: bytes) -> np.ndarray:
        T, h, w, rate, gop, quality = self.parse_header(data)
        q = quant_table(quality)
        pos = 4 + struct.calcsize(">HHHfB") + 1
        out = np.empty((T, h, w), dtype=np.uint8)
        reference = None
        for t in range(T):
            kind, size = struct.unpack_from(">BI", data, pos)
            pos += 5
            payload = data[pos:pos + size]
            if len(payload) != size:
                raise DecodingError("truncated video frame")
            pos += size
            plane = self._decode_plane(payload, h, w, q)
            if kind == _FRAME_I:
                recon = plane
            elif kind == _FRAME_P:
                if reference is None:
                    raise DecodingError("P frame with no reference")
                recon = reference + plane
            else:
                raise DecodingError(f"unknown frame kind {kind}")
            reference = recon
            out[t] = np.clip(np.round(recon + 128.0), 0, 255).astype(np.uint8)
        return out


class VideoStream:
    """Frame-granular access to an encoded sequence, for streaming."""

    def __init__(self, data: bytes) -> None:
        (self.frames, self.height, self.width, self.frame_rate,
         self.gop, self.quality) = VideoCodec.parse_header(data)
        self._data = data
        self._offsets: List[Tuple[int, int, int]] = []  # (kind, start, size)
        pos = 4 + struct.calcsize(">HHHfB") + 1
        for _ in range(self.frames):
            kind, size = struct.unpack_from(">BI", data, pos)
            self._offsets.append((kind, pos, size + 5))
            pos += 5 + size
        if pos != len(data):
            raise DecodingError("trailing bytes after last frame")

    @property
    def duration(self) -> float:
        return self.frames / self.frame_rate

    def frame_infos(self) -> List[FrameInfo]:
        return [FrameInfo(index=i,
                          kind="I" if kind == _FRAME_I else "P",
                          size=size,
                          timestamp=i / self.frame_rate)
                for i, (kind, _start, size) in enumerate(self._offsets)]

    def frame_bytes(self, index: int) -> bytes:
        kind, start, size = self._offsets[index]
        return self._data[start:start + size]

    def __iter__(self) -> Iterator[Tuple[float, bytes]]:
        """Yield (presentation timestamp, frame bytes)."""
        for i in range(self.frames):
            yield i / self.frame_rate, self.frame_bytes(i)

    def peak_to_mean_ratio(self) -> float:
        """Burstiness of the encoded stream (drives VBR contracts)."""
        sizes = np.array([s for (_, _, s) in self._offsets], dtype=float)
        return float(sizes.max() / sizes.mean())
