"""Audio codecs: 16-bit PCM with G.711 µ-law companding, and a
MIDI-like event list.

The thesis's navigator handles WAV (waveform) and MID (event) files
(§5.2.2, table 5.1), noting the ~20x size advantage of event-coded
music.  Both behaviours are reproduced: µ-law halves PCM storage at
slight SNR cost, and :class:`MidiCodec` stores music as note events
whose encoded size is independent of duration sampled.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.util.errors import DecodingError, EncodingError

_PCM_MAGIC = b"SPCM"
_MU = 255.0


def mu_law_compress(samples: np.ndarray) -> np.ndarray:
    """int16 linear samples -> uint8 µ-law codewords."""
    if samples.dtype != np.int16:
        raise EncodingError("mu-law input must be int16")
    x = samples.astype(np.float64) / 32768.0
    y = np.sign(x) * np.log1p(_MU * np.abs(x)) / np.log1p(_MU)
    return np.round((y + 1.0) * 127.5).astype(np.uint8)


def mu_law_expand(codes: np.ndarray) -> np.ndarray:
    """uint8 µ-law codewords -> int16 linear samples."""
    if codes.dtype != np.uint8:
        raise DecodingError("mu-law codes must be uint8")
    y = codes.astype(np.float64) / 127.5 - 1.0
    x = np.sign(y) * ((1.0 + _MU) ** np.abs(y) - 1.0) / _MU
    return np.clip(np.round(x * 32768.0), -32768, 32767).astype(np.int16)


class AudioCodec:
    """Waveform codec: linear 16-bit PCM or µ-law companded."""

    coding_method = "SPCM"

    def __init__(self, sample_rate: int = 8000, companding: str = "ulaw") -> None:
        if companding not in ("linear", "ulaw"):
            raise EncodingError(f"unknown companding {companding!r}")
        self.sample_rate = sample_rate
        self.companding = companding

    def encode(self, samples: np.ndarray) -> bytes:
        if samples.ndim != 1 or samples.dtype != np.int16:
            raise EncodingError("AudioCodec takes 1-D int16 arrays")
        comp = 1 if self.companding == "ulaw" else 0
        header = _PCM_MAGIC + struct.pack(">IIB", self.sample_rate,
                                          len(samples), comp)
        if comp:
            return header + mu_law_compress(samples).tobytes()
        return header + samples.astype(">i2").tobytes()

    def decode(self, data: bytes) -> np.ndarray:
        if data[:4] != _PCM_MAGIC:
            raise DecodingError("not an SPCM payload")
        rate, n, comp = struct.unpack_from(">IIB", data, 4)
        body = data[13:]
        if comp:
            if len(body) != n:
                raise DecodingError("truncated mu-law audio")
            return mu_law_expand(np.frombuffer(body, dtype=np.uint8))
        if len(body) != 2 * n:
            raise DecodingError("truncated linear audio")
        return np.frombuffer(body, dtype=">i2").astype(np.int16)


@dataclass(frozen=True)
class MidiEvent:
    """One note: onset time (s), duration (s), pitch (MIDI number),
    velocity (0..127)."""

    time: float
    duration: float
    pitch: int
    velocity: int

    def __post_init__(self) -> None:
        if not 0 <= self.pitch <= 127:
            raise ValueError(f"pitch out of range: {self.pitch}")
        if not 0 <= self.velocity <= 127:
            raise ValueError(f"velocity out of range: {self.velocity}")
        if self.time < 0 or self.duration <= 0:
            raise ValueError("bad event timing")


_MIDI_MAGIC = b"SMID"


class MidiCodec:
    """Event-list music codec (times quantised to milliseconds)."""

    coding_method = "SMID"

    def encode(self, events: List[MidiEvent]) -> bytes:
        ordered = sorted(events, key=lambda e: (e.time, e.pitch))
        out = bytearray(_MIDI_MAGIC)
        out.extend(struct.pack(">I", len(ordered)))
        for ev in ordered:
            out.extend(struct.pack(">IIBB", int(round(ev.time * 1000)),
                                   int(round(ev.duration * 1000)),
                                   ev.pitch, ev.velocity))
        return bytes(out)

    def decode(self, data: bytes) -> List[MidiEvent]:
        if data[:4] != _MIDI_MAGIC:
            raise DecodingError("not an SMID payload")
        (n,) = struct.unpack_from(">I", data, 4)
        events = []
        pos = 8
        for _ in range(n):
            if pos + 10 > len(data):
                raise DecodingError("truncated MIDI events")
            t, d, pitch, vel = struct.unpack_from(">IIBB", data, pos)
            pos += 10
            events.append(MidiEvent(time=t / 1000.0, duration=d / 1000.0,
                                    pitch=pitch, velocity=vel))
        return events

    @staticmethod
    def render(events: List[MidiEvent], sample_rate: int = 8000) -> np.ndarray:
        """Synthesize events to int16 PCM (sine voices, linear decay)."""
        if not events:
            return np.zeros(0, dtype=np.int16)
        end = max(e.time + e.duration for e in events)
        out = np.zeros(int(np.ceil(end * sample_rate)) + 1, dtype=np.float64)
        for ev in events:
            freq = 440.0 * 2.0 ** ((ev.pitch - 69) / 12.0)
            n = int(ev.duration * sample_rate)
            t = np.arange(n) / sample_rate
            envelope = np.linspace(1.0, 0.0, n)
            tone = np.sin(2 * np.pi * freq * t) * envelope * (ev.velocity / 127.0)
            start = int(ev.time * sample_rate)
            out[start:start + n] += tone
        peak = np.abs(out).max()
        if peak > 0:
            out = out / max(peak, 1.0)
        return np.round(out * 32000).astype(np.int16)
