"""Media object carrier.

A :class:`MediaObject` is the unit the media production center emits,
the content database stores, and an MHEG content object references:
an opaque encoded payload plus the presentation attributes the MHEG
content class wants (coding method, original size/duration, etc.).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class MediaType(enum.Enum):
    TEXT = "text"
    IMAGE = "image"
    GRAPHICS = "graphics"
    AUDIO = "audio"
    VIDEO = "video"
    MIDI = "midi"


@dataclass
class MediaObject:
    """An encoded mono-media object.

    *attributes* carries type-specific presentation parameters — for a
    video: ``width``, ``height``, ``frame_rate``, ``frames``; for
    audio: ``sample_rate``, ``samples``; for an image: ``width``,
    ``height``.  Durations are derivable and exposed via
    :attr:`duration`.
    """

    name: str
    media_type: MediaType
    coding_method: str
    data: bytes
    attributes: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("media object needs a non-empty name")

    @property
    def size(self) -> int:
        """Encoded size in bytes."""
        return len(self.data)

    @property
    def duration(self) -> Optional[float]:
        """Playback duration in seconds for time-based media, else None."""
        a = self.attributes
        if self.media_type is MediaType.VIDEO and a.get("frame_rate"):
            return a.get("frames", 0) / a["frame_rate"]
        if self.media_type is MediaType.AUDIO and a.get("sample_rate"):
            return a.get("samples", 0) / a["sample_rate"]
        if self.media_type is MediaType.MIDI:
            return a.get("duration")
        return None

    @property
    def is_continuous(self) -> bool:
        """True for time-based media needing streaming delivery."""
        return self.media_type in (MediaType.AUDIO, MediaType.VIDEO,
                                   MediaType.MIDI)

    def bitrate_bps(self) -> Optional[float]:
        """Average encoded bitrate for continuous media, else None."""
        d = self.duration
        if d is None or d <= 0:
            return None
        return self.size * 8 / d

    def describe(self) -> Dict[str, Any]:
        """Summary record (what a descriptor object carries)."""
        return {
            "name": self.name,
            "media_type": self.media_type.value,
            "coding_method": self.coding_method,
            "size": self.size,
            "duration": self.duration,
            **{k: v for k, v in self.attributes.items()},
        }
