"""Media substrate: content types, synthetic codecs, production center.

The thesis's media production center "captures information from the
real world and codes them into different media objects such as text,
image, audio, and video" (§3.2) using MPEG, JPEG, WAV hardware codecs.
We have no capture hardware, so this subpackage provides:

* :mod:`repro.media.base` — the :class:`MediaObject` carrier every
  other subsystem passes around (typed payload + presentation
  attributes, exactly what an MHEG content object references);
* :mod:`repro.media.image` — a JPEG-like still codec (8x8 block DCT,
  quantisation, zigzag run-length, bit-packed entropy code);
* :mod:`repro.media.video` — an MPEG-like sequence codec (GOP
  structure with intra and predicted frames) whose per-frame sizes
  give realistic VBR traffic;
* :mod:`repro.media.audio` — 16-bit PCM with G.711 µ-law companding,
  plus a MIDI-like event-list format;
* :mod:`repro.media.text` — plain and lightly marked-up text;
* :mod:`repro.media.production` — the deterministic media production
  center that synthesises test content for every experiment.
"""

from repro.media.base import MediaObject, MediaType
from repro.media.image import ImageCodec, psnr
from repro.media.video import VideoCodec, VideoStream, FrameInfo
from repro.media.audio import (
    AudioCodec, MidiCodec, MidiEvent, mu_law_compress, mu_law_expand,
)
from repro.media.text import TextCodec
from repro.media.production import MediaProductionCenter

__all__ = [
    "MediaObject",
    "MediaType",
    "ImageCodec",
    "psnr",
    "VideoCodec",
    "VideoStream",
    "FrameInfo",
    "AudioCodec",
    "MidiCodec",
    "MidiEvent",
    "mu_law_compress",
    "mu_law_expand",
    "TextCodec",
    "MediaProductionCenter",
]
