"""The media production center (Fig 3.1, §3.4.1).

"By using video and audio capturing devices such as video cameras,
microphones, and PC-VCRs, the media production server provides all the
data needed for the creation of a multimedia courseware."  We have no
cameras, so the center *synthesises* deterministic content instead:
seeded procedural video (moving gradients and objects so the P-frame
predictor has realistic work), multi-tone audio, melodic MIDI phrases,
procedural lecture text, and test-card images.  Determinism matters:
every experiment regenerates byte-identical media from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.media.audio import AudioCodec, MidiCodec, MidiEvent
from repro.media.base import MediaObject, MediaType
from repro.media.image import ImageCodec
from repro.media.text import TextCodec
from repro.media.video import VideoCodec

_WORDS = (
    "asynchronous transfer mode cell switching virtual circuit broadband "
    "network multimedia courseware object synchronisation interactive "
    "presentation learning knowledge student teacher architecture database "
    "retrieval composite link action descriptor container scenario channel "
    "quality service bandwidth latency stream video audio authoring engine"
).split()


class MediaProductionCenter:
    """Deterministic synthetic capture devices plus a local catalog."""

    def __init__(self, seed: int = 1996) -> None:
        self.seed = seed
        self.catalog: Dict[str, MediaObject] = {}

    def _rng(self, name: str) -> np.random.Generator:
        # each asset gets its own stream derived from (seed, name)
        return np.random.default_rng(
            [self.seed, *(ord(c) for c in name)])

    def _register(self, obj: MediaObject) -> MediaObject:
        self.catalog[obj.name] = obj
        return obj

    # -- video -------------------------------------------------------------

    def produce_video(self, name: str, *, seconds: float = 2.0,
                      width: int = 64, height: int = 64,
                      frame_rate: float = 10.0, quality: int = 60,
                      gop: int = 10, motion: float = 2.0) -> MediaObject:
        """A moving-scene clip: drifting gradient background plus two
        moving bright squares, with mild sensor noise."""
        rng = self._rng(name)
        T = max(1, int(round(seconds * frame_rate)))
        yy, xx = np.mgrid[0:height, 0:width]
        frames = np.empty((T, height, width), dtype=np.uint8)
        cx, cy = rng.uniform(8, width - 8), rng.uniform(8, height - 8)
        vx, vy = rng.uniform(-motion, motion, 2)
        for t in range(T):
            base = (96 + 48 * np.sin((xx + motion * t) / 11.0)
                    + 32 * np.cos((yy - motion * t) / 7.0))
            frame = base + rng.normal(0, 2.0, (height, width))
            px = int(cx + vx * t) % (width - 8)
            py = int(cy + vy * t) % (height - 8)
            frame[py:py + 8, px:px + 8] = 230
            frame[(py + 20) % (height - 8):(py + 20) % (height - 8) + 6,
                  (px + 30) % (width - 8):(px + 30) % (width - 8) + 6] = 20
            frames[t] = np.clip(frame, 0, 255).astype(np.uint8)
        codec = VideoCodec(quality=quality, gop=gop, frame_rate=frame_rate)
        data = codec.encode(frames)
        return self._register(MediaObject(
            name=name, media_type=MediaType.VIDEO,
            coding_method=codec.coding_method, data=data,
            attributes={"width": width, "height": height,
                        "frame_rate": frame_rate, "frames": T,
                        "quality": quality, "gop": gop}))

    # -- image --------------------------------------------------------------

    def produce_image(self, name: str, *, width: int = 128, height: int = 96,
                      quality: int = 75) -> MediaObject:
        """A test-card image: gradients, bars, and a noise patch."""
        rng = self._rng(name)
        yy, xx = np.mgrid[0:height, 0:width]
        img = (xx * 255.0 / max(1, width - 1)
               + 64 * np.sin(yy / 6.0)) / 1.5
        img[height // 3: height // 3 + 10] = \
            (xx[height // 3: height // 3 + 10] // 16 % 2) * 255
        patch = rng.integers(0, 255, (height // 4, width // 4))
        img[-height // 4:, -width // 4:] = patch
        arr = np.clip(img, 0, 255).astype(np.uint8)
        codec = ImageCodec(quality=quality)
        return self._register(MediaObject(
            name=name, media_type=MediaType.IMAGE,
            coding_method=codec.coding_method, data=codec.encode(arr),
            attributes={"width": width, "height": height,
                        "quality": quality}))

    # -- audio ----------------------------------------------------------------

    def produce_audio(self, name: str, *, seconds: float = 2.0,
                      sample_rate: int = 8000,
                      companding: str = "ulaw") -> MediaObject:
        """Speech-band audio: three drifting tones with an envelope."""
        rng = self._rng(name)
        n = int(seconds * sample_rate)
        t = np.arange(n) / sample_rate
        freqs = rng.uniform(200, 1200, 3)
        sig = sum(np.sin(2 * np.pi * (f + 20 * np.sin(t)) * t) / 3
                  for f in freqs)
        envelope = 0.5 + 0.5 * np.sin(2 * np.pi * t / max(seconds, 1e-9))
        samples = np.round(sig * envelope * 20000).astype(np.int16)
        codec = AudioCodec(sample_rate=sample_rate, companding=companding)
        return self._register(MediaObject(
            name=name, media_type=MediaType.AUDIO,
            coding_method=codec.coding_method, data=codec.encode(samples),
            attributes={"sample_rate": sample_rate, "samples": n,
                        "companding": companding}))

    def produce_midi(self, name: str, *, bars: int = 4,
                     tempo_bpm: float = 120.0) -> MediaObject:
        """A melodic phrase over a pentatonic scale."""
        rng = self._rng(name)
        scale = [60, 62, 65, 67, 69, 72]
        beat = 60.0 / tempo_bpm
        events: List[MidiEvent] = []
        t = 0.0
        for _ in range(bars * 4):
            pitch = int(rng.choice(scale))
            dur = beat * float(rng.choice([0.5, 1.0, 1.0, 2.0]))
            events.append(MidiEvent(time=t, duration=dur, pitch=pitch,
                                    velocity=int(rng.integers(60, 120))))
            t += dur
        codec = MidiCodec()
        return self._register(MediaObject(
            name=name, media_type=MediaType.MIDI,
            coding_method=codec.coding_method, data=codec.encode(events),
            attributes={"events": len(events), "duration": t}))

    # -- text -------------------------------------------------------------------

    def produce_text(self, name: str, *, sections: int = 3,
                     sentences_per_section: int = 5,
                     link_targets: Optional[List[str]] = None) -> MediaObject:
        """Procedural lecture text with headings and inline links."""
        rng = self._rng(name)
        parts: List[str] = []
        targets = list(link_targets or [])
        for s in range(sections):
            title = " ".join(rng.choice(_WORDS, 3)).title()
            parts.append(f"== {title} ==")
            for _ in range(sentences_per_section):
                words = list(rng.choice(_WORDS, int(rng.integers(8, 16))))
                if targets and rng.random() < 0.4:
                    target = targets[int(rng.integers(0, len(targets)))]
                    words[rng.integers(0, len(words))] = \
                        f"[[{target}|{target.replace('-', ' ')}]]"
                sentence = " ".join(words).capitalize() + "."
                parts.append(sentence)
            parts.append("")
        text = "\n".join(parts)
        codec = TextCodec()
        return self._register(MediaObject(
            name=name, media_type=MediaType.TEXT,
            coding_method=codec.coding_method, data=codec.encode(text),
            attributes={"sections": sections, "characters": len(text)}))
