"""Text media objects.

Plain UTF-8 text with an optional lightweight markup the navigator's
library browser understands: ``[[target|label]]`` inline links (the
hypertext primitive of §4.3) and ``== heading ==`` section titles.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.util.errors import DecodingError

_MAGIC = b"STXT"
_LINK_RE = re.compile(r"\[\[([^|\]]+)\|([^\]]+)\]\]")
_HEADING_RE = re.compile(r"^== (.+) ==$", re.MULTILINE)


class TextCodec:
    """Length-prefixed UTF-8 with a format tag."""

    coding_method = "STXT"

    def encode(self, text: str) -> bytes:
        body = text.encode("utf-8")
        return _MAGIC + struct.pack(">I", len(body)) + body

    def decode(self, data: bytes) -> str:
        if data[:4] != _MAGIC:
            raise DecodingError("not an STXT payload")
        (n,) = struct.unpack_from(">I", data, 4)
        body = data[8:]
        if len(body) != n:
            raise DecodingError("truncated text payload")
        return body.decode("utf-8")


def extract_links(text: str) -> List[Tuple[str, str]]:
    """All ``[[target|label]]`` links as (target, label) pairs."""
    return _LINK_RE.findall(text)


def extract_headings(text: str) -> List[str]:
    """All ``== heading ==`` section titles in document order."""
    return _HEADING_RE.findall(text)


def strip_markup(text: str) -> str:
    """Plain-prose rendering: links become their labels, headings keep
    their titles."""
    out = _LINK_RE.sub(lambda m: m.group(2), text)
    return _HEADING_RE.sub(lambda m: m.group(1), out)
