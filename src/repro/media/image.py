"""JPEG-like still-image codec.

The real pipeline the thesis relied on (JPEG) is reproduced in
miniature: 8x8 block DCT, luminance-table quantisation with a quality
knob, zigzag scan, and run-length + exponential-Golomb entropy
coding.  Output size therefore responds to image content and quality
the way JPEG's does, which is what the storage and streaming
experiments need; only the Huffman tables are simplified.

Images are 2-D ``uint8`` arrays (grayscale).  Multi-band content can
be encoded band by band.
"""

from __future__ import annotations

import struct

import numpy as np
import scipy.fft

from repro.util.bitstream import BitReader, BitWriter
from repro.util.errors import DecodingError, EncodingError

_MAGIC = b"SIMG"

#: ISO/IEC 10918-1 Annex K luminance quantisation table
_QUANT_BASE = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.float64)


def _zigzag_order() -> np.ndarray:
    """Flat indices of an 8x8 block in zigzag scan order."""
    idx = sorted(((r + c, (c if (r + c) % 2 == 0 else r), r, c)
                  for r in range(8) for c in range(8)))
    return np.array([r * 8 + c for (_, _, r, c) in idx], dtype=np.int64)


_ZIGZAG = _zigzag_order()
_UNZIGZAG = np.argsort(_ZIGZAG)


def quant_table(quality: int) -> np.ndarray:
    """Scale the base table by a 1..100 quality factor (libjpeg rule)."""
    if not 1 <= quality <= 100:
        raise EncodingError(f"quality must be in 1..100, got {quality}")
    scale = 5000 / quality if quality < 50 else 200 - 2 * quality
    q = np.floor((_QUANT_BASE * scale + 50) / 100)
    return np.clip(q, 1, 255)


def _write_ue(w: BitWriter, v: int) -> None:
    """Unsigned exponential-Golomb code."""
    n = v + 1
    nbits = n.bit_length()
    w.write(0, nbits - 1)
    w.write(n, nbits)


def _read_ue(r: BitReader) -> int:
    zeros = 0
    while r.read(1) == 0:
        zeros += 1
        if zeros > 40:
            raise DecodingError("malformed exp-Golomb code")
    return ((1 << zeros) | r.read(zeros)) - 1 if zeros else 0


def _write_se(w: BitWriter, v: int) -> None:
    """Signed exponential-Golomb code."""
    _write_ue(w, 2 * v - 1 if v > 0 else -2 * v)


def _read_se(r: BitReader) -> int:
    u = _read_ue(r)
    return (u + 1) // 2 if u % 2 else -(u // 2)


_EOB_RUN = 63  # run value reserved as end-of-block marker


def _encode_blocks(blocks: np.ndarray, w: BitWriter) -> None:
    """Entropy-code quantised coefficient blocks (N, 64) in zigzag order."""
    for block in blocks:
        zz = block[_ZIGZAG]
        nz = np.nonzero(zz)[0]
        prev = -1
        for i in nz:
            run = int(i - prev - 1)
            # long zero runs are split so EOB stays unambiguous
            while run >= _EOB_RUN:
                _write_ue(w, _EOB_RUN - 1)
                _write_se(w, 0)
                run -= _EOB_RUN - 1
            _write_ue(w, run)
            _write_se(w, int(zz[i]))
            prev = i
        _write_ue(w, _EOB_RUN)


def _decode_blocks(r: BitReader, nblocks: int) -> np.ndarray:
    blocks = np.zeros((nblocks, 64), dtype=np.float64)
    for b in range(nblocks):
        pos = 0
        while True:
            run = _read_ue(r)
            if run == _EOB_RUN:
                break
            level = _read_se(r)
            pos += run
            if level != 0:
                if pos > 63:
                    raise DecodingError("coefficient index out of block")
                blocks[b, _ZIGZAG[pos]] = level
                pos += 1
            # level == 0 encodes a split long zero-run; pos advanced only
        if pos > 64:
            raise DecodingError("block overrun")
    return blocks


class ImageCodec:
    """Encode/decode grayscale images."""

    coding_method = "SIMG"

    def __init__(self, quality: int = 75) -> None:
        self.quality = quality

    def encode(self, image: np.ndarray) -> bytes:
        if image.ndim != 2:
            raise EncodingError("ImageCodec takes 2-D grayscale arrays")
        if image.dtype != np.uint8:
            raise EncodingError("ImageCodec takes uint8 arrays")
        h, w = image.shape
        if h == 0 or w == 0:
            raise EncodingError("image must be non-empty")
        ph, pw = (-h) % 8, (-w) % 8
        padded = np.pad(image.astype(np.float64) - 128.0,
                        ((0, ph), (0, pw)), mode="edge")
        H, W = padded.shape
        blocks = (padded.reshape(H // 8, 8, W // 8, 8)
                  .transpose(0, 2, 1, 3)
                  .reshape(-1, 8, 8))
        coeffs = scipy.fft.dctn(blocks, axes=(1, 2), norm="ortho")
        q = quant_table(self.quality)
        quantised = np.round(coeffs / q).astype(np.int32).reshape(-1, 64)

        out = BitWriter()
        _encode_blocks(quantised, out)
        header = _MAGIC + struct.pack(">HHB", h, w, self.quality)
        return header + out.getvalue()

    def decode(self, data: bytes) -> np.ndarray:
        if data[:4] != _MAGIC:
            raise DecodingError("not an SIMG payload")
        h, w, quality = struct.unpack_from(">HHB", data, 4)
        H, W = h + ((-h) % 8), w + ((-w) % 8)
        nblocks = (H // 8) * (W // 8)
        r = BitReader(data[9:])
        quantised = _decode_blocks(r, nblocks)
        q = quant_table(quality)
        coeffs = (quantised * q.reshape(-1)).reshape(-1, 8, 8)
        blocks = scipy.fft.idctn(coeffs, axes=(1, 2), norm="ortho")
        padded = (blocks.reshape(H // 8, W // 8, 8, 8)
                  .transpose(0, 2, 1, 3)
                  .reshape(H, W))
        return np.clip(np.round(padded + 128.0), 0, 255).astype(np.uint8)[:h, :w]


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical images)."""
    if original.shape != reconstructed.shape:
        raise ValueError("shape mismatch")
    mse = np.mean((original.astype(np.float64)
                   - reconstructed.astype(np.float64)) ** 2)
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 ** 2 / mse)
