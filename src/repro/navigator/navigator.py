"""The navigator application state machine (Figs 5.3-5.7, §5.4).

Every screen of the prototype is a state here with the same inputs:

* **ENTRY** (Fig 5.3): welcome video; type a student number or
  register;
* **REGISTERING** (Fig 5.4): the profile dialogs, then course
  registration with per-course introduction videos;
* **MAIN**: the virtual school facilities — administration,
  classroom, library, discussion, bulletin board, exercises;
* **CLASSROOM** (Fig 5.5): a :class:`LearningSession`;
* **LIBRARY** (Fig 5.7): browse documents, follow cross-reference
  links;
* **ADMIN** (Fig 5.6): profile update and school statistics.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional

from repro.database.api import DatabaseClient
from repro.media.text import TextCodec, extract_links
from repro.navigator.session import LearningSession
from repro.obs.tracing import Tracer
from repro.school.service import SchoolClient
from repro.util.errors import PresentationError


class NavigatorState(enum.Enum):
    ENTRY = "entry"
    REGISTERING = "registering"
    MAIN = "main"
    CLASSROOM = "classroom"
    LIBRARY = "library"
    ADMIN = "admin"


FACILITIES = ("administration", "classroom", "library", "discussion",
              "bulletin", "exercise")

#: version string shown by the entry screen's "about" action (Fig 5.3)
NAVIGATOR_VERSION = "MIRL TeleSchool Navigator 1.0 (repro)"

#: well-known content ref for the virtual school's introduction clip
SCHOOL_INTRODUCTION_REF = "school-introduction"


class Navigator:
    """The user-site application."""

    def __init__(self, client: DatabaseClient,
                 school: Optional[SchoolClient] = None, sim=None) -> None:
        self.client = client
        self.school = school
        self.sim = sim
        #: user-interaction spans root here; each cross-site request a
        #: screen triggers becomes a child carried over the wire
        self._tracer = sim.tracer if sim is not None \
            else Tracer(clock=lambda: 0.0)
        self.state = NavigatorState.ENTRY
        self.student: Optional[Dict[str, Any]] = None
        self.session: Optional[LearningSession] = None
        #: UI trace: (state, event) pairs, for tests and the examples
        self.trace: List[tuple] = []

    def _note(self, event: str) -> None:
        self.trace.append((self.state.value, event))

    # -- entry screen (Fig 5.3) ------------------------------------------------

    def start(self) -> Dict[str, Any]:
        """Show the entry screen: the welcome clip and the two paths."""
        self.state = NavigatorState.ENTRY
        self._note("welcome-video")
        return {"screen": "entry", "video": "welcome",
                "actions": ["login", "register", "introduction", "about"]}

    def about(self) -> Dict[str, Any]:
        """The entry screen's version-information action."""
        self._note("about")
        return {"version": NAVIGATOR_VERSION,
                "facilities": list(FACILITIES)}

    def watch_school_introduction(self, on_end=None):
        """Stream the virtual school's general introduction clip
        (Fig 5.3's 'Introduction' button).  Works before login."""
        self._note("school-introduction")
        return self.client.get_content(SCHOOL_INTRODUCTION_REF,
                                       on_end=on_end)

    def login(self, student_number: str,
              on_done: Optional[Callable[[Dict[str, Any]], None]] = None,
              on_error: Optional[Callable] = None) -> None:
        if self.state is not NavigatorState.ENTRY:
            raise PresentationError("login is only possible from the entry screen")

        span = self._tracer.span("navigator.login", student=student_number)

        def ok(profile: Dict[str, Any]) -> None:
            self.student = profile
            self.state = NavigatorState.MAIN
            self._note(f"login:{student_number}")
            span.end()
            if on_done is not None:
                on_done(profile)

        def err(error) -> None:
            span.set(error=str(error))
            span.end()
            if on_error is not None:
                on_error(error)

        token = self._tracer.attach(span.context)
        try:
            self.client.get_student(student_number, on_result=ok,
                                    on_error=err)
        finally:
            self._tracer.detach(token)

    # -- registration (Fig 5.4) ----------------------------------------------------

    def register(self, name: str, address: str = "", email: str = "",
                 on_done: Optional[Callable[[Dict[str, Any]], None]] = None
                 ) -> None:
        """The general-information dialog; yields a new student number."""
        if self.state is not NavigatorState.ENTRY:
            raise PresentationError("register from the entry screen")
        self.state = NavigatorState.REGISTERING
        self._note("register-dialog")
        span = self._tracer.span("navigator.register")

        def ok(profile: Dict[str, Any]) -> None:
            self.student = profile
            self.state = NavigatorState.MAIN
            self._note(f"registered:{profile['student_number']}")
            span.end()
            if on_done is not None:
                on_done(profile)

        token = self._tracer.attach(span.context)
        try:
            self.client.register(name, address, email, on_result=ok)
        finally:
            self._tracer.detach(token)

    def course_introduction(self, introduction_ref: str, on_chunk=None,
                            on_end=None):
        """Stream a course's introduction video (Fig 5.4d).

        *introduction_ref* comes from the courseware summary returned
        by :meth:`list_courseware` / ``ListCourseware``.
        """
        return self.client.get_content(introduction_ref,
                                       on_chunk=on_chunk, on_end=on_end)

    def register_for_course(self, course_code: str, **cb):
        self._require_student()
        self._note(f"select-course:{course_code}")
        return self.client.register_for_course(
            self.student["student_number"], course_code, **cb)

    def list_programs(self, **cb):
        return self.client.list_programs(**cb)

    def list_courses(self, program: Optional[str] = None, **cb):
        return self.client.list_courses(program, **cb)

    # -- main menu --------------------------------------------------------------------

    def facilities(self) -> List[str]:
        self._require_student()
        return list(FACILITIES)

    def _require_student(self) -> None:
        if self.student is None:
            raise PresentationError("no student logged in")

    # -- classroom (Fig 5.5) -------------------------------------------------------------

    def enter_classroom(self, course_code: str, courseware_id: str,
                        on_ready=None) -> LearningSession:
        self._require_student()
        self.state = NavigatorState.CLASSROOM
        self._note(f"classroom:{course_code}")
        span = self._tracer.span("navigator.enter_classroom",
                                 course=course_code,
                                 courseware=courseware_id)

        def ready(session: LearningSession) -> None:
            span.end()
            if on_ready is not None:
                on_ready(session)

        token = self._tracer.attach(span.context)
        try:
            self.session = LearningSession(
                student_number=self.student["student_number"],
                course_code=course_code, courseware_id=courseware_id,
                client=self.client, sim=self.sim)
            self.session.open(on_ready=ready)
        finally:
            self._tracer.detach(token)
        return self.session

    def leave_classroom(self) -> float:
        if self.session is None:
            raise PresentationError("not in a classroom")
        position = self.session.close()
        self.session = None
        self.state = NavigatorState.MAIN
        self._note("leave-classroom")
        return position

    # -- library (Fig 5.7) ------------------------------------------------------------------

    def browse_library(self, **cb):
        self._require_student()
        self.state = NavigatorState.LIBRARY
        self._note("library")
        return self.client.list_library(**cb)

    def read_document(self, doc_id: str,
                      on_done: Callable[[Dict[str, Any]], None]) -> None:
        """Fetch a library document; text documents get their
        cross-reference links extracted for follow-up browsing."""
        self._require_student()

        def got_doc(doc: Dict[str, Any]) -> None:
            def got_content(rx) -> None:
                data = rx.data
                result = {"doc_id": doc_id, "bytes": len(data)}
                if data[:4] == b"STXT":
                    text = TextCodec().decode(data)
                    result["text"] = text
                    result["links"] = extract_links(text)
                on_done(result)
            self.client.get_content(doc["content_ref"], on_end=got_content)

        self.client.get_library_doc(doc_id, on_result=got_doc)

    # -- administration (Fig 5.6) ----------------------------------------------------------------

    def update_profile(self, **fields):
        self._require_student()
        self.state = NavigatorState.ADMIN
        self._note("update-profile")
        number = self.student["student_number"]

        def ok(profile):
            self.student = profile
        cb = {"on_result": ok}
        if "on_result" in fields:
            user_cb = fields.pop("on_result")

            def both(profile):
                ok(profile)
                user_cb(profile)
            cb = {"on_result": both}
        return self.client.update_profile(number, **fields, **cb)

    def school_statistics(self, **cb):
        self._require_student()
        return self.client.statistics(**cb)

    # -- discussion / bulletin / exercises (via the school client) ------------------------------

    def ask_facilitator(self, question: str, **cb):
        self._require_student()
        self._require_school()
        self._note("ask-facilitator")
        return self.school.ask_facilitator(
            self.student["student_number"], question, **cb)

    def read_bulletin(self, group: str, **cb):
        self._require_student()
        self._require_school()
        return self.school.bulletin_list(group, **cb)

    def take_exercise(self, exercise_id: str, answers: List[Any], **cb):
        self._require_student()
        self._require_school()
        self._note(f"exercise:{exercise_id}")
        return self.school.submit_exercise(
            exercise_id, self.student["student_number"], answers, **cb)

    def _require_school(self) -> None:
        if self.school is None:
            raise PresentationError(
                "no school service connection configured")

    # -- exit -----------------------------------------------------------------------------------------

    def exit(self) -> None:
        """Terminate the program (saving any open session position)."""
        if self.session is not None:
            self.leave_classroom()
        self._note("exit")
        self.state = NavigatorState.ENTRY
        self.student = None
