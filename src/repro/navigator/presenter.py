"""Classroom presentation (Fig 5.5).

The presenter owns a user-site MHEG engine, loads an interchanged
courseware container, resolves its by-reference content (locally or by
streaming from the database), and exposes what a GUI front-end needs:
what is visible, what is clickable, click dispatch, and the current
position for resume.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.mheg.classes.composite import CompositeClass
from repro.mheg.classes.content import ContentClass
from repro.mheg.classes.interchange import ContainerClass, DescriptorClass
from repro.mheg.engine import MhegEngine
from repro.mheg.identifiers import ObjectReference
from repro.mheg.runtime import RtState
from repro.util.errors import PresentationError


class CoursewarePresenter:
    """Load and drive one courseware presentation."""

    def __init__(self, sim=None, *, client=None,
                 local_resolver: Optional[Callable[[str], bytes]] = None,
                 name: str = "presenter") -> None:
        self.sim = sim
        self.client = client          # DatabaseClient for remote content
        self.engine = MhegEngine(sim=sim, name=name)
        if local_resolver is not None:
            self.engine.content_resolver = local_resolver
        self.container: Optional[ContainerClass] = None
        self.descriptor: Optional[DescriptorClass] = None
        self.root: Optional[ObjectReference] = None
        self.root_rt = None
        self._started_at: Optional[float] = None
        self._accumulated = 0.0
        self.load_stats: Dict[str, Any] = {}

    # -- loading ------------------------------------------------------------

    def load_blob(self, blob: bytes) -> None:
        """Decode an interchanged container and locate its root."""
        obj = self.engine.receive(blob)
        if not isinstance(obj, ContainerClass):
            raise PresentationError(
                "courseware blob must decode to a container")
        self.container = obj
        for inner in obj.objects:
            if isinstance(inner, DescriptorClass):
                self.descriptor = inner
        if self.descriptor is not None:
            ok, problems = self.engine.negotiate(self.descriptor)
            if not ok:
                raise PresentationError(
                    f"site cannot present this courseware: {problems}")
        self.root = self._find_root(obj)

    @staticmethod
    def _find_root(container: ContainerClass) -> ObjectReference:
        """The root composite: the one no other composite references."""
        composites = [o for o in container.objects
                      if isinstance(o, CompositeClass)]
        if not composites:
            raise PresentationError("container holds no composite")
        referenced = set()
        for comp in composites:
            referenced.update(str(r.identifier) for r in comp.components)
        roots = [c for c in composites
                 if str(c.identifier) not in referenced]
        if len(roots) != 1:
            raise PresentationError(
                f"expected exactly one root composite, found {len(roots)}")
        return ObjectReference(roots[0].identifier)

    def content_refs(self) -> List[str]:
        """All by-reference content keys the courseware needs."""
        if self.container is None:
            return []
        refs = []
        for obj in self.container.objects:
            if isinstance(obj, ContentClass) and obj.content_ref is not None:
                refs.append(obj.content_ref)
        return sorted(set(refs))

    def preload(self, on_ready: Optional[Callable[[], None]] = None) -> None:
        """Fetch all referenced content.

        With a *local_resolver*, preparation is synchronous.  With a
        remote client, each content object streams from the database
        and *on_ready* fires when the last one lands.
        """
        refs = self.content_refs()
        start = self.engine.now
        self.load_stats = {"objects": len(refs), "bytes": 0,
                           "load_time": None}
        if self.client is None:
            for ref in refs:
                if self.engine.content_resolver is None:
                    raise PresentationError(
                        "no content resolver and no database client")
                data = self.engine.content_resolver(ref)
                self.engine.content_cache[ref] = data
                self.load_stats["bytes"] += len(data)
            self._prepare_all()
            self.load_stats["load_time"] = self.engine.now - start
            if on_ready is not None:
                on_ready()
            return

        missing = set(refs)
        if not missing:
            self._prepare_all()
            self.load_stats["load_time"] = 0.0
            if on_ready is not None:
                on_ready()
            return

        def finish_one(content_ref: str, receiver) -> None:
            self.engine.content_cache[content_ref] = receiver.data
            self.load_stats["bytes"] += len(receiver.data)
            missing.discard(content_ref)
            if not missing:
                self._prepare_all()
                self.load_stats["load_time"] = self.engine.now - start
                if on_ready is not None:
                    on_ready()

        for ref in refs:
            self.client.get_content(
                ref, on_end=lambda rx, ref=ref: finish_one(ref, rx))

    def _prepare_all(self) -> None:
        assert self.container is not None
        for obj in self.container.objects:
            if isinstance(obj, ContentClass):
                self.engine.prepare(ObjectReference(obj.identifier))

    # -- playback ---------------------------------------------------------------

    def start(self, from_position: float = 0.0) -> None:
        """Instantiate and run the root; optionally resume.

        Resume fast-forwards a standalone engine silently to the saved
        position; attached to a shared simulator, time cannot jump, so
        the position is recorded but playback starts at the beginning.
        """
        if self.root is None:
            raise PresentationError("no courseware loaded")
        self.root_rt = self.engine.new_runtime(self.root)
        self.engine.run(self.root_rt)
        self._started_at = self.engine.now
        self._accumulated = 0.0
        if from_position > 0 and self.sim is None:
            self.engine.advance(self.engine.now + from_position)
            self._accumulated = from_position
            self._started_at = self.engine.now

    @property
    def playing(self) -> bool:
        return (self.root_rt is not None
                and self.root_rt.state is RtState.RUNNING)

    def position(self) -> float:
        """Seconds of presentation elapsed (the resume position)."""
        if self._started_at is None:
            return 0.0
        return self._accumulated + (self.engine.now - self._started_at)

    def advance(self, seconds: float) -> None:
        """Standalone mode: let the presentation progress."""
        self.engine.advance(self.engine.now + seconds)

    def stop(self) -> float:
        """End the presentation; returns the position for resume."""
        position = self.position()
        if self.root_rt is not None and \
                self.root_rt.state in (RtState.RUNNING, RtState.PAUSED):
            self.engine.stop(self.root_rt)
        return position

    # -- what a GUI needs ----------------------------------------------------------

    def visible(self, channel: str = "main") -> List[str]:
        """Names of content objects currently presented."""
        out = []
        for ref_str in self.engine.channels[channel].presented:
            rt = self.engine.runtime(ObjectReference.parse(ref_str))
            if isinstance(rt.model, ContentClass) and rt.model.info.name:
                out.append(rt.model.info.name)
        return out

    def clickable(self, channel: str = "main") -> List[str]:
        out = []
        for ref_str in self.engine.channels[channel].presented:
            rt = self.engine.runtime(ObjectReference.parse(ref_str))
            if rt.selectable and rt.model.info.name:
                out.append(rt.model.info.name)
        return out

    def click(self, name: str) -> None:
        """Select the presented object with the given author name."""
        for rt in self.engine.runtimes():
            if (rt.model.info.name == name and rt.selectable
                    and rt.state is RtState.RUNNING):
                self.engine.select(rt)
                return
        raise PresentationError(
            f"no clickable object {name!r} is presented")

    def object_named(self, name: str):
        """The live run-time object with the given author name."""
        for rt in self.engine.runtimes():
            if rt.model.info.name == name:
                return rt
        raise PresentationError(f"no run-time object named {name!r}")
