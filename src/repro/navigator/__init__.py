"""The courseware navigator (Chapter 5).

The user-site application: it presents courseware retrieved on demand
from the database, handles the student's interaction, and fronts every
TeleSchool facility (§5.2.1).  The 1996 prototype was a Windows 95
GUI; this one is headless — every screen of Figs 5.3-5.7 exists as a
state of :class:`~repro.navigator.navigator.Navigator` with the same
inputs and effects, which makes the sample learning session of §5.4
scriptable and testable.

* :mod:`repro.navigator.presenter` — courseware playback on an MHEG
  engine, with content preloading and visibility queries;
* :mod:`repro.navigator.session` — one classroom session: resume
  positions, bookmarks, interaction;
* :mod:`repro.navigator.navigator` — the application state machine:
  entry screen, registration, main menu, classroom, library,
  administration, discussion, bulletin, exercises.
"""

from repro.navigator.presenter import CoursewarePresenter
from repro.navigator.session import LearningSession
from repro.navigator.navigator import Navigator, NavigatorState

__all__ = [
    "CoursewarePresenter",
    "LearningSession",
    "Navigator",
    "NavigatorState",
]
