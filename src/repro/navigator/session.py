"""One classroom session (§5.4).

Binds a student, a course, and a presenter: fetches the courseware on
demand, resumes where the student left off, records bookmarks, and
saves the stop position on exit — "some important information such as
the stop position of the courseware presentation is to be
automatically stored for later usage."
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.database.api import DatabaseClient
from repro.navigator.presenter import CoursewarePresenter
from repro.util.errors import PresentationError


class LearningSession:
    """The classroom: fetch -> resume -> interact -> save position."""

    def __init__(self, student_number: str, course_code: str,
                 courseware_id: str, client: DatabaseClient,
                 sim=None) -> None:
        self.student_number = student_number
        self.course_code = course_code
        self.courseware_id = courseware_id
        self.client = client
        self.sim = sim
        self.presenter = CoursewarePresenter(sim=sim, client=client,
                                             name=f"session:{course_code}")
        self.bookmarks: List[str] = []
        self.ready = False
        self.resume_position = 0.0
        self._on_ready: Optional[Callable[["LearningSession"], None]] = None

    def open(self, on_ready: Optional[Callable[["LearningSession"], None]]
             = None) -> None:
        """Fetch blob + resume position + content, then start playback."""
        self._on_ready = on_ready
        self.client.get_resume(
            self.student_number, self.courseware_id,
            on_result=self._got_resume)

    def _got_resume(self, position: float) -> None:
        self.resume_position = float(position)
        self.client.Get_Selected_Doc(self.courseware_id,
                                     on_result=self._got_blob)

    def _got_blob(self, blob: bytes) -> None:
        self.presenter.load_blob(blob)
        self.presenter.preload(on_ready=self._content_ready)

    def _content_ready(self) -> None:
        self.presenter.start(from_position=self.resume_position)
        self.ready = True
        if self._on_ready is not None:
            self._on_ready(self)

    # -- in-session facilities ------------------------------------------------

    def click(self, name: str) -> None:
        if not self.ready:
            raise PresentationError("session not ready yet")
        self.presenter.click(name)

    def add_bookmark(self, object_name: str) -> None:
        """Bookmark an interesting object (§5.2.1 Other Features)."""
        rt = self.presenter.object_named(object_name)
        reference = str(rt.model.identifier)
        if reference not in self.bookmarks:
            self.bookmarks.append(reference)
        self.client.add_bookmark(self.student_number, self.courseware_id,
                                 reference)

    def close(self) -> float:
        """Stop playback and persist the resume position."""
        position = self.presenter.stop()
        self.client.save_resume(self.student_number, self.courseware_id,
                                position)
        self.ready = False
        return position
