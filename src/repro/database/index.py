"""Keyword tree and inverted index (§5.5).

The navigator's future APIs are named in the thesis: ``GetKeywordTree``
"to retrieve and display the keywords provided by the database" and
``GetDocByKeyword`` "to get the document list in the database by the
keyword provided".  Both are served from these structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.util.errors import DatabaseError


@dataclass
class KeywordNode:
    keyword: str
    children: Dict[str, "KeywordNode"] = field(default_factory=dict)

    def to_value(self) -> dict:
        return {"keyword": self.keyword,
                "children": [c.to_value()
                             for _, c in sorted(self.children.items())]}


class KeywordTree:
    """Hierarchical keyword taxonomy (e.g. networks / atm / cells)."""

    SEP = "/"

    def __init__(self) -> None:
        self._root = KeywordNode(keyword="")

    def add(self, path: str) -> None:
        """Insert a keyword path like ``"networks/atm/cells"``."""
        parts = [p for p in path.split(self.SEP) if p]
        if not parts:
            raise DatabaseError("empty keyword path")
        node = self._root
        for part in parts:
            node = node.children.setdefault(part, KeywordNode(keyword=part))

    def contains(self, path: str) -> bool:
        node = self._root
        for part in [p for p in path.split(self.SEP) if p]:
            node = node.children.get(part)
            if node is None:
                return False
        return True

    def subtree(self, path: str = "") -> dict:
        """The tree (or a subtree) as a plain value for interchange."""
        node = self._root
        for part in [p for p in path.split(self.SEP) if p]:
            node = node.children.get(part)
            if node is None:
                raise DatabaseError(f"unknown keyword path {path!r}")
        return node.to_value()

    def leaves(self) -> List[str]:
        out: List[str] = []

        def walk(node: KeywordNode, prefix: str) -> None:
            if not node.children:
                if prefix:
                    out.append(prefix)
                return
            for name, child in sorted(node.children.items()):
                walk(child, f"{prefix}{self.SEP}{name}" if prefix else name)

        walk(self._root, "")
        return out


class InvertedIndex:
    """keyword -> document ids, with conjunctive queries."""

    def __init__(self) -> None:
        self._postings: Dict[str, Set[str]] = {}

    def add(self, doc_id: str, keywords: Iterable[str]) -> None:
        for kw in keywords:
            kw = kw.strip().lower()
            if kw:
                self._postings.setdefault(kw, set()).add(doc_id)

    def remove(self, doc_id: str) -> None:
        for postings in self._postings.values():
            postings.discard(doc_id)

    def lookup(self, keyword: str) -> List[str]:
        return sorted(self._postings.get(keyword.strip().lower(), ()))

    def lookup_all(self, keywords: Iterable[str]) -> List[str]:
        """Documents matching *all* keywords (conjunctive query)."""
        sets = [set(self.lookup(kw)) for kw in keywords]
        if not sets:
            return []
        result = set.intersection(*sets)
        return sorted(result)

    def keywords(self) -> List[str]:
        return sorted(k for k, docs in self._postings.items() if docs)
