"""Database facade and the client/server pair (Fig 3.5, §5.3.2).

:class:`CoursewareDatabase` is the in-process facade the database site
runs: courseware catalogue, content server, keyword indexes, student
records, courses, and library documents.

:class:`DatabaseServer` exposes it over the transport layer;
:class:`DatabaseClient` is the client module embedded in the navigator,
with the thesis's API names: ``Get_List_Doc``, ``Get_Selected_Doc``,
plus the future APIs §5.5 asks for — ``GetKeywordTree`` and
``GetDocByKeyword`` — and the administration calls the TeleSchool
screens need.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.database.contentserver import ContentServer
from repro.database.index import InvertedIndex, KeywordTree
from repro.database.schema import (
    ContentRecord, CourseRecord, CoursewareRecord, LibraryDocument,
    StudentRecord,
)
from repro.database.store import ObjectStore
from repro.transport.rpc import PendingCall, RpcClient, RpcServer, StreamReceiver
from repro.util.errors import DatabaseError

COURSEWARE = "courseware"
COURSES = "courses"
STUDENTS = "students"
LIBRARY = "library"


class CoursewareDatabase:
    """The database site's in-process service layer."""

    def __init__(self) -> None:
        self.store = ObjectStore()
        self.content = ContentServer(self.store)
        self.keyword_tree = KeywordTree()
        self.doc_index = InvertedIndex()
        self._student_numbers = itertools.count(1000)

    # -- courseware catalogue ------------------------------------------------

    def store_courseware(self, record: CoursewareRecord) -> None:
        existing = self.store.get_or_none(COURSEWARE, record.courseware_id)
        if existing is not None:
            record.version = existing.version + 1
        self.store.put(COURSEWARE, record.courseware_id, record)
        self.doc_index.remove(record.courseware_id)
        self.doc_index.add(record.courseware_id, record.keywords)
        for kw in record.keywords:
            self.keyword_tree.add(kw)

    def get_courseware(self, courseware_id: str) -> CoursewareRecord:
        record = self.store.get_or_none(COURSEWARE, courseware_id)
        if record is None:
            raise DatabaseError(f"no courseware {courseware_id!r}")
        return record

    def list_courseware(self, program: Optional[str] = None) -> List[Dict[str, Any]]:
        out = []
        for _, record in self.store.items(COURSEWARE):
            if program is None or record.program == program:
                out.append(record.summary())
        return out

    # -- content -----------------------------------------------------------------

    def store_content(self, record: ContentRecord) -> None:
        self.content.put(record)

    # -- courses and programs ------------------------------------------------------

    def add_course(self, course: CourseRecord) -> None:
        if not self.store.exists(COURSEWARE, course.courseware_id):
            raise DatabaseError(
                f"course {course.course_code}: courseware "
                f"{course.courseware_id!r} not stored")
        self.store.put(COURSES, course.course_code, course)

    def get_course(self, course_code: str) -> CourseRecord:
        course = self.store.get_or_none(COURSES, course_code)
        if course is None:
            raise DatabaseError(f"no course {course_code!r}")
        return course

    def list_courses(self, program: Optional[str] = None) -> List[CourseRecord]:
        return [c for _, c in self.store.items(COURSES)
                if program is None or c.program == program]

    def programs(self) -> List[str]:
        return sorted({c.program for _, c in self.store.items(COURSES)})

    # -- students -----------------------------------------------------------------

    def register_student(self, name: str, address: str = "",
                         email: str = "") -> StudentRecord:
        number = f"S{next(self._student_numbers)}"
        student = StudentRecord(student_number=number, name=name,
                                address=address, email=email)
        self.store.put(STUDENTS, number, student)
        return student

    def get_student(self, student_number: str) -> StudentRecord:
        student = self.store.get_or_none(STUDENTS, student_number)
        if student is None:
            raise DatabaseError(f"no student {student_number!r}")
        return student

    def update_student(self, student: StudentRecord) -> None:
        if not self.store.exists(STUDENTS, student.student_number):
            raise DatabaseError(f"no student {student.student_number!r}")
        self.store.put(STUDENTS, student.student_number, student)

    def register_for_course(self, student_number: str, course_code: str) -> None:
        student = self.get_student(student_number)
        self.get_course(course_code)  # must exist
        if course_code not in student.registered_courses:
            student.registered_courses.append(course_code)
            self.update_student(student)

    # -- library ---------------------------------------------------------------------

    def add_library_document(self, doc: LibraryDocument) -> None:
        if not self.content.exists(doc.content_ref):
            raise DatabaseError(
                f"library doc {doc.doc_id}: content {doc.content_ref!r} "
                "not stored")
        self.store.put(LIBRARY, doc.doc_id, doc)
        self.doc_index.add(doc.doc_id, doc.keywords)
        for kw in doc.keywords:
            self.keyword_tree.add(kw)

    def get_library_document(self, doc_id: str) -> LibraryDocument:
        doc = self.store.get_or_none(LIBRARY, doc_id)
        if doc is None:
            raise DatabaseError(f"no library document {doc_id!r}")
        return doc

    def list_library(self) -> List[Dict[str, Any]]:
        return [{"doc_id": d.doc_id, "title": d.title,
                 "media_kind": d.media_kind, "keywords": list(d.keywords)}
                for _, d in self.store.items(LIBRARY)]

    # -- queries ------------------------------------------------------------------------

    def docs_by_keyword(self, keyword: str) -> List[str]:
        return self.doc_index.lookup(keyword)

    def statistics(self) -> Dict[str, Any]:
        """School statistics (§5.2.1 Administration)."""
        registrations = sum(
            s.find_number_of_course()
            for _, s in self.store.items(STUDENTS))
        return {
            "courseware": self.store.count(COURSEWARE),
            "courses": self.store.count(COURSES),
            "students": self.store.count(STUDENTS),
            "library_documents": self.store.count(LIBRARY),
            "content_objects": len(self.content.refs()),
            "content_bytes": self.content.total_bytes(),
            "course_registrations": registrations,
        }


class DatabaseServer:
    """RPC surface of the courseware database.

    When a billing service is attached (§5.2.1 leaves "space for the
    billing services"), course registrations and classroom session
    time are metered automatically as their RPCs are served.
    """

    def __init__(self, db: CoursewareDatabase, *, billing=None,
                 now_fn: Optional[Callable[[], float]] = None) -> None:
        self.db = db
        self.billing = billing
        self._now_fn = now_fn or (lambda: 0.0)
        #: (student, courseware) -> position at last SaveResume, so the
        #: billed session time is the increment, not the total
        self._billed_positions: Dict[Any, float] = {}

    def attach(self, rpc: RpcServer) -> RpcServer:
        """Register every method on an RpcServer endpoint."""
        db = self.db
        rpc.register("Get_List_Doc",
                     lambda p: [s["courseware_id"]
                                for s in db.list_courseware(
                                    (p or {}).get("program"))])
        rpc.register("Get_Selected_Doc",
                     lambda p: db.get_courseware(p["name"]).container_blob)
        rpc.register("GetKeywordTree",
                     lambda p: db.keyword_tree.subtree((p or {}).get("path", "")))
        rpc.register("GetDocByKeyword",
                     lambda p: db.docs_by_keyword(p["keyword"]))
        rpc.register("ListCourseware",
                     lambda p: db.list_courseware((p or {}).get("program")))
        rpc.register("ListPrograms", lambda p: db.programs())
        rpc.register("ListCourses",
                     lambda p: [{"course_code": c.course_code, "name": c.name,
                                 "program": c.program,
                                 "courseware_id": c.courseware_id,
                                 "description": c.description}
                                for c in db.list_courses(
                                    (p or {}).get("program"))])
        rpc.register("Register",
                     lambda p: db.register_student(
                         p["name"], p.get("address", ""),
                         p.get("email", "")).profile())
        rpc.register("GetStudent",
                     lambda p: db.get_student(p["student_number"]).profile())
        rpc.register("UpdateProfile", self._update_profile)
        rpc.register("RegisterForCourse", self._register_for_course)
        rpc.register("SaveResume", self._save_resume)
        rpc.register("GetResume",
                     lambda p: db.get_student(p["student_number"])
                     .resume_positions.get(p["courseware_id"], 0.0))
        rpc.register("AddBookmark", self._add_bookmark)
        rpc.register("GetBookmarks",
                     lambda p: db.get_student(p["student_number"])
                     .bookmarks.get(p["courseware_id"], []))
        rpc.register("ListLibrary", lambda p: db.list_library())
        rpc.register("GetLibraryDoc",
                     lambda p: {"doc_id": p["doc_id"],
                                "content_ref": db.get_library_document(
                                    p["doc_id"]).content_ref})
        rpc.register("Statistics", lambda p: db.statistics())
        rpc.register_stream("GetContent",
                            lambda p: db.content.chunks(p["content_ref"]))
        rpc.register("GetContentInfo", self._content_info)
        # upload surface used by the production center and author sites
        rpc.register("StoreContent", self._store_content)
        rpc.register("StoreCourseware", self._store_courseware)
        rpc.register("AddCourse", self._add_course)
        rpc.register("AddLibraryDoc", self._add_library_doc)
        return rpc

    def _update_profile(self, p: Dict[str, Any]) -> Dict[str, Any]:
        student = self.db.get_student(p["student_number"])
        for attr in ("name", "address", "email"):
            if attr in p:
                setattr(student, attr, p[attr])
        self.db.update_student(student)
        return student.profile()

    def _register_for_course(self, p: Dict[str, Any]) -> List[str]:
        student = self.db.get_student(p["student_number"])
        newly = p["course_code"] not in student.registered_courses
        self.db.register_for_course(p["student_number"], p["course_code"])
        if self.billing is not None and newly:
            self.billing.record_registration(
                p["student_number"], p["course_code"], at=self._now_fn())
        return list(self.db.get_student(p["student_number"])
                    .registered_courses)

    def _save_resume(self, p: Dict[str, Any]) -> bool:
        student = self.db.get_student(p["student_number"])
        position = float(p["position"])
        student.resume_positions[p["courseware_id"]] = position
        self.db.update_student(student)
        if self.billing is not None:
            key = (p["student_number"], p["courseware_id"])
            previous = self._billed_positions.get(key, 0.0)
            increment = max(0.0, position - previous)
            self._billed_positions[key] = max(previous, position)
            if increment > 0:
                self.billing.record_session(
                    p["student_number"], p["courseware_id"], increment,
                    at=self._now_fn())
        return True

    def _store_content(self, p: Dict[str, Any]) -> bool:
        self.db.store_content(ContentRecord(
            content_ref=p["content_ref"], media_kind=p["media_kind"],
            coding_method=p["coding_method"], data=p["data"],
            attributes=dict(p.get("attributes", {}))))
        return True

    def _store_courseware(self, p: Dict[str, Any]) -> Dict[str, Any]:
        record = CoursewareRecord(
            courseware_id=p["courseware_id"], title=p["title"],
            program=p["program"], container_blob=p["container_blob"],
            keywords=list(p.get("keywords", [])),
            introduction_ref=p.get("introduction_ref"),
            author=p.get("author", ""))
        self.db.store_courseware(record)
        return record.summary()

    def _add_course(self, p: Dict[str, Any]) -> bool:
        self.db.add_course(CourseRecord(
            course_code=p["course_code"], name=p["name"],
            program=p["program"], courseware_id=p["courseware_id"],
            description=p.get("description", "")))
        return True

    def _add_library_doc(self, p: Dict[str, Any]) -> bool:
        self.db.add_library_document(LibraryDocument(
            doc_id=p["doc_id"], title=p["title"],
            media_kind=p["media_kind"], content_ref=p["content_ref"],
            keywords=list(p.get("keywords", []))))
        return True

    def _add_bookmark(self, p: Dict[str, Any]) -> List[str]:
        student = self.db.get_student(p["student_number"])
        marks = student.bookmarks.setdefault(p["courseware_id"], [])
        if p["reference"] not in marks:
            marks.append(p["reference"])
        self.db.update_student(student)
        return list(marks)

    def _content_info(self, p: Dict[str, Any]) -> Dict[str, Any]:
        record = self.db.content.get(p["content_ref"])
        return {"content_ref": record.content_ref,
                "media_kind": record.media_kind,
                "coding_method": record.coding_method,
                "size": record.size,
                "attributes": dict(record.attributes)}


class DatabaseClient:
    """The client module embedded in the navigator (§5.3.2)."""

    def __init__(self, rpc: RpcClient) -> None:
        self.rpc = rpc

    # thesis-named APIs
    def Get_List_Doc(self, program: Optional[str] = None,
                     **cb) -> PendingCall:
        return self.rpc.call("Get_List_Doc", {"program": program}, **cb)

    def Get_Selected_Doc(self, name: str, **cb) -> PendingCall:
        return self.rpc.call("Get_Selected_Doc", {"name": name}, **cb)

    def GetKeywordTree(self, path: str = "", **cb) -> PendingCall:
        return self.rpc.call("GetKeywordTree", {"path": path}, **cb)

    def GetDocByKeyword(self, keyword: str, **cb) -> PendingCall:
        return self.rpc.call("GetDocByKeyword", {"keyword": keyword}, **cb)

    # administration / navigation
    def register(self, name: str, address: str = "", email: str = "",
                 **cb) -> PendingCall:
        return self.rpc.call("Register", {"name": name, "address": address,
                                          "email": email}, **cb)

    def get_student(self, student_number: str, **cb) -> PendingCall:
        return self.rpc.call("GetStudent",
                             {"student_number": student_number}, **cb)

    def update_profile(self, student_number: str, **fields) -> PendingCall:
        cb = {k: fields.pop(k) for k in ("on_result", "on_error")
              if k in fields}
        return self.rpc.call("UpdateProfile",
                             {"student_number": student_number, **fields},
                             **cb)

    def register_for_course(self, student_number: str, course_code: str,
                            **cb) -> PendingCall:
        return self.rpc.call("RegisterForCourse",
                             {"student_number": student_number,
                              "course_code": course_code}, **cb)

    def list_programs(self, **cb) -> PendingCall:
        return self.rpc.call("ListPrograms", None, **cb)

    def list_courses(self, program: Optional[str] = None, **cb) -> PendingCall:
        return self.rpc.call("ListCourses", {"program": program}, **cb)

    def list_courseware(self, program: Optional[str] = None,
                        **cb) -> PendingCall:
        return self.rpc.call("ListCourseware", {"program": program}, **cb)

    def save_resume(self, student_number: str, courseware_id: str,
                    position: float, **cb) -> PendingCall:
        return self.rpc.call("SaveResume",
                             {"student_number": student_number,
                              "courseware_id": courseware_id,
                              "position": position}, **cb)

    def get_resume(self, student_number: str, courseware_id: str,
                   **cb) -> PendingCall:
        return self.rpc.call("GetResume",
                             {"student_number": student_number,
                              "courseware_id": courseware_id}, **cb)

    def add_bookmark(self, student_number: str, courseware_id: str,
                     reference: str, **cb) -> PendingCall:
        return self.rpc.call("AddBookmark",
                             {"student_number": student_number,
                              "courseware_id": courseware_id,
                              "reference": reference}, **cb)

    def get_bookmarks(self, student_number: str, courseware_id: str,
                      **cb) -> PendingCall:
        return self.rpc.call("GetBookmarks",
                             {"student_number": student_number,
                              "courseware_id": courseware_id}, **cb)

    def list_library(self, **cb) -> PendingCall:
        return self.rpc.call("ListLibrary", None, **cb)

    def get_library_doc(self, doc_id: str, **cb) -> PendingCall:
        return self.rpc.call("GetLibraryDoc", {"doc_id": doc_id}, **cb)

    def statistics(self, **cb) -> PendingCall:
        return self.rpc.call("Statistics", None, **cb)

    def get_content_info(self, content_ref: str, **cb) -> PendingCall:
        return self.rpc.call("GetContentInfo",
                             {"content_ref": content_ref}, **cb)

    def get_content(self, content_ref: str, *,
                    on_chunk: Optional[Callable[[bytes], None]] = None,
                    on_end: Optional[Callable[[StreamReceiver], None]] = None
                    ) -> StreamReceiver:
        return self.rpc.open_stream("GetContent",
                                    {"content_ref": content_ref},
                                    on_chunk=on_chunk, on_end=on_end)


def wait_for(sim, pending: PendingCall, timeout: float = 30.0) -> Any:
    """Test/example helper: run the simulator until a call completes."""
    deadline = sim.now + timeout
    while not pending.done and sim.now < deadline:
        if not sim.step():
            break
    if not pending.done:
        raise DatabaseError(f"call {pending.method!r} did not complete")
    if pending.error is not None:
        raise pending.error
    return pending.result
