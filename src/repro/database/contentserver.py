"""Content server: on-demand, chunked delivery of media data.

§3.4.2: "content objects of large size are transmitted only at the
time they are requested, the transmission resource is saved and the
real time performance is improved."  The content server is the
database-side component that answers those requests, serving whole
objects or frame-granular video streams.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.database.schema import ContentRecord
from repro.database.store import ObjectStore
from repro.media.video import VideoStream
from repro.obs.tracing import NULL_SPAN, Tracer
from repro.util.errors import DatabaseError

CONTENT_COLLECTION = "content"


class ContentServer:
    """Serves content records out of an object store."""

    def __init__(self, store: ObjectStore, chunk_size: int = 8192, *,
                 tracer: Optional[Tracer] = None) -> None:
        self.store = store
        self.chunk_size = chunk_size
        self.requests = 0
        self.bytes_served = 0
        #: wired by the owning site so content lookups appear in the
        #: request's cross-site trace (under the rpc.server span)
        self.tracer = tracer

    def put(self, record: ContentRecord) -> None:
        self.store.put(CONTENT_COLLECTION, record.content_ref, record)

    def get(self, content_ref: str) -> ContentRecord:
        self.requests += 1
        span = self.tracer.span("db.get_content", content_ref=content_ref) \
            if self.tracer is not None else NULL_SPAN
        with span:
            record = self.store.get_or_none(CONTENT_COLLECTION, content_ref)
            if record is None:
                raise DatabaseError(f"no content object {content_ref!r}")
            self.bytes_served += record.size
            span.set(bytes=record.size)
            return record

    def exists(self, content_ref: str) -> bool:
        return self.store.exists(CONTENT_COLLECTION, content_ref)

    def refs(self) -> List[str]:
        return self.store.keys(CONTENT_COLLECTION)

    def total_bytes(self) -> int:
        return sum(record.size
                   for _, record in self.store.items(CONTENT_COLLECTION))

    # -- streaming ---------------------------------------------------------

    def chunks(self, content_ref: str) -> Iterator[bytes]:
        """Fixed-size chunks of a content object (bulk delivery)."""
        data = self.get(content_ref).data
        for i in range(0, len(data), self.chunk_size):
            yield data[i:i + self.chunk_size]

    def video_frames(self, content_ref: str) -> Iterator[tuple]:
        """(timestamp, frame bytes) pairs for a stored video object —
        the unit a streaming sender paces onto the network."""
        record = self.get(content_ref)
        if record.coding_method != "SMPG":
            raise DatabaseError(
                f"{content_ref!r} is {record.coding_method}, not video")
        yield from VideoStream(record.data)
