"""Database persistence — the MEDIAFILE role (Fig 5.1).

MEDIABASE's storage layer put multimedia data on real disks; here the
equivalent is a deterministic snapshot format so a courseware database
survives process restarts: :func:`snapshot` serialises every record to
bytes (via the wire encoding), :func:`restore` rebuilds a fully
functional :class:`~repro.database.api.CoursewareDatabase`, including
the keyword tree and inverted index (rebuilt from the records rather
than stored, so indexes can never drift from the data).
"""

from __future__ import annotations

import struct
from typing import Any, Dict

from repro.database.api import (
    COURSES, COURSEWARE, CoursewareDatabase, LIBRARY, STUDENTS,
)
from repro.database.contentserver import CONTENT_COLLECTION
from repro.database.schema import (
    ContentRecord, CourseRecord, CoursewareRecord, LibraryDocument,
    StudentRecord,
)
from repro.transport.wire import dump_value, load_value
from repro.util.errors import DatabaseError

_MAGIC = b"MDB1"


def _courseware_to_value(r: CoursewareRecord) -> Dict[str, Any]:
    return {"courseware_id": r.courseware_id, "title": r.title,
            "program": r.program, "container_blob": r.container_blob,
            "keywords": list(r.keywords),
            "introduction_ref": r.introduction_ref,
            "author": r.author, "version": r.version}


def _courseware_from_value(v: Dict[str, Any]) -> CoursewareRecord:
    return CoursewareRecord(
        courseware_id=v["courseware_id"], title=v["title"],
        program=v["program"], container_blob=v["container_blob"],
        keywords=list(v.get("keywords", [])),
        introduction_ref=v.get("introduction_ref"),
        author=v.get("author", ""), version=int(v.get("version", 1)))


def _content_to_value(r: ContentRecord) -> Dict[str, Any]:
    return {"content_ref": r.content_ref, "media_kind": r.media_kind,
            "coding_method": r.coding_method, "data": r.data,
            "attributes": dict(r.attributes)}


def _content_from_value(v: Dict[str, Any]) -> ContentRecord:
    return ContentRecord(content_ref=v["content_ref"],
                         media_kind=v["media_kind"],
                         coding_method=v["coding_method"],
                         data=v["data"],
                         attributes=dict(v.get("attributes", {})))


def _course_to_value(r: CourseRecord) -> Dict[str, Any]:
    return {"course_code": r.course_code, "name": r.name,
            "program": r.program, "courseware_id": r.courseware_id,
            "sessions_planned": r.sessions_planned,
            "description": r.description}


def _course_from_value(v: Dict[str, Any]) -> CourseRecord:
    return CourseRecord(course_code=v["course_code"], name=v["name"],
                        program=v["program"],
                        courseware_id=v["courseware_id"],
                        sessions_planned=int(v.get("sessions_planned", 13)),
                        description=v.get("description", ""))


def _student_to_value(r: StudentRecord) -> Dict[str, Any]:
    return {"student_number": r.student_number, "name": r.name,
            "address": r.address, "email": r.email,
            "registered_courses": list(r.registered_courses),
            "resume_positions": dict(r.resume_positions),
            "bookmarks": {k: list(v) for k, v in r.bookmarks.items()},
            "scores": dict(r.scores)}


def _student_from_value(v: Dict[str, Any]) -> StudentRecord:
    return StudentRecord(
        student_number=v["student_number"], name=v["name"],
        address=v.get("address", ""), email=v.get("email", ""),
        registered_courses=list(v.get("registered_courses", [])),
        resume_positions={k: float(p) for k, p in
                          v.get("resume_positions", {}).items()},
        bookmarks={k: list(m) for k, m in v.get("bookmarks", {}).items()},
        scores={k: float(s) for k, s in v.get("scores", {}).items()})


def _library_to_value(r: LibraryDocument) -> Dict[str, Any]:
    return {"doc_id": r.doc_id, "title": r.title,
            "media_kind": r.media_kind, "content_ref": r.content_ref,
            "keywords": list(r.keywords)}


def _library_from_value(v: Dict[str, Any]) -> LibraryDocument:
    return LibraryDocument(doc_id=v["doc_id"], title=v["title"],
                           media_kind=v["media_kind"],
                           content_ref=v["content_ref"],
                           keywords=list(v.get("keywords", [])))


def snapshot(db: CoursewareDatabase) -> bytes:
    """Serialise the whole database to bytes."""
    payload = {
        "courseware": [_courseware_to_value(r)
                       for _, r in db.store.items(COURSEWARE)],
        "content": [_content_to_value(r)
                    for _, r in db.store.items(CONTENT_COLLECTION)],
        "courses": [_course_to_value(r) for _, r in db.store.items(COURSES)],
        "students": [_student_to_value(r)
                     for _, r in db.store.items(STUDENTS)],
        "library": [_library_to_value(r)
                    for _, r in db.store.items(LIBRARY)],
    }
    body = dump_value(payload)
    return _MAGIC + struct.pack(">I", len(body)) + body


def restore(data: bytes) -> CoursewareDatabase:
    """Rebuild a database (records + indexes) from a snapshot."""
    if data[:4] != _MAGIC:
        raise DatabaseError("not a MITS database snapshot")
    (length,) = struct.unpack_from(">I", data, 4)
    body = data[8:]
    if len(body) != length:
        raise DatabaseError("truncated database snapshot")
    payload = load_value(body)

    db = CoursewareDatabase()
    # content must land before courseware/library (integrity checks)
    for v in payload.get("content", []):
        db.store_content(_content_from_value(v))
    for v in payload.get("courseware", []):
        # store_courseware only bumps versions over an existing record,
        # so snapshot versions round-trip unchanged on a fresh database
        db.store_courseware(_courseware_from_value(v))
    for v in payload.get("courses", []):
        db.add_course(_course_from_value(v))
    for v in payload.get("library", []):
        db.add_library_document(_library_from_value(v))
    highest = 999
    for v in payload.get("students", []):
        student = _student_from_value(v)
        db.store.put("students", student.student_number, student)
        digits = student.student_number.lstrip("S")
        if digits.isdigit():
            highest = max(highest, int(digits))
    # continue numbering after the highest restored student
    import itertools
    db._student_numbers = itertools.count(highest + 1)
    return db
