"""The courseware database (Fig 3.3-3.5, §3.4.2, §5.1.2).

MITS stored courseware in ObjectStore, a commercial object-oriented
database on a SUN/ULTRA workstation.  This subpackage replaces it:

* :mod:`repro.database.store` — an object store with named
  collections, optimistic transactions, and secondary indexes;
* :mod:`repro.database.index` — the keyword tree and inverted index
  behind ``GetKeywordTree`` / ``GetDocByKeyword`` (§5.5);
* :mod:`repro.database.schema` — the records MITS keeps: courseware,
  content, students, courses, library documents;
* :mod:`repro.database.contentserver` — chunked delivery of content
  data for on-demand streaming;
* :mod:`repro.database.api` — the database facade plus the
  client/server pair exposing the thesis's APIs (``Get_List_Doc``,
  ``Get_Selected_Doc``, ...) over the transport layer.
"""

from repro.database.store import ObjectStore, Transaction
from repro.database.index import KeywordTree, InvertedIndex
from repro.database.schema import (
    ContentRecord, CoursewareRecord, CourseRecord, LibraryDocument,
    StudentRecord,
)
from repro.database.contentserver import ContentServer
from repro.database.api import (
    CoursewareDatabase, DatabaseServer, DatabaseClient,
)
from repro.database.persistence import restore, snapshot

__all__ = [
    "ObjectStore",
    "Transaction",
    "KeywordTree",
    "InvertedIndex",
    "ContentRecord",
    "CoursewareRecord",
    "CourseRecord",
    "LibraryDocument",
    "StudentRecord",
    "ContentServer",
    "CoursewareDatabase",
    "DatabaseServer",
    "DatabaseClient",
    "snapshot",
    "restore",
]
