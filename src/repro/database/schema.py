"""Records held by the courseware database.

These mirror the data the prototype kept: courseware (MHEG containers
plus catalogue metadata), content objects referenced by courseware,
students and their course registrations (the CStudent / CCourse
classes of §5.3.3), courses on offer per program, and library
documents for browsing (§5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class CoursewareRecord:
    """One authored courseware: the interchange blob + catalogue data."""

    courseware_id: str
    title: str
    program: str
    #: encoded MHEG container (form a) ready for interchange
    container_blob: bytes
    keywords: List[str] = field(default_factory=list)
    #: id of the course introduction video in the content store
    introduction_ref: Optional[str] = None
    author: str = ""
    version: int = 1

    def summary(self) -> Dict[str, Any]:
        return {"courseware_id": self.courseware_id, "title": self.title,
                "program": self.program, "keywords": list(self.keywords),
                "size": len(self.container_blob), "author": self.author,
                "version": self.version,
                "introduction_ref": self.introduction_ref}


@dataclass
class ContentRecord:
    """One stored media object, addressed by content_ref."""

    content_ref: str
    media_kind: str        # video / audio / image / text / midi
    coding_method: str
    data: bytes
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class CourseRecord:
    """A course on offer (what registration lists per program)."""

    course_code: str
    name: str
    program: str
    courseware_id: str
    sessions_planned: int = 13
    description: str = ""


@dataclass
class StudentRecord:
    """The CStudent data: identity, profile, and registrations."""

    student_number: str
    name: str
    address: str = ""
    email: str = ""
    #: course codes the student registered for
    registered_courses: List[str] = field(default_factory=list)
    #: courseware_id -> resume position (seconds into the presentation)
    resume_positions: Dict[str, float] = field(default_factory=dict)
    #: courseware_id -> list of bookmarked object references
    bookmarks: Dict[str, List[str]] = field(default_factory=dict)
    #: exercise scores: exercise id -> score
    scores: Dict[str, float] = field(default_factory=dict)

    def profile(self) -> Dict[str, Any]:
        return {"student_number": self.student_number, "name": self.name,
                "address": self.address, "email": self.email,
                "registered_courses": list(self.registered_courses)}

    def find_number_of_course(self) -> int:
        """The thesis's FindNumberOfCourse() member function."""
        return len(self.registered_courses)


@dataclass
class LibraryDocument:
    """A browsable document in the digital library (§5.2.1)."""

    doc_id: str
    title: str
    media_kind: str
    content_ref: str
    keywords: List[str] = field(default_factory=list)
