"""Object store with optimistic transactions.

The store holds named collections of records keyed by string id.
Transactions buffer writes and validate at commit against per-record
versions (optimistic concurrency control): if another transaction
committed a new version of anything this one read or wrote, commit
raises :class:`~repro.util.errors.DatabaseError` and the caller
retries.  That matches how the courseware database is used — many
readers, occasional authors updating a course (§3.2 "a courseware can
be updated in both the content and the scenario at anytime").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Set, Tuple

from repro.util.errors import DatabaseError


@dataclass
class _Versioned:
    value: Any
    version: int


class ObjectStore:
    """Named collections of versioned records."""

    def __init__(self) -> None:
        self._collections: Dict[str, Dict[str, _Versioned]] = {}
        self._tx_counter = itertools.count(1)
        self.commits = 0
        self.conflicts = 0

    def collection(self, name: str) -> Dict[str, _Versioned]:
        return self._collections.setdefault(name, {})

    # -- direct (auto-commit) access ------------------------------------

    def put(self, collection: str, key: str, value: Any) -> None:
        coll = self.collection(collection)
        current = coll.get(key)
        version = current.version + 1 if current else 1
        coll[key] = _Versioned(value=value, version=version)

    def get(self, collection: str, key: str) -> Any:
        record = self.collection(collection).get(key)
        if record is None:
            raise DatabaseError(f"{collection}/{key} not found")
        return record.value

    def get_or_none(self, collection: str, key: str) -> Any:
        record = self.collection(collection).get(key)
        return record.value if record else None

    def exists(self, collection: str, key: str) -> bool:
        return key in self.collection(collection)

    def delete(self, collection: str, key: str) -> None:
        if self.collection(collection).pop(key, None) is None:
            raise DatabaseError(f"{collection}/{key} not found")

    def keys(self, collection: str) -> List[str]:
        return sorted(self.collection(collection))

    def items(self, collection: str) -> Iterator[Tuple[str, Any]]:
        for key in self.keys(collection):
            yield key, self.collection(collection)[key].value

    def scan(self, collection: str,
             predicate: Callable[[Any], bool]) -> List[Tuple[str, Any]]:
        return [(k, v) for k, v in self.items(collection) if predicate(v)]

    def count(self, collection: str) -> int:
        return len(self.collection(collection))

    # -- transactions -------------------------------------------------------

    def transaction(self) -> "Transaction":
        return Transaction(self)

    def _version_of(self, collection: str, key: str) -> int:
        record = self.collection(collection).get(key)
        return record.version if record else 0


class Transaction:
    """Optimistic transaction: buffered writes, validated commit."""

    def __init__(self, store: ObjectStore) -> None:
        self.store = store
        self.tx_id = next(store._tx_counter)
        #: (collection, key) -> version observed at first read
        self._read_set: Dict[Tuple[str, str], int] = {}
        #: (collection, key) -> new value (None sentinel for delete)
        self._writes: Dict[Tuple[str, str], Tuple[str, Any]] = {}
        self._deletes: Set[Tuple[str, str]] = set()
        self.committed = False
        self.aborted = False

    def _check_live(self) -> None:
        if self.committed or self.aborted:
            raise DatabaseError(f"transaction {self.tx_id} is finished")

    def get(self, collection: str, key: str) -> Any:
        self._check_live()
        ck = (collection, key)
        if ck in self._deletes:
            raise DatabaseError(f"{collection}/{key} deleted in transaction")
        if ck in self._writes:
            return self._writes[ck][1]
        self._read_set.setdefault(ck, self.store._version_of(collection, key))
        return self.store.get(collection, key)

    def get_or_none(self, collection: str, key: str) -> Any:
        try:
            return self.get(collection, key)
        except DatabaseError:
            return None

    def put(self, collection: str, key: str, value: Any) -> None:
        self._check_live()
        ck = (collection, key)
        self._read_set.setdefault(ck, self.store._version_of(collection, key))
        self._deletes.discard(ck)
        self._writes[ck] = (collection, value)

    def delete(self, collection: str, key: str) -> None:
        self._check_live()
        ck = (collection, key)
        self._read_set.setdefault(ck, self.store._version_of(collection, key))
        self._writes.pop(ck, None)
        self._deletes.add(ck)

    def commit(self) -> None:
        """Validate the read set and apply writes atomically."""
        self._check_live()
        for (collection, key), seen in self._read_set.items():
            if self.store._version_of(collection, key) != seen:
                self.aborted = True
                self.store.conflicts += 1
                raise DatabaseError(
                    f"transaction {self.tx_id}: conflict on "
                    f"{collection}/{key}")
        for (collection, key) in self._deletes:
            self.store.collection(collection).pop(key, None)
        for (collection, key), (_, value) in self._writes.items():
            self.store.put(collection, key, value)
        self.committed = True
        self.store.commits += 1

    def abort(self) -> None:
        self._check_live()
        self.aborted = True

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and not self.committed and not self.aborted:
            self.commit()
        elif exc_type is not None and not self.aborted and not self.committed:
            self.aborted = True
        return False
