"""Tests for the courseware editor: compilation to MHEG and HyTime."""

import pytest

from repro.authoring import (
    Button, CoursewareEditor, EntryField, HyperDocument, Hyperobject,
    InteractiveDocument, Menu, NavigationLink, OutputObject, Page, PageItem,
    Scene, SceneObject, Section, TimelineEntry, architecture_by_name,
    list_architectures,
)
from repro.hytime import HyTimeEngine
from repro.media.production import MediaProductionCenter
from repro.mheg import MhegCodec, MhegEngine
from repro.mheg.identifiers import MhegIdentifier, ObjectReference
from repro.mheg.runtime import RtState
from repro.util.errors import AuthoringError


def hyperdoc():
    doc = HyperDocument("lib", title="Library course")
    doc.add_page(Page(name="start", items=[
        PageItem(name="body", kind="text", content_ref="txt-1"),
        PageItem(name="pic", kind="image", content_ref="img-1",
                 position=(200, 10)),
        PageItem(name="next", kind="choice", label="Next section"),
    ]))
    doc.add_page(Page(name="end", items=[
        PageItem(name="summary", kind="text", content_ref="txt-2"),
        PageItem(name="back", kind="choice", label="Back"),
    ]))
    doc.add_link(NavigationLink("start", "next", "end"))
    doc.add_link(NavigationLink("end", "back", "start"))
    return doc


def imd():
    doc = InteractiveDocument("atm", title="ATM course")
    scene = Scene(name="intro", objects=[
        SceneObject(name="clip", kind="video", content_ref="vid-1"),
        SceneObject(name="skip", kind="choice", label="Skip")])
    scene.timeline.add(TimelineEntry("clip", 0.0, 2.0))
    scene.behavior.when_selected("skip", ("stop", "clip"))
    doc.add_section(Section(name="s1", scenes=[scene]))
    return doc


class TestHyperdocCompilation:
    def test_container_holds_descriptor_and_parts(self):
        compiled = CoursewareEditor("lib").compile_hyperdoc(hyperdoc())
        assert "start" in compiled.part_refs and "end" in compiled.part_refs
        assert compiled.descriptor in compiled.container.objects
        assert compiled.root.identifier.application == "lib"

    def test_blob_decodes(self):
        compiled = CoursewareEditor("lib").compile_hyperdoc(hyperdoc())
        container = MhegCodec().decode(compiled.encode())
        assert container.manifest() == compiled.container.manifest()

    def test_navigation_compiles_to_links(self):
        compiled = CoursewareEditor("lib").compile_hyperdoc(hyperdoc())
        engine = MhegEngine()
        engine.content_resolver = lambda key: b"x"
        engine.receive(compiled.encode())
        root = engine.new_runtime(compiled.root)
        engine.run(root)
        # start page presented, end page not
        start_rt = engine.resolve_rt_targets(compiled.part_refs["start"])[0]
        end_rt = engine.resolve_rt_targets(compiled.part_refs["end"])[0]
        assert start_rt.state is RtState.RUNNING
        assert end_rt.state is RtState.INACTIVE
        # click "next"
        choice = engine.resolve_rt_targets(
            compiled.object_refs["start/next"])[0]
        engine.select(choice)
        assert start_rt.state is RtState.STOPPED
        assert end_rt.state is RtState.RUNNING
        # and back again
        back = engine.resolve_rt_targets(compiled.object_refs["end/back"])[0]
        engine.select(back)
        assert start_rt.state is RtState.RUNNING

    def test_choices_are_selectable_media_not(self):
        compiled = CoursewareEditor("lib").compile_hyperdoc(hyperdoc())
        engine = MhegEngine()
        engine.content_resolver = lambda key: b"x"
        engine.receive(compiled.encode())
        engine.new_runtime(compiled.root)
        choice = engine.resolve_rt_targets(compiled.object_refs["start/next"])[0]
        body = engine.resolve_rt_targets(compiled.object_refs["start/body"])[0]
        assert choice.selectable and not body.selectable

    def test_invalid_document_rejected(self):
        doc = HyperDocument("bad")
        with pytest.raises(AuthoringError):
            CoursewareEditor("bad").compile_hyperdoc(doc)


class TestImdCompilation:
    def test_scene_timeline_drives_playback(self):
        compiled = CoursewareEditor("atm").compile_imd(imd())
        engine = MhegEngine()
        engine.content_resolver = lambda key: b"x"
        engine.receive(compiled.encode())
        root = engine.new_runtime(compiled.root)
        engine.run(root)
        clip = engine.resolve_rt_targets(compiled.object_refs["intro/clip"])[0]
        assert clip.state is RtState.RUNNING
        engine.advance(2.5)
        assert clip.state is RtState.STOPPED
        engine.advance(3.0)
        assert root.state is RtState.STOPPED

    def test_behavior_link_stops_clip(self):
        compiled = CoursewareEditor("atm").compile_imd(imd())
        engine = MhegEngine()
        engine.content_resolver = lambda key: b"x"
        engine.receive(compiled.encode())
        root = engine.new_runtime(compiled.root)
        engine.run(root)
        skip = engine.resolve_rt_targets(compiled.object_refs["intro/skip"])[0]
        clip = engine.resolve_rt_targets(compiled.object_refs["intro/clip"])[0]
        engine.advance(0.5)
        engine.select(skip)
        assert clip.state is RtState.STOPPED

    def test_preemption_compiles(self):
        doc = InteractiveDocument("atm")
        scene = Scene(name="sc", objects=[
            SceneObject(name="text1", kind="text", content_ref="t1"),
            SceneObject(name="image1", kind="image", content_ref="i1"),
            SceneObject(name="choice1", kind="choice", label="Now")])
        scene.timeline.add(TimelineEntry("text1", 0.0, 5.0,
                                         preempted_by="choice1",
                                         preempt_next="image1"))
        scene.timeline.add(TimelineEntry("image1", 5.0, 2.0))
        doc.add_section(Section(name="s", scenes=[scene]))
        compiled = CoursewareEditor("atm").compile_imd(doc)
        engine = MhegEngine()
        engine.content_resolver = lambda key: b"x"
        engine.receive(compiled.encode())
        engine.run(engine.new_runtime(compiled.root))
        text1 = engine.resolve_rt_targets(compiled.object_refs["sc/text1"])[0]
        image1 = engine.resolve_rt_targets(compiled.object_refs["sc/image1"])[0]
        choice = engine.resolve_rt_targets(compiled.object_refs["sc/choice1"])[0]
        engine.advance(1.0)
        assert text1.state is RtState.RUNNING
        assert image1.state is RtState.INACTIVE
        engine.select(choice)  # user pre-empts at t=1 < t2=5
        assert text1.state is RtState.STOPPED
        assert image1.state is RtState.RUNNING

    def test_catalog_attributes_flow_into_objects(self):
        pc = MediaProductionCenter()
        vid = pc.produce_video("vid-1", seconds=1.5)
        doc = InteractiveDocument("atm")
        scene = Scene(name="sc", objects=[
            SceneObject(name="clip", kind="video", content_ref="vid-1")])
        scene.timeline.add(TimelineEntry("clip", 0.0))  # duration from media
        doc.add_section(Section(name="s", scenes=[scene]))
        compiled = CoursewareEditor("atm", catalog={"vid-1": vid}) \
            .compile_imd(doc)
        engine = MhegEngine()
        engine.receive(compiled.encode())
        content = engine.get(compiled.object_refs["sc/clip"])
        assert content.original_duration == pytest.approx(1.5)
        assert content.content_hook == "SMPG"
        assert compiled.descriptor.total_size == vid.size

    def test_descriptor_lists_decoders(self):
        compiled = CoursewareEditor("atm").compile_imd(imd())
        decoders = {r.decoder for r in compiled.descriptor.requirements}
        assert "SMPG" in decoders and "STXT" in decoders


class TestHyTimeEmission:
    def test_emitted_document_processes(self):
        text = CoursewareEditor("lib").to_hytime(hyperdoc())
        doc = HyTimeEngine().process(text)
        assert doc.resolve("start").name == "page"
        assert len(doc.hyperlinks) == 2

    def test_links_resolve_to_choices(self):
        text = CoursewareEditor("lib").to_hytime(hyperdoc())
        doc = HyTimeEngine().process(text)
        anchor, target = doc.hyperlinks[0].endpoints(doc.root)
        assert anchor.name == "choice"
        assert target.name == "page"


class TestTeachingArchitectures:
    def test_six_architectures(self):
        assert len(list_architectures()) == 6

    def test_lookup_by_name(self):
        arch = architecture_by_name("case-based")
        assert arch.document_model == "interactive"
        with pytest.raises(AuthoringError):
            architecture_by_name("osmosis")

    def test_interactive_skeleton_builds(self):
        arch = architecture_by_name("simulation-based")
        doc = arch.build_skeleton("pilot-training")
        assert [s.name for s in doc.sections] == list(arch.skeleton_parts)

    def test_hypermedia_skeleton_builds(self):
        arch = architecture_by_name("exploration")
        doc = arch.build_skeleton("museum")
        assert isinstance(doc, HyperDocument)
        assert [p.name for p in doc.pages] == list(arch.skeleton_parts)


class TestCoursewareLibrary:
    def alloc_for(self, app="t"):
        editor = CoursewareEditor(app)
        return editor._alloc

    def test_button_expansion(self):
        exp = Button(name="ok", label="OK").to_mheg(self.alloc_for())
        assert len(exp.objects) == 1
        assert exp.objects[0].presentation["selectable"] is True
        assert exp.objects[0].data == b"OK"

    def test_menu_expansion(self):
        exp = Menu(name="m", entries=["a", "b", "c"]).to_mheg(self.alloc_for())
        composite = exp.objects[-1]
        assert len(composite.components) == 3
        # entries stacked vertically
        ys = [o.presentation["position"][1] for o in exp.objects[:-1]]
        assert ys == sorted(ys) and len(set(ys)) == 3

    def test_empty_menu_rejected(self):
        with pytest.raises(AuthoringError):
            Menu(name="m", entries=[]).to_mheg(self.alloc_for())

    def test_entry_field_expansion(self):
        exp = EntryField(name="name", prompt="Your name:").to_mheg(
            self.alloc_for())
        kinds = [type(o).__name__ for o in exp.objects]
        assert "GenericValueClass" in kinds
        assert kinds[-1] == "CompositeClass"

    def test_output_object_kinds(self):
        for kind in ("text", "image", "audio", "video", "graphics"):
            exp = OutputObject(name="o", kind=kind,
                               content_ref="ref-1").to_mheg(self.alloc_for())
            assert exp.objects[0].content_ref == "ref-1"
        with pytest.raises(AuthoringError):
            OutputObject(name="o", kind="smellovision",
                         content_ref="x").to_mheg(self.alloc_for())

    def test_hyperobject_links_inputs_to_outputs(self):
        hyper = Hyperobject(
            name="h",
            inputs=[Button(name="play", label="Play")],
            outputs=[OutputObject(name="clip", kind="video",
                                  content_ref="vid-1")],
            links={"play": "clip"})
        exp = hyper.to_mheg(self.alloc_for())
        engine = MhegEngine()
        engine.content_resolver = lambda key: b"x"
        for obj in exp.objects:
            engine.store(obj)
        rt = engine.new_runtime(exp.main)
        engine.run(rt)
        play = [r for r in engine.runtimes()
                if r.model.info.name == "play"][0]
        clip = [r for r in engine.runtimes()
                if r.model.info.name == "clip"][0]
        assert play.state is RtState.RUNNING
        engine.select(play)
        assert clip.state is RtState.RUNNING

    def test_hyperobject_bad_link_rejected(self):
        hyper = Hyperobject(name="h", inputs=[Button(name="b", label="B")],
                            outputs=[], links={"b": "ghost"})
        with pytest.raises(AuthoringError):
            hyper.to_mheg(self.alloc_for())
