"""Property-based tests: arbitrary valid documents compile, interchange,
and play to completion."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.authoring import (
    CoursewareEditor, InteractiveDocument, Scene, SceneObject, Section,
    TimelineEntry,
)
from repro.navigator.presenter import CoursewarePresenter


@st.composite
def documents(draw):
    """Random interactive documents: 1-3 sections, 1-2 scenes each,
    1-3 timed objects per scene."""
    doc = InteractiveDocument("prop-course")
    object_counter = 0
    for s in range(draw(st.integers(1, 3))):
        scenes = []
        for sc in range(draw(st.integers(1, 2))):
            objects = []
            timeline = []
            for o in range(draw(st.integers(1, 3))):
                name = f"obj{object_counter}"
                object_counter += 1
                kind = draw(st.sampled_from(["text", "image", "audio"]))
                objects.append(SceneObject(
                    name=name, kind=kind, content_ref=f"media-{kind}"))
                start = draw(st.floats(0.0, 2.0))
                duration = draw(st.floats(0.1, 1.5))
                timeline.append(TimelineEntry(name, round(start, 2),
                                              round(duration, 2)))
            scene = Scene(name=f"scene-{s}-{sc}", objects=objects)
            for entry in timeline:
                scene.timeline.add(entry)
            scenes.append(scene)
        doc.add_section(Section(name=f"section-{s}", scenes=scenes))
    return doc


class TestCompileProperties:
    @given(documents())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_compile_interchange_play_completes(self, doc):
        doc.validate()
        compiled = CoursewareEditor("prop").compile_imd(doc)
        blob = compiled.encode()
        presenter = CoursewarePresenter(
            local_resolver=lambda key: b"content")
        presenter.load_blob(blob)
        presenter.preload()
        presenter.start()
        # total worst-case duration: sum over scenes of (max end)
        horizon = 0.0
        for scene in doc.all_scenes():
            total = scene.timeline.total_duration()
            horizon += (total or 0.0)
        presenter.advance(horizon + 2.0)
        # every scheduled object ran exactly once and the course ended
        assert not presenter.playing
        ran = {e.source for e in presenter.engine.events
               if e.attribute == "presentation" and e.new == "running"}
        scheduled = {str(compiled.object_refs[f"{sc.name}/{o.name}"]) + "#1"
                     for sc in doc.all_scenes() for o in sc.objects}
        assert scheduled <= ran

    @given(documents())
    @settings(max_examples=10, deadline=None)
    def test_blob_roundtrip_stable(self, doc):
        """Compiling the same document twice gives identical bytes
        (deterministic id allocation), and the blob re-decodes."""
        a = CoursewareEditor("prop").compile_imd(doc).encode()
        b = CoursewareEditor("prop").compile_imd(doc).encode()
        assert a == b
        from repro.mheg import MhegCodec
        assert MhegCodec().decode(a).manifest()
