"""Tests for the document models, time-line, and behaviour structures."""

import pytest

from repro.authoring import (
    Behavior, HyperDocument, InteractiveDocument, NavigationLink, Page,
    PageItem, Scene, SceneObject, Section, Timeline, TimelineEntry,
)
from repro.authoring.behavior import (
    BehaviorAction, BehaviorCondition, BehaviorRule,
)
from repro.util.errors import AuthoringError


def page_with_items(name, *, choice_names=("next",)):
    items = [PageItem(name="body", kind="text", content_ref="txt-1")]
    for cn in choice_names:
        items.append(PageItem(name=cn, kind="choice", label=cn.title()))
    return Page(name=name, items=items)


class TestPageModel:
    def test_choice_needs_label(self):
        with pytest.raises(AuthoringError):
            PageItem(name="c", kind="choice")

    def test_media_needs_content_ref(self):
        with pytest.raises(AuthoringError):
            PageItem(name="v", kind="video")

    def test_unknown_kind(self):
        with pytest.raises(AuthoringError):
            PageItem(name="x", kind="hologram", content_ref="h")

    def test_duplicate_item_names(self):
        page = Page(name="p", items=[
            PageItem(name="a", kind="text", content_ref="t"),
            PageItem(name="a", kind="choice", label="A")])
        with pytest.raises(AuthoringError):
            page.validate()

    def test_choices_listed(self):
        page = page_with_items("p", choice_names=("next", "back"))
        assert [c.name for c in page.choices()] == ["next", "back"]


class TestHyperDocument:
    def make_doc(self):
        doc = HyperDocument("course")
        doc.add_page(page_with_items("start", choice_names=("next", "quiz")))
        doc.add_page(page_with_items("detail"))
        doc.add_page(page_with_items("question"))
        doc.add_link(NavigationLink("start", "next", "detail"))
        doc.add_link(NavigationLink("start", "quiz", "question"))
        doc.add_link(NavigationLink("detail", "next", "start"))
        doc.add_link(NavigationLink("question", "next", "start"))
        return doc

    def test_valid_document(self):
        self.make_doc().validate()

    def test_first_page_is_start(self):
        assert self.make_doc().start_page == "start"

    def test_duplicate_page_rejected(self):
        doc = self.make_doc()
        with pytest.raises(AuthoringError):
            doc.add_page(page_with_items("start"))

    def test_link_to_unknown_page_rejected(self):
        doc = self.make_doc()
        doc.add_link(NavigationLink("start", "next", "ghost"))
        with pytest.raises(AuthoringError):
            doc.validate()

    def test_link_condition_must_be_choice(self):
        doc = self.make_doc()
        doc.add_link(NavigationLink("start", "body", "detail"))
        with pytest.raises(AuthoringError):
            doc.validate()

    def test_unreachable_page_rejected(self):
        doc = self.make_doc()
        doc.add_page(page_with_items("island"))
        with pytest.raises(AuthoringError):
            doc.validate()

    def test_navigation_subset_view(self):
        doc = self.make_doc()
        subset = doc.navigation_subset("start")
        assert subset == {"next": ["detail"], "quiz": ["question"]}

    def test_reachable_pages(self):
        assert self.make_doc().reachable_pages() == [
            "detail", "question", "start"]


class TestTimeline:
    def test_entries_sorted_by_start(self):
        tl = Timeline()
        tl.add(TimelineEntry("b", 2.0, 1.0))
        tl.add(TimelineEntry("a", 0.0, 1.0))
        assert [e.object_name for e in tl.entries] == ["a", "b"]

    def test_duplicate_object_rejected(self):
        tl = Timeline([TimelineEntry("a", 0.0, 1.0)])
        with pytest.raises(AuthoringError):
            tl.add(TimelineEntry("a", 1.0, 1.0))

    def test_active_at(self):
        tl = Timeline([TimelineEntry("a", 0.0, 2.0),
                       TimelineEntry("b", 1.0, 2.0),
                       TimelineEntry("c", 0.0, None)])
        assert sorted(tl.active_at(0.5)) == ["a", "c"]
        assert sorted(tl.active_at(1.5)) == ["a", "b", "c"]
        assert sorted(tl.active_at(2.5)) == ["b", "c"]

    def test_total_duration(self):
        assert Timeline([TimelineEntry("a", 0.0, 2.0),
                         TimelineEntry("b", 1.0, 2.5)]).total_duration() == 3.5
        assert Timeline([TimelineEntry("a", 0.0, None)]).total_duration() is None
        assert Timeline().total_duration() == 0.0

    def test_preemption_needs_both_fields(self):
        with pytest.raises(AuthoringError):
            TimelineEntry("a", 0.0, 1.0, preempted_by="c")

    def test_validate_against_known_objects(self):
        tl = Timeline([TimelineEntry("a", 0.0, 1.0,
                                     preempted_by="c", preempt_next="b")])
        tl.validate({"a", "b", "c"})
        with pytest.raises(AuthoringError):
            tl.validate({"a", "b"})

    def test_negative_start_rejected(self):
        with pytest.raises(AuthoringError):
            TimelineEntry("a", -1.0, 1.0)


class TestBehavior:
    def test_shorthands(self):
        b = Behavior()
        b.when_selected("stop-btn", ("stop", "audio1"), ("stop", "text1"))
        b.when_stopped("text1", ("run", "image1"))
        assert len(b.rules) == 2
        assert b.rules[0].trigger.event == "selected"
        assert b.rules[1].trigger.object_name == "text1"

    def test_rule_needs_actions(self):
        with pytest.raises(AuthoringError):
            BehaviorRule(trigger=BehaviorCondition("a", "selected"),
                         actions=[])

    def test_unknown_event_rejected(self):
        with pytest.raises(AuthoringError):
            BehaviorCondition("a", "exploded")

    def test_set_verbs_need_values(self):
        with pytest.raises(AuthoringError):
            BehaviorAction("set_value", "a")
        BehaviorAction("set_value", "a", value=5)

    def test_validate_object_names(self):
        b = Behavior()
        b.when_selected("ghost", ("run", "a"))
        with pytest.raises(AuthoringError):
            b.validate({"a"})


class TestInteractiveDocument:
    def make_scene(self, name="sc", duration=2.0):
        scene = Scene(name=name, objects=[
            SceneObject(name="v", kind="video", content_ref="vid-1"),
            SceneObject(name="c", kind="choice", label="Skip")])
        scene.timeline.add(TimelineEntry("v", 0.0, duration))
        return scene

    def test_valid_document(self):
        doc = InteractiveDocument("d")
        doc.add_section(Section(name="s", scenes=[self.make_scene()]))
        doc.validate()

    def test_section_cannot_mix_levels(self):
        section = Section(name="s", scenes=[self.make_scene()],
                          subsections=[Section(name="sub",
                                               scenes=[self.make_scene("x")])])
        with pytest.raises(AuthoringError):
            section.validate()

    def test_empty_section_rejected(self):
        with pytest.raises(AuthoringError):
            Section(name="s").validate()

    def test_unscheduled_object_rejected(self):
        scene = Scene(name="sc", objects=[
            SceneObject(name="v", kind="video", content_ref="vid")])
        doc = InteractiveDocument("d")
        doc.add_section(Section(name="s", scenes=[scene]))
        with pytest.raises(AuthoringError):
            doc.validate()

    def test_duplicate_scene_names_rejected(self):
        doc = InteractiveDocument("d")
        doc.add_section(Section(name="a", scenes=[self.make_scene("same")]))
        doc.add_section(Section(name="b", scenes=[self.make_scene("same")]))
        with pytest.raises(AuthoringError):
            doc.validate()

    def test_nested_sections_and_logical_view(self):
        doc = InteractiveDocument("d", title="Demo")
        doc.add_section(Section(name="part1", subsections=[
            Section(name="ch1", scenes=[self.make_scene("s1")]),
            Section(name="ch2", scenes=[self.make_scene("s2")])]))
        doc.validate()
        view = doc.logical_view()
        assert view["sections"][0]["subsections"][0]["scenes"][0]["name"] == "s1"
        assert [s.name for s in doc.all_scenes()] == ["s1", "s2"]
