"""Tests for collaborative document editing (§6.2 future work)."""

import pytest

from repro.authoring import (
    CoursewareEditor, InteractiveDocument, SceneObject, TimelineEntry,
)
from repro.authoring.behavior import BehaviorAction, BehaviorCondition, BehaviorRule
from repro.authoring.collaborative import CollaborativeSession
from repro.util.errors import AuthoringError


def session():
    return CollaborativeSession(InteractiveDocument("joint-course"))


class TestMembership:
    def test_join_returns_log(self):
        s = session()
        s.join("alice")
        s.add_section("alice", "intro")
        log = s.join("bob")
        assert [op.kind for op in log] == ["add-section"]

    def test_double_join_rejected(self):
        s = session()
        s.join("alice")
        with pytest.raises(AuthoringError):
            s.join("alice")

    def test_leave_releases_locks(self):
        s = session()
        s.join("alice")
        s.add_section("alice", "intro")
        assert s.lock_holder("intro") == "alice"
        s.leave("alice")
        assert s.lock_holder("intro") is None

    def test_non_member_cannot_edit(self):
        s = session()
        with pytest.raises(AuthoringError):
            s.add_section("ghost", "intro")


class TestLocking:
    def test_exclusive_section_locks(self):
        s = session()
        s.join("alice")
        s.join("bob")
        s.add_section("alice", "intro")
        with pytest.raises(AuthoringError):
            s.lock_section("bob", "intro")
        s.unlock_section("alice", "intro")
        s.lock_section("bob", "intro")
        assert s.lock_holder("intro") == "bob"

    def test_edit_requires_lock(self):
        s = session()
        s.join("alice")
        s.join("bob")
        s.add_section("alice", "intro")
        s.add_scene("alice", "intro", "sc1")
        with pytest.raises(AuthoringError):
            s.add_scene("bob", "intro", "sc2")

    def test_relock_by_holder_is_idempotent(self):
        s = session()
        s.join("alice")
        s.add_section("alice", "intro")
        s.lock_section("alice", "intro")  # no error


class TestEditing:
    def build(self):
        s = session()
        s.join("alice")
        s.join("bob")
        s.add_section("alice", "intro")
        s.add_scene("alice", "intro", "sc1")
        s.add_object("alice", "intro", "sc1", SceneObject(
            name="clip", kind="video", content_ref="vid-1"))
        s.add_object("alice", "intro", "sc1", SceneObject(
            name="skip", kind="choice", label="Skip"))
        s.schedule("alice", "intro", "sc1",
                   TimelineEntry("clip", 0.0, 2.0))
        s.add_rule("alice", "intro", "sc1", BehaviorRule(
            trigger=BehaviorCondition("skip", "selected"),
            actions=[BehaviorAction("stop", "clip")]))
        return s

    def test_document_stays_compilable(self):
        s = self.build()
        s.document.validate()
        compiled = CoursewareEditor("joint").compile_imd(s.document)
        assert len(compiled.container.objects) > 3

    def test_operations_broadcast_to_others(self):
        s = session()
        seen_by_bob = []
        s.join("alice")
        s.join("bob", on_operation=seen_by_bob.append)
        s.add_section("alice", "intro")
        s.add_scene("alice", "intro", "sc1")
        assert [op.kind for op in seen_by_bob] == ["add-section",
                                                   "add-scene"]
        # the author does not hear their own operations back
        seen_by_alice = []
        s2 = session()
        s2.join("alice", on_operation=seen_by_alice.append)
        s2.add_section("alice", "x")
        assert seen_by_alice == []

    def test_log_sequence_monotone(self):
        s = self.build()
        seqs = [op.seq for op in s.log]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_duplicate_scene_rejected_across_sections(self):
        s = self.build()
        s.add_section("bob", "part2")
        with pytest.raises(AuthoringError):
            s.add_scene("bob", "part2", "sc1")

    def test_duplicate_object_rejected(self):
        s = self.build()
        with pytest.raises(AuthoringError):
            s.add_object("alice", "intro", "sc1", SceneObject(
                name="clip", kind="video", content_ref="vid-2"))

    def test_schedule_unknown_object_rejected(self):
        s = self.build()
        with pytest.raises(AuthoringError):
            s.schedule("alice", "intro", "sc1",
                       TimelineEntry("ghost", 0.0, 1.0))

    def test_rule_unknown_object_rejected(self):
        s = self.build()
        with pytest.raises(AuthoringError):
            s.add_rule("alice", "intro", "sc1", BehaviorRule(
                trigger=BehaviorCondition("ghost", "selected"),
                actions=[BehaviorAction("stop", "clip")]))

    def test_two_authors_in_parallel_sections(self):
        s = self.build()
        s.add_section("bob", "cases")
        s.add_scene("bob", "cases", "case-1")
        s.add_object("bob", "cases", "case-1", SceneObject(
            name="story", kind="text", content_ref="txt-1"))
        s.schedule("bob", "cases", "case-1",
                   TimelineEntry("story", 0.0, 1.0))
        s.document.validate()
        authors = {op.author for op in s.log}
        assert authors == {"alice", "bob"}
