"""Tests for the CRC generators."""

import pytest
from hypothesis import given, strategies as st

from repro.util.crc import crc8_hec, crc32_aal5, crc32_final


class TestHec:
    def test_requires_four_octets(self):
        with pytest.raises(ValueError):
            crc8_hec(b"\x00\x00\x00")
        with pytest.raises(ValueError):
            crc8_hec(b"\x00" * 5)

    def test_deterministic(self):
        assert crc8_hec(b"\x00\x00\x00\x00") == crc8_hec(b"\x00\x00\x00\x00")

    def test_zero_header_is_coset(self):
        # CRC-8 of all-zero input is 0, so the HEC is exactly the coset.
        assert crc8_hec(b"\x00\x00\x00\x00") == 0x55

    def test_distinguishes_headers(self):
        a = crc8_hec(b"\x00\x00\x00\x01")
        b = crc8_hec(b"\x00\x00\x00\x02")
        assert a != b

    @given(st.binary(min_size=4, max_size=4), st.integers(0, 31))
    def test_detects_single_bit_errors(self, header, bitpos):
        """Any single-bit flip in the protected octets changes the HEC."""
        flipped = bytearray(header)
        flipped[bitpos // 8] ^= 1 << (bitpos % 8)
        assert crc8_hec(header) != crc8_hec(bytes(flipped))

    @given(st.binary(min_size=4, max_size=4))
    def test_output_is_a_byte(self, header):
        assert 0 <= crc8_hec(header) <= 0xFF


class TestCrc32:
    def test_known_vector(self):
        # standard CRC-32 check value: "123456789" -> 0xCBF43926
        assert crc32_final(crc32_aal5(b"123456789")) == 0xCBF43926

    def test_empty(self):
        assert crc32_final(crc32_aal5(b"")) == 0x00000000

    @given(st.binary(max_size=500), st.integers(1, 499))
    def test_incremental_equals_oneshot(self, data, split):
        split = min(split, len(data))
        reg = crc32_aal5(data[:split])
        reg = crc32_aal5(data[split:], reg)
        assert reg == crc32_aal5(data)

    @given(st.binary(min_size=1, max_size=200))
    def test_detects_truncation(self, data):
        assert crc32_aal5(data) != crc32_aal5(data[:-1])
