"""Tests for the bit-level reader/writer."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bitstream import BitReader, BitWriter
from repro.util.errors import DecodingError


class TestBitWriter:
    def test_single_bits_msb_first(self):
        w = BitWriter()
        w.write(1, 1)
        w.write(0, 1)
        w.write(1, 1)
        assert w.getvalue() == bytes([0b10100000])

    def test_multibyte_value(self):
        w = BitWriter()
        w.write(0xABCD, 16)
        assert w.getvalue() == b"\xab\xcd"

    def test_value_too_large_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(4, 2)

    def test_negative_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(-1, 4)

    def test_len_counts_bits(self):
        w = BitWriter()
        w.write(0b101, 3)
        assert len(w) == 3
        w.write(0, 8)
        assert len(w) == 11

    def test_write_bytes_aligned_fast_path(self):
        w = BitWriter()
        w.write_bytes(b"\x01\x02")
        assert w.getvalue() == b"\x01\x02"

    def test_write_bytes_unaligned(self):
        w = BitWriter()
        w.write(0b1111, 4)
        w.write_bytes(b"\x00")
        assert w.getvalue() == bytes([0xF0, 0x00])


class TestBitReader:
    def test_reads_msb_first(self):
        r = BitReader(bytes([0b10100000]))
        assert r.read(1) == 1
        assert r.read(1) == 0
        assert r.read(1) == 1

    def test_exhaustion_raises(self):
        r = BitReader(b"\x00")
        r.read(8)
        with pytest.raises(DecodingError):
            r.read(1)

    def test_read_bytes_aligned(self):
        r = BitReader(b"\x01\x02\x03")
        assert r.read_bytes(2) == b"\x01\x02"
        assert r.read(8) == 3

    def test_align_skips_to_boundary(self):
        r = BitReader(b"\xff\x01")
        r.read(3)
        r.align()
        assert r.read(8) == 1


class TestRoundTrip:
    @given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(1, 24)),
                    max_size=40))
    def test_write_read_roundtrip(self, fields):
        w = BitWriter()
        expected = []
        for value, width in fields:
            value &= (1 << width) - 1
            w.write(value, width)
            expected.append((value, width))
        r = BitReader(w.getvalue())
        for value, width in expected:
            assert r.read(width) == value
