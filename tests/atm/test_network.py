"""Integration tests for VC setup, routing, admission, and delivery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm import Simulator, TrafficContract, ServiceCategory
from repro.atm.network import AtmNetwork
from repro.atm.topology import star_campus, ocrinet_like
from repro.util.errors import NetworkError


def ubr(pcr=1e5):
    return TrafficContract(ServiceCategory.UBR, pcr=pcr)


class TestTopologyBuilders:
    def test_star_requires_two_hosts(self):
        with pytest.raises(ValueError):
            star_campus(Simulator(), ["solo"])

    def test_ocrinet_shape(self):
        sim = Simulator()
        net, spec = ocrinet_like(sim, extra_users=3)
        assert len(net.switches) == 5
        assert "user4" in net.hosts and "user6" in net.hosts
        assert spec.name == "ocrinet"

    def test_duplicate_node_rejected(self):
        sim = Simulator()
        net = AtmNetwork(sim)
        net.add_switch("a")
        with pytest.raises(ValueError):
            net.add_switch("a")
        net.add_host("h", "a")
        with pytest.raises(ValueError):
            net.add_host("h", "a")


class TestRouting:
    def test_shortest_path_star(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b", "c"])
        assert net.shortest_path("a", "b") == ["a", "sw0", "b"]

    def test_no_route_through_host(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b", "c"])
        path = net.shortest_path("a", "c")
        assert "b" not in path

    def test_unreachable_raises(self):
        sim = Simulator()
        net = AtmNetwork(sim)
        net.add_switch("s1")
        net.add_switch("s2")  # not trunked
        net.add_host("a", "s1")
        net.add_host("b", "s2")
        with pytest.raises(NetworkError):
            net.shortest_path("a", "b")

    def test_wan_prefers_chord(self):
        sim = Simulator()
        net, _ = ocrinet_like(sim)
        # facilitator (crc) to production (ottawa-u): chord is direct
        path = net.shortest_path("facilitator", "production")
        assert path == ["facilitator", "crc", "ottawa-u", "production"]


class TestVcLifecycle:
    def test_end_to_end_delivery(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        got = []
        vc = net.open_vc("a", "b", ubr(), lambda p, i: got.append((p, i)))
        payload = b"MHEG object payload" * 40
        vc.send(payload)
        sim.run(until=1.0)
        assert [p for p, _ in got] == [payload]
        info = got[0][1]
        assert info.delay > 0
        assert info.hops == 1

    def test_multiple_pdus_ordered(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        got = []
        vc = net.open_vc("a", "b", ubr(), lambda p, i: got.append(p))
        for i in range(5):
            vc.send(f"pdu-{i}".encode())
        sim.run(until=1.0)
        assert got == [f"pdu-{i}".encode() for i in range(5)]

    def test_vc_stats(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        vc = net.open_vc("a", "b", ubr(), lambda p, i: None)
        vc.send(bytes(1000))
        sim.run(until=1.0)
        assert vc.stats.pdus_sent == 1
        assert vc.stats.pdus_delivered == 1
        assert vc.stats.bytes_delivered == 1000
        assert len(vc.stats.delays) == 1

    def test_closed_vc_rejects_send(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        vc = net.open_vc("a", "b", ubr(), lambda p, i: None)
        net.close_vc(vc)
        with pytest.raises(NetworkError):
            vc.send(b"late")

    def test_close_releases_bandwidth(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        contract = TrafficContract(ServiceCategory.CBR, pcr=200000)
        vc = net.open_vc("a", "b", contract, lambda p, i: None)
        up = net.links[("a", "sw0")]
        assert up.reserved_bps > 0
        net.close_vc(vc)
        assert up.reserved_bps == 0.0

    def test_admission_control_rejects_oversubscription(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"], access_bps=10e6)
        big = TrafficContract(ServiceCategory.CBR, pcr=20000)  # 8.5 Mb/s
        net.open_vc("a", "b", big, lambda p, i: None)
        with pytest.raises(NetworkError):
            net.open_vc("a", "b", big, lambda p, i: None)

    def test_ubr_never_rejected_by_admission(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"], access_bps=1e6)
        for _ in range(20):
            net.open_vc("a", "b", ubr(pcr=1e6), lambda p, i: None)

    def test_duplex_channel(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["client", "server"])
        at_a, at_b = [], []
        ch = net.open_duplex("client", "server", ubr(),
                             lambda p, i: at_a.append(p),
                             lambda p, i: at_b.append(p))
        ch.endpoint("client").send(b"request")
        sim.run(until=0.5)
        assert at_b == [b"request"]
        ch.endpoint("server").send(b"response")
        sim.run(until=1.0)
        assert at_a == [b"response"]

    def test_duplex_unknown_endpoint(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["client", "server", "other"])
        ch = net.open_duplex("client", "server", ubr(),
                             lambda p, i: None, lambda p, i: None)
        with pytest.raises(NetworkError):
            ch.endpoint("other")


class TestSendTimeLeakRegression:
    """Host._send_times leaked one entry per PDU whose last cell was
    dropped; entries must be evicted on VC close and the map bounded."""

    def test_close_vc_evicts_in_flight_send_times(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        vc = net.open_vc("a", "b", ubr(), lambda p, i: None)
        for _ in range(5):
            vc.send(bytes(100))
        host = net.hosts["a"]
        assert len(host._send_times) == 5  # nothing delivered yet
        net.close_vc(vc)
        assert len(host._send_times) == 0

    def test_lossy_link_does_not_grow_map_unbounded(self, monkeypatch):
        import repro.atm.network as network_mod
        monkeypatch.setattr(network_mod, "SEND_TIME_CAP", 16)
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        # lose every cell: no PDU ever delivers, so no entry is popped
        net.links[("a", "sw0")].inject_errors(0.999999, seed=7)
        vc = net.open_vc("a", "b", ubr(pcr=1e6), lambda p, i: None)
        host = net.hosts["a"]
        for _ in range(100):
            vc.send(bytes(40))
            sim.run(until=sim.now + 0.01)
        assert len(host._send_times) <= 16

    def test_delay_samples_are_bounded(self):
        from repro.atm.network import DELAY_SAMPLE_CAP
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        vc = net.open_vc("a", "b", ubr(pcr=1e7), lambda p, i: None)
        assert vc.stats.delays.maxlen == DELAY_SAMPLE_CAP


class TestCloseReopen:
    def test_close_then_reopen_fully_releases_resources(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"], access_bps=10e6)
        contract = TrafficContract(ServiceCategory.CBR, pcr=20000)  # 8.5 Mb/s
        vc = net.open_vc("a", "b", contract, lambda p, i: None)
        sw = net.switches["sw0"]
        assert len(sw._table) == 1
        net.close_vc(vc)
        # bandwidth and label-table entries are fully released ...
        assert all(link.reserved_bps == 0.0 for link in net.links.values())
        assert len(sw._table) == 0
        assert vc.last_vci not in net.hosts["b"]._rx
        # ... so an identical contract admits again, and delivers
        got = []
        vc2 = net.open_vc("a", "b", contract, lambda p, i: got.append(p))
        vc2.send(bytes(500))
        sim.run(until=1.0)
        assert got == [bytes(500)]

    def test_close_is_idempotent(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        vc = net.open_vc("a", "b", ubr(), lambda p, i: None)
        net.close_vc(vc)
        net.close_vc(vc)  # second close is a no-op, not an error


class TestVcMetrics:
    def test_delay_histogram_populated(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        vc = net.open_vc("a", "b", ubr(), lambda p, i: None)
        vc.send(bytes(1000))
        sim.run(until=1.0)
        assert vc.delay_hist.count == 1
        assert vc.delay_hist.mean > 0
        rep = sim.metrics.report()
        assert rep["vc"]["pdu_delay_seconds"][0]["count"] == 1

    def test_link_drop_counters(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"], buffer_cells=4)
        vc = net.open_vc("a", "b", ubr(pcr=1e9), lambda p, i: None)
        vc.send(bytes(40000))  # floods the 4-cell buffer instantly
        sim.run(until=1.0)
        drops = sim.metrics.find("link", "drops_total")
        assert sum(c.value for c in drops.values()) > 0


class TestWanDelivery:
    def test_delivery_across_ring(self):
        sim = Simulator()
        net, _ = ocrinet_like(sim)
        got = []
        vc = net.open_vc("database", "user1",
                         TrafficContract(ServiceCategory.NRT_VBR, pcr=40000,
                                         scr=20000, mbs=200),
                         lambda p, i: got.append(i))
        vc.send(bytes(30000))
        sim.run(until=5.0)
        assert len(got) == 1
        assert got[0].hops == 2  # ottawa-u, bnr

    def test_concurrent_vcs_all_deliver(self):
        sim = Simulator()
        net, _ = ocrinet_like(sim, extra_users=4)
        counts = {}
        users = ["user1", "user2", "user3", "user4", "user5"]
        for u in users:
            def handler(p, i, u=u):
                counts[u] = counts.get(u, 0) + 1
            vc = net.open_vc("database", u,
                             TrafficContract(ServiceCategory.NRT_VBR, pcr=30000,
                                             scr=10000, mbs=100),
                             handler)
            for _ in range(3):
                vc.send(bytes(5000))
        sim.run(until=10.0)
        assert all(counts[u] == 3 for u in users)

    @given(size=st.integers(1, 20000))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_payload_sizes_roundtrip(self, size):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        got = []
        vc = net.open_vc("a", "b", ubr(pcr=1e6), lambda p, i: got.append(p))
        payload = bytes(i % 251 for i in range(size))
        vc.send(payload)
        sim.run(until=5.0)
        assert got == [payload]
