"""Tests for the discrete-event kernel."""

import pytest

from repro.atm.simulator import Simulator, run_all


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_among_equal_timestamps(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_run_until_stops_before_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, 1)
        end = sim.run(until=1.0)
        assert fired == [] and end == 1.0 and sim.now == 1.0
        sim.run(until=10.0)
        assert fired == [1]

    def test_run_until_advances_clock_even_when_idle(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, 1)
        ev.cancel()
        sim.run()
        assert fired == []

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, order.append, "second")

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        seen = []
        sim.schedule_at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_step_runs_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]


class TestMaxEventsClockRegression:
    """run(until, max_events) must not jump the clock over queued
    events: doing so made a follow-up run() execute them with time
    moving backwards."""

    def test_clock_stays_at_last_executed_event(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run(until=10.0, max_events=1)
        assert sim.now == 1.0  # not fast-forwarded to 10.0

    def test_time_never_moves_backwards_across_runs(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: seen.append(sim.now))
        sim.run(until=10.0, max_events=1)
        sim.run(until=10.0)
        assert seen == [1.0, 2.0, 3.0]
        assert seen == sorted(seen)
        assert sim.now == 10.0

    def test_fast_forward_when_remaining_events_beyond_until(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(50.0, lambda: None)
        # budget stops us after the 1.0 event; the only survivor is at
        # 50.0 > until, so composing runs may still advance to until
        sim.run(until=10.0, max_events=1)
        assert sim.now == 10.0

    def test_fast_forward_ignores_cancelled_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        ev = sim.schedule(5.0, lambda: None)
        ev.cancel()
        sim.run(until=10.0, max_events=1)
        assert sim.now == 10.0


class TestProcess:
    def test_process_yields_delays(self):
        sim = Simulator()
        times = []

        def proc():
            times.append(sim.now)
            yield 1.0
            times.append(sim.now)
            yield 2.0
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [0.0, 1.0, 3.0]

    def test_process_kill_stops_it(self):
        sim = Simulator()
        ticks = []

        def proc():
            while True:
                ticks.append(sim.now)
                yield 1.0

        p = sim.spawn(proc())
        sim.run(until=2.5)
        p.kill()
        sim.run(until=10.0)
        assert p.alive is False
        assert len(ticks) == 3  # t=0, 1, 2

    def test_process_finishes_naturally(self):
        sim = Simulator()

        def proc():
            yield 1.0

        p = sim.spawn(proc())
        assert p.alive
        sim.run()
        assert not p.alive

    def test_run_all_helper(self):
        sim = Simulator()
        out = []

        def make(tag):
            def proc():
                yield tag * 1.0
                out.append(tag)
            return proc()

        run_all(sim, [make(2), make(1)])
        assert out == [1, 2]
