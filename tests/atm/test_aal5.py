"""Tests for AAL5 segmentation and reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm.aal5 import (
    Aal5Receiver, Aal5Sender, build_cpcs_pdu, parse_cpcs_pdu, segment_pdu,
    TRAILER_SIZE, MAX_CPCS_PAYLOAD,
)
from repro.atm.cell import PAYLOAD_SIZE
from repro.util.errors import DecodingError


class TestCpcsFraming:
    def test_pdu_is_multiple_of_48(self):
        for n in (0, 1, 39, 40, 41, 47, 48, 100, 1000):
            assert len(build_cpcs_pdu(bytes(n))) % PAYLOAD_SIZE == 0

    def test_roundtrip_exact(self):
        payload = b"courseware object" * 11
        assert parse_cpcs_pdu(build_cpcs_pdu(payload)) == payload

    def test_empty_payload(self):
        assert parse_cpcs_pdu(build_cpcs_pdu(b"")) == b""

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            build_cpcs_pdu(bytes(MAX_CPCS_PAYLOAD + 1))

    def test_corruption_detected(self):
        pdu = bytearray(build_cpcs_pdu(b"x" * 100))
        pdu[10] ^= 0xFF
        with pytest.raises(DecodingError):
            parse_cpcs_pdu(bytes(pdu))

    def test_bad_length_rejected(self):
        with pytest.raises(DecodingError):
            parse_cpcs_pdu(bytes(47))

    @given(st.binary(max_size=4096))
    @settings(max_examples=50)
    def test_roundtrip_property(self, payload):
        assert parse_cpcs_pdu(build_cpcs_pdu(payload)) == payload


class TestSegmentation:
    def test_last_cell_marked(self):
        cells = segment_pdu(bytes(100), vpi=0, vci=32)
        assert all(not c.header.is_last_of_frame for c in cells[:-1])
        assert cells[-1].header.is_last_of_frame

    def test_cell_count(self):
        # 100 bytes payload + 8 trailer = 108 -> pads to 144 = 3 cells
        assert len(segment_pdu(bytes(100), vpi=0, vci=32)) == 3

    def test_sequence_numbers_monotone(self):
        sender = Aal5Sender(vpi=0, vci=32)
        a = sender.segment(bytes(200))
        b = sender.segment(bytes(200))
        seqs = [c.seqno for c in a + b]
        assert seqs == list(range(len(seqs)))


def reassemble(cells):
    """Helper: run cells through a receiver, return delivered payloads."""
    out = []
    rx = Aal5Receiver(lambda payload, cell: out.append(payload))
    for c in cells:
        rx.receive(c)
    return out, rx


class TestReassembly:
    def test_roundtrip(self):
        payload = bytes(range(256)) * 7
        out, rx = reassemble(segment_pdu(payload, vpi=0, vci=32))
        assert out == [payload]
        assert rx.pdus_corrupted == 0

    def test_back_to_back_frames(self):
        sender = Aal5Sender(vpi=0, vci=32)
        cells = sender.segment(b"frame-one" * 20) + sender.segment(b"frame-two" * 3)
        out, _ = reassemble(cells)
        assert out == [b"frame-one" * 20, b"frame-two" * 3]

    def test_lost_middle_cell_detected_not_delivered(self):
        cells = segment_pdu(bytes(500), vpi=0, vci=32)
        del cells[2]
        out, rx = reassemble(cells)
        assert out == []
        assert rx.pdus_corrupted == 1

    def test_lost_last_cell_merges_frames_and_fails_crc(self):
        sender = Aal5Sender(vpi=0, vci=32)
        first = sender.segment(bytes(100))
        second = sender.segment(bytes(100))
        cells = first[:-1] + second  # final cell of frame 1 lost
        out, rx = reassemble(cells)
        assert out == []
        assert rx.pdus_corrupted == 1

    def test_recovers_after_corrupted_frame(self):
        sender = Aal5Sender(vpi=0, vci=32)
        bad = sender.segment(bytes(500))
        del bad[1]
        good = sender.segment(b"still works")
        out, rx = reassemble(bad + good)
        assert out == [b"still works"]
        assert rx.pdus_corrupted == 1

    def test_runaway_partial_frame_is_bounded(self):
        # never-ending frame (no last-cell marker) must not buffer forever
        sender = Aal5Sender(vpi=0, vci=32)
        cells = []
        for _ in range(3):
            frame = sender.segment(bytes(PAYLOAD_SIZE * 1300))
            cells.extend(frame[:-1])  # drop every final cell
        out, rx = reassemble(cells)
        assert out == []
        assert rx.pdus_corrupted >= 1

    @given(st.binary(min_size=1, max_size=2000), st.data())
    @settings(max_examples=50)
    def test_any_single_cell_loss_is_detected(self, payload, data):
        """Property: dropping any one cell never yields a wrong payload —
        either nothing is delivered or (never) the exact payload."""
        cells = segment_pdu(payload, vpi=0, vci=32)
        idx = data.draw(st.integers(0, len(cells) - 1))
        del cells[idx]
        out, rx = reassemble(cells)
        assert out == []  # one frame, one loss -> no delivery
        assert rx.pdus_corrupted <= 1
