"""Tests for links and switches."""

import pytest

from repro.atm.cell import Cell, CellHeader
from repro.atm.link import Link
from repro.atm.qos import ServiceCategory, TrafficContract, UsageParameterControl
from repro.atm.simulator import Simulator
from repro.atm.switch import Switch, VcTableEntry


def make_cell(vci=32, clp=0, seqno=0):
    return Cell(header=CellHeader(vpi=0, vci=vci, clp=clp),
                payload=bytes(48), seqno=seqno)


class TestLink:
    def test_serialization_and_propagation_delay(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, rate_bps=424e3, prop_delay=0.5)  # 1 ms/cell
        link.sink = lambda c: arrivals.append(sim.now)
        link.enqueue(make_cell())
        sim.run()
        assert arrivals == [pytest.approx(0.001 + 0.5)]

    def test_cells_serialize_back_to_back(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, rate_bps=424e3, prop_delay=0.0)
        link.sink = lambda c: arrivals.append(sim.now)
        for i in range(3):
            link.enqueue(make_cell(seqno=i))
        sim.run()
        assert arrivals == [pytest.approx(0.001 * (i + 1)) for i in range(3)]

    def test_buffer_overflow_drops(self):
        sim = Simulator()
        link = Link(sim, rate_bps=424e3, buffer_cells=4)
        link.sink = lambda c: None
        accepted = sum(link.enqueue(make_cell(seqno=i)) for i in range(10))
        # 1 in flight + 4 buffered
        assert accepted == 5
        assert link.stats.dropped_overflow == 5

    def test_priority_order(self):
        sim = Simulator()
        order = []
        link = Link(sim, rate_bps=424e3)
        link.sink = lambda c: order.append(c.seqno)
        # enqueue UBR first, then CBR while the first cell transmits
        link.enqueue(make_cell(seqno=0), ServiceCategory.UBR)   # in flight
        link.enqueue(make_cell(seqno=1), ServiceCategory.UBR)
        link.enqueue(make_cell(seqno=2), ServiceCategory.CBR)
        sim.run()
        assert order == [0, 2, 1]

    def test_overflow_sheds_lower_priority_for_cbr(self):
        sim = Simulator()
        link = Link(sim, rate_bps=424e3, buffer_cells=2)
        link.sink = lambda c: None
        link.enqueue(make_cell(seqno=0), ServiceCategory.UBR)  # in flight
        link.enqueue(make_cell(seqno=1), ServiceCategory.UBR)
        link.enqueue(make_cell(seqno=2), ServiceCategory.UBR)  # buffer full
        assert link.enqueue(make_cell(seqno=3), ServiceCategory.CBR) is True
        assert link.stats.dropped_overflow == 1

    def test_clp_tagged_shed_first(self):
        sim = Simulator()
        delivered = []
        link = Link(sim, rate_bps=424e3, buffer_cells=2)
        link.sink = lambda c: delivered.append(c.seqno)
        link.enqueue(make_cell(seqno=0), ServiceCategory.UBR)          # in flight
        link.enqueue(make_cell(seqno=1, clp=0), ServiceCategory.UBR)
        link.enqueue(make_cell(seqno=2, clp=1), ServiceCategory.UBR)   # tagged
        link.enqueue(make_cell(seqno=3), ServiceCategory.CBR)          # displaces
        sim.run()
        assert 2 not in delivered
        assert 1 in delivered

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, rate_bps=0)
        with pytest.raises(ValueError):
            Link(sim, rate_bps=1e6, buffer_cells=0)

    def test_utilization(self):
        sim = Simulator()
        link = Link(sim, rate_bps=424e3, prop_delay=0.0)
        link.sink = lambda c: None
        link.enqueue(make_cell())
        sim.run(until=0.002)
        assert link.utilization() == pytest.approx(0.5)

    def test_error_rate_enabled_after_clean_construction(self):
        # regression: a link constructed with error_rate=0.0 had no
        # _error_rng, so enabling loss later silently dropped nothing
        sim = Simulator()
        delivered = []
        link = Link(sim, rate_bps=424e3, prop_delay=0.0)
        link.sink = lambda c: delivered.append(c.seqno)
        link.set_error_rate(0.5, seed=7)
        assert link._error_rng is not None
        for i in range(200):
            sim.schedule(i * 0.01, link.enqueue, make_cell(seqno=i))
        sim.run()
        assert link.stats.dropped_errors > 0
        assert len(delivered) == 200 - link.stats.dropped_errors

    def test_error_rate_property_setter_also_arms_rng(self):
        sim = Simulator()
        link = Link(sim, rate_bps=424e3)
        link.sink = lambda c: None
        link.error_rate = 0.25
        assert link._error_rng is not None
        assert link.error_rate == 0.25


class TestSwitch:
    def _wired(self, sim):
        sw = Switch(sim, "sw", switching_delay=0.0)
        out = Link(sim, rate_bps=424e3, prop_delay=0.0)
        delivered = []
        out.sink = lambda c: delivered.append(c)
        sw.attach_output("east", out)
        return sw, delivered

    def test_label_swap(self):
        sim = Simulator()
        sw, delivered = self._wired(sim)
        sw.install_route("west", 0, 32, VcTableEntry("east", 0, 77))
        sw.receive(make_cell(vci=32), "west")
        sim.run()
        assert len(delivered) == 1
        assert delivered[0].header.vci == 77
        assert delivered[0].hops == 1

    def test_unroutable_dropped(self):
        sim = Simulator()
        sw, delivered = self._wired(sim)
        sw.receive(make_cell(vci=99), "west")
        sim.run()
        assert delivered == []
        assert sw.stats.unroutable == 1

    def test_duplicate_route_rejected(self):
        sim = Simulator()
        sw, _ = self._wired(sim)
        sw.install_route("west", 0, 32, VcTableEntry("east", 0, 77))
        with pytest.raises(ValueError):
            sw.install_route("west", 0, 32, VcTableEntry("east", 0, 78))

    def test_route_to_unknown_port_rejected(self):
        sim = Simulator()
        sw, _ = self._wired(sim)
        with pytest.raises(ValueError):
            sw.install_route("west", 0, 32, VcTableEntry("nowhere", 0, 77))

    def test_upc_drop_at_ingress(self):
        sim = Simulator()
        sw, delivered = self._wired(sim)
        contract = TrafficContract(ServiceCategory.CBR, pcr=100, cdvt=0.0)
        sw.install_route("west", 0, 32,
                         VcTableEntry("east", 0, 77,
                                      upc=UsageParameterControl(contract)))
        sw.receive(make_cell(vci=32), "west")
        sw.receive(make_cell(vci=32), "west")  # same instant: PCR violation
        sim.run()
        assert len(delivered) == 1
        assert sw.stats.policed_dropped == 1

    def test_upc_tagging_sets_clp(self):
        sim = Simulator()
        sw, delivered = self._wired(sim)
        contract = TrafficContract(ServiceCategory.RT_VBR, pcr=1e6, scr=100,
                                   mbs=1, cdvt=0.0)
        sw.install_route("west", 0, 32,
                         VcTableEntry("east", 0, 77,
                                      upc=UsageParameterControl(contract)))
        sw.receive(make_cell(vci=32), "west")
        sim.schedule(0.0001, sw.receive, make_cell(vci=32), "west")
        sim.run()
        assert len(delivered) == 2
        assert delivered[0].header.clp == 0
        assert delivered[1].header.clp == 1

    def test_remove_route(self):
        sim = Simulator()
        sw, delivered = self._wired(sim)
        sw.install_route("west", 0, 32, VcTableEntry("east", 0, 77))
        sw.remove_route("west", 0, 32)
        sw.receive(make_cell(vci=32), "west")
        sim.run()
        assert delivered == []


class TestUnroutableObservability:
    """An unroutable cell must be counted AND leave a flight-recorder
    event naming the label that had no route (regression: the drop
    used to be a bare counter bump, invisible in trace dumps)."""

    def test_unroutable_records_event_with_labels(self):
        sim = Simulator()
        sw = Switch(sim, "sw", switching_delay=0.0)
        sw.receive(make_cell(vci=99), "west")
        sim.run()
        assert sw.stats.unroutable == 1
        events = sim.recorder.by_kind("unroutable_cell")
        assert len(events) == 1
        event = events[0]
        assert event.severity == "warning"
        assert event.attrs["switch"] == "sw"
        assert event.attrs["in_port"] == "west"
        assert event.attrs["vpi"] == 0
        assert event.attrs["vci"] == 99

    def test_unroutable_counter_mirrors_stats(self):
        sim = Simulator()
        sw = Switch(sim, "sw", switching_delay=0.0)
        for vci in (99, 100, 101):
            sw.receive(make_cell(vci=vci), "west")
        sim.run()
        assert sw.stats.unroutable == 3
        assert sw._m_unroutable.value == 3
        assert sw._m_received.value == 3


class TestConservationCounters:
    """The sub-counters the conservation audit balances against."""

    def test_link_buffer_and_wire_conservation(self):
        sim = Simulator()
        delivered = []
        link = Link(sim, rate_bps=424e3, prop_delay=0.0)
        link.sink = delivered.append
        for i in range(4):
            link.enqueue(make_cell(seqno=i))
        # mid-flight the books must still balance (in_service term)
        assert link.stats.conserves_buffer(link.queue_length,
                                           link.in_service)
        sim.run()
        assert len(delivered) == 4
        assert link.stats.delivered == 4
        assert link.stats.conserves_buffer(link.queue_length,
                                           link.in_service)
        assert link.stats.conserves_wire()

    def test_unsinked_link_counts_no_sink_drops(self):
        sim = Simulator()
        link = Link(sim, rate_bps=424e3, prop_delay=0.0)
        link.enqueue(make_cell())
        sim.run()
        assert link.stats.dropped_no_sink == 1
        assert link.stats.conserves_wire()

    def test_switch_receive_conservation(self):
        sim = Simulator()
        sw, delivered = TestSwitch()._wired(sim)
        sw.install_route("west", 0, 32, VcTableEntry("east", 0, 77))
        sw.receive(make_cell(vci=32), "west")
        sw.receive(make_cell(vci=99), "west")  # unroutable
        sim.run()
        assert len(delivered) == 1
        assert sw.stats.received == 2
        assert sw.stats.emitted == 1
        assert sw.stats.conserves(sw.in_fabric)
