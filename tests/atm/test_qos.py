"""Tests for traffic contracts, GCRA policing and shaping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm.qos import (
    Gcra, LeakyBucketShaper, ServiceCategory, TrafficContract,
    UsageParameterControl,
)


class TestTrafficContract:
    def test_pcr_required_positive(self):
        with pytest.raises(ValueError):
            TrafficContract(ServiceCategory.CBR, pcr=0)

    def test_scr_must_not_exceed_pcr(self):
        with pytest.raises(ValueError):
            TrafficContract(ServiceCategory.RT_VBR, pcr=100, scr=200)

    def test_burst_tolerance_zero_without_scr(self):
        c = TrafficContract(ServiceCategory.CBR, pcr=1000)
        assert c.burst_tolerance == 0.0

    def test_burst_tolerance_formula(self):
        c = TrafficContract(ServiceCategory.RT_VBR, pcr=200, scr=100, mbs=11)
        assert c.burst_tolerance == pytest.approx(10 * (1 / 100 - 1 / 200))

    def test_effective_bandwidth_by_category(self):
        cbr = TrafficContract(ServiceCategory.CBR, pcr=1000)
        vbr = TrafficContract(ServiceCategory.NRT_VBR, pcr=1000, scr=400, mbs=10)
        ubr = TrafficContract(ServiceCategory.UBR, pcr=1000)
        assert cbr.effective_bandwidth_bps() == 1000 * 424
        assert vbr.effective_bandwidth_bps() == 400 * 424
        assert ubr.effective_bandwidth_bps() == 0.0


class TestGcra:
    def test_conforming_stream_passes(self):
        g = Gcra(increment=0.01, limit=0.0)
        for i in range(100):
            assert g.check(i * 0.01)
        assert g.nonconforming == 0

    def test_too_fast_stream_rejected(self):
        g = Gcra(increment=0.01, limit=0.0)
        assert g.check(0.0)
        assert not g.check(0.001)  # way before next TAT

    def test_limit_allows_jitter(self):
        g = Gcra(increment=0.01, limit=0.002)
        assert g.check(0.0)
        assert g.check(0.0085)  # 1.5 ms early, inside tolerance

    def test_idle_time_restores_credit(self):
        g = Gcra(increment=0.01, limit=0.0)
        assert g.check(0.0)
        assert g.check(5.0)  # long idle, TAT in the past
        assert g.check(5.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            Gcra(increment=0, limit=0)
        with pytest.raises(ValueError):
            Gcra(increment=1, limit=-1)


class TestShaperConformance:
    """The leaky-bucket shaper must emit a stream its own UPC accepts."""

    @given(pcr=st.floats(1e3, 1e6), ratio=st.floats(0.1, 1.0),
           mbs=st.integers(1, 200), n=st.integers(1, 300))
    @settings(max_examples=40)
    def test_shaped_stream_always_conforms(self, pcr, ratio, mbs, n):
        scr = pcr * ratio
        contract = TrafficContract(ServiceCategory.RT_VBR, pcr=pcr, scr=scr, mbs=mbs)
        shaper = LeakyBucketShaper(contract)
        upc = UsageParameterControl(contract)
        t = 0.0
        for _ in range(n):
            t = shaper.next_departure(t)
            assert upc.police(t) == "pass"

    def test_greedy_source_gets_burst_then_scr(self):
        contract = TrafficContract(ServiceCategory.NRT_VBR, pcr=1000, scr=100, mbs=50)
        shaper = LeakyBucketShaper(contract)
        times = [shaper.next_departure(0.0) for _ in range(200)]
        # early cells at PCR spacing, tail at SCR spacing
        head_gap = times[1] - times[0]
        tail_gap = times[-1] - times[-2]
        assert head_gap == pytest.approx(1 / 1000)
        assert tail_gap == pytest.approx(1 / 100, rel=0.01)


class TestUpc:
    def test_pcr_violation_dropped(self):
        contract = TrafficContract(ServiceCategory.CBR, pcr=100, cdvt=0.0)
        upc = UsageParameterControl(contract)
        assert upc.police(0.0) == "pass"
        assert upc.police(0.0001) == "drop"

    def test_scr_violation_tagged(self):
        contract = TrafficContract(ServiceCategory.RT_VBR, pcr=10000, scr=100,
                                   mbs=1, cdvt=0.0)
        upc = UsageParameterControl(contract)
        assert upc.police(0.0) == "pass"
        # conforms to PCR (0.1 ms gap ok) but violates SCR
        assert upc.police(0.001) == "tag"

    def test_stats_accumulate(self):
        contract = TrafficContract(ServiceCategory.CBR, pcr=100, cdvt=0.0)
        upc = UsageParameterControl(contract)
        upc.police(0.0)
        upc.police(0.0)
        assert upc.stats.passed == 1
        assert upc.stats.dropped == 1
