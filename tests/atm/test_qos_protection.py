"""Integration tests: ATM QoS machinery protecting well-behaved flows.

The thesis's broadband case rests on ATM giving real-time media
predictable service; these tests verify the mechanisms that make that
true in the simulator: priority queueing, UPC policing, and admission
control acting together.
"""

import statistics

import pytest

from repro.atm import ServiceCategory, Simulator, TrafficContract
from repro.atm.network import AtmNetwork
from repro.atm.topology import star_campus


def build_contended(access_bps=5e6, buffer_cells=64):
    """Two sources converge on one destination access link."""
    sim = Simulator()
    net, _ = star_campus(sim, ["cbr-src", "rogue-src", "sink"],
                         access_bps=access_bps, buffer_cells=buffer_cells)
    return sim, net


class TestPriorityProtection:
    def test_cbr_unharmed_by_rogue_ubr(self):
        sim, net = build_contended()
        cbr_got, ubr_got = [], []
        cbr = net.open_vc("cbr-src", "sink",
                          TrafficContract(ServiceCategory.CBR, pcr=1000),
                          lambda p, i: cbr_got.append(i.delay))
        rogue = net.open_vc("rogue-src", "sink",
                            TrafficContract(ServiceCategory.UBR,
                                            pcr=5e6 / 424),
                            lambda p, i: ubr_got.append(i.delay))

        def cbr_source():
            while True:
                cbr.send(bytes(400))
                yield 0.02

        def rogue_source():
            while True:
                rogue.send(bytes(20000))
                yield 0.01  # ~16 Mb/s offered onto a 5 Mb/s link

        sim.spawn(cbr_source())
        sim.spawn(rogue_source())
        sim.run(until=2.0)
        # every CBR PDU delivered despite the overload
        assert cbr.stats.pdus_sent > 50
        assert cbr.stats.pdus_delivered == cbr.stats.pdus_sent
        # and with low, stable delay (priority queueing at the switch)
        assert statistics.mean(cbr_got) < 0.01
        # the rogue lost traffic (its frames overflowed the buffer)
        assert rogue.stats.pdus_delivered < rogue.stats.pdus_sent

    def test_upc_drops_contract_violations_at_ingress(self):
        sim, net = build_contended()
        got = []
        # a source that promises 100 cells/s but blasts much faster;
        # bypass the shaper by sending many PDUs back to back
        vc = net.open_vc("cbr-src", "sink",
                         TrafficContract(ServiceCategory.CBR, pcr=100,
                                         cdvt=0.0),
                         lambda p, i: got.append(i))
        # defeat the conformant shaper deliberately: rewire to inject
        # cells directly at line rate
        from repro.atm.aal5 import segment_pdu
        host = net.hosts["cbr-src"]
        for seq in range(50):
            for cell in segment_pdu(bytes(40), vpi=0, vci=vc.first_vci,
                                    first_seqno=seq * 10):
                host.uplink.enqueue(cell, ServiceCategory.CBR)
        sim.run(until=2.0)
        sw = net.switches["sw0"]
        assert sw.stats.policed_dropped > 0
        # only a conforming trickle got through
        assert len(got) < 5

    def test_admission_control_protects_reservations(self):
        sim, net = build_contended(access_bps=2e6)
        # first CBR reservation takes most of the sink's downlink
        net.open_vc("cbr-src", "sink",
                    TrafficContract(ServiceCategory.CBR, pcr=4000),
                    lambda p, i: None)
        # second equal reservation no longer fits (0.9 utilization cap)
        from repro.util.errors import NetworkError
        with pytest.raises(NetworkError):
            net.open_vc("rogue-src", "sink",
                        TrafficContract(ServiceCategory.CBR, pcr=4000),
                        lambda p, i: None)
        # but best-effort is always admitted
        net.open_vc("rogue-src", "sink",
                    TrafficContract(ServiceCategory.UBR, pcr=4000),
                    lambda p, i: None)
