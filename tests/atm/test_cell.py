"""Tests for ATM cell encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.atm.cell import (
    Cell, CellHeader, CELL_SIZE, HEADER_SIZE, PAYLOAD_SIZE,
    PTI_USER_0, PTI_USER_LAST, PTI_OAM_SEGMENT,
)
from repro.util.errors import DecodingError


class TestCellHeader:
    def test_encode_length(self):
        hdr = CellHeader(vpi=1, vci=100)
        assert len(hdr.encode()) == HEADER_SIZE

    def test_roundtrip(self):
        hdr = CellHeader(vpi=7, vci=12345, pti=PTI_USER_LAST, clp=1, gfc=3)
        assert CellHeader.decode(hdr.encode()) == hdr

    def test_hec_detects_corruption(self):
        raw = bytearray(CellHeader(vpi=1, vci=2).encode())
        raw[1] ^= 0x10
        with pytest.raises(DecodingError):
            CellHeader.decode(bytes(raw))

    def test_field_ranges_validated(self):
        with pytest.raises(ValueError):
            CellHeader(vpi=256, vci=0)
        with pytest.raises(ValueError):
            CellHeader(vpi=0, vci=70000)
        with pytest.raises(ValueError):
            CellHeader(vpi=0, vci=0, pti=8)
        with pytest.raises(ValueError):
            CellHeader(vpi=0, vci=0, clp=2)

    def test_last_of_frame_flag(self):
        assert CellHeader(vpi=0, vci=32, pti=PTI_USER_LAST).is_last_of_frame
        assert not CellHeader(vpi=0, vci=32, pti=PTI_USER_0).is_last_of_frame
        # OAM cells are never frame boundaries even with bit 0 set
        assert not CellHeader(vpi=0, vci=32, pti=PTI_OAM_SEGMENT | 1).is_last_of_frame

    @given(st.integers(0, 255), st.integers(0, 65535),
           st.integers(0, 7), st.integers(0, 1))
    def test_roundtrip_property(self, vpi, vci, pti, clp):
        hdr = CellHeader(vpi=vpi, vci=vci, pti=pti, clp=clp)
        assert CellHeader.decode(hdr.encode()) == hdr


class TestCell:
    def test_payload_size_enforced(self):
        with pytest.raises(ValueError):
            Cell(header=CellHeader(vpi=0, vci=32), payload=b"short")

    def test_wire_roundtrip(self):
        cell = Cell(header=CellHeader(vpi=3, vci=99), payload=bytes(range(48)))
        wire = cell.encode()
        assert len(wire) == CELL_SIZE
        back = Cell.decode(wire)
        assert back.header == cell.header
        assert back.payload == cell.payload

    def test_decode_rejects_wrong_size(self):
        with pytest.raises(DecodingError):
            Cell.decode(bytes(52))

    def test_with_vc_relabels_but_keeps_payload(self):
        cell = Cell(header=CellHeader(vpi=1, vci=40, pti=PTI_USER_LAST, clp=1),
                    payload=bytes(48), created_at=1.5, seqno=9)
        out = cell.with_vc(2, 77)
        assert (out.header.vpi, out.header.vci) == (2, 77)
        assert out.header.pti == PTI_USER_LAST
        assert out.header.clp == 1
        assert out.payload == cell.payload
        assert out.created_at == 1.5 and out.seqno == 9
