"""Property-based differential tests for the cell-train fast path.

Hypothesis drives random traffic shapes — payload sizes from one cell
to multi-train frames, bursty and sparse send gaps, one VC or several
contending for the same uplink — through two identically-seeded
networks, one per fidelity, and asserts the batched run reproduces the
per-cell run *exactly*:

* every delivered PDU: same bytes, same order, same delivery time,
  same end-to-end delay, same hop count;
* per-VC attribution: pdus/bytes sent and delivered, delay samples;
* link counters at every hop (enqueued/transmitted/delivered/drops)
  and switch counters (received/switched/emitted);
* cell count and byte totals implied by the AAL5 segmentation.

The interesting machinery under test is the horizon rule: whether a
burst is committed whole, split at the event horizon and continued, or
deferred entirely, must never change any observable number — only the
event count.
"""

import dataclasses
import math

from hypothesis import given, settings, strategies as st

from repro.atm.qos import ServiceCategory, TrafficContract
from repro.atm.simulator import Simulator
from repro.atm.topology import star_campus

# payloads: empty frames are rejected by AAL5, so start at 1 byte; cap
# at ~4 trains worth so a single example stays fast
_payloads = st.lists(st.integers(min_value=1, max_value=2000),
                     min_size=1, max_size=8)

# inter-send gaps in seconds: 0 (back-to-back, trains overlap in the
# shaper) through a few cell times to "idle line" spacing
_gaps = st.lists(st.floats(min_value=0.0, max_value=0.01,
                           allow_nan=False, allow_infinity=False),
                 min_size=1, max_size=8)


def _stats_equal(a, b, label):
    """Dataclass stats comparison: ints exact, floats to 1 ulp-ish."""
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, float):
            assert math.isclose(va, vb, rel_tol=1e-12, abs_tol=1e-15), \
                f"{label}.{f.name}: {va!r} != {vb!r}"
        elif isinstance(va, (int, str, bool)):
            assert va == vb, f"{label}.{f.name}: {va!r} != {vb!r}"
        else:  # deques etc.
            assert list(va) == list(vb), f"{label}.{f.name}"


def _drive(fidelity, sizes, gaps, n_vcs=1):
    """Run `len(sizes)` sends across *n_vcs* VCs sharing one path."""
    sim = Simulator()
    net, _spec = star_campus(sim, ["a", "b"], fidelity=fidelity)
    contract = TrafficContract(ServiceCategory.UBR, pcr=366e3)
    delivered = []
    vcs = []
    for v in range(n_vcs):
        def on_pdu(payload, info, v=v):
            delivered.append((v, payload, info.delay, info.delivered_at,
                              info.hops))
        vcs.append(net.open_vc("a", "b", contract, on_pdu))
    t = 0.0
    for i, size in enumerate(sizes):
        t += gaps[i % len(gaps)]
        payload = bytes((i + j) % 251 for j in range(size))
        sim.schedule_at(t, vcs[i % n_vcs].send, payload)
    sim.run(until=t + 30.0)
    return sim, net, vcs, delivered


def _assert_equivalent(sizes, gaps, n_vcs=1):
    _, net_c, vcs_c, got_c = _drive("cell", sizes, gaps, n_vcs)
    _, net_b, vcs_b, got_b = _drive("batched", sizes, gaps, n_vcs)

    # every PDU arrived, in the same order, with identical bytes,
    # timestamps, delays and hop counts
    assert got_b == got_c
    assert len(got_c) == len(sizes)

    # per-VC attribution
    for vc_c, vc_b in zip(vcs_c, vcs_b):
        _stats_equal(vc_c.stats, vc_b.stats, f"vc{vc_c.vc_id}")

    # per-hop link and switch counters
    for key in net_c.links:
        _stats_equal(net_c.links[key].stats, net_b.links[key].stats,
                     f"link{key}")
    for name in net_c.switches:
        _stats_equal(net_c.switches[name].stats,
                     net_b.switches[name].stats, f"switch:{name}")

    # cell/byte conservation implied by AAL5 segmentation: the uplink
    # carried exactly the segmented cell count, nothing was dropped
    uplink = net_c.links[("a", "sw0")]
    expected_cells = sum((size + 8 + 47) // 48 for size in sizes)
    assert net_b.links[("a", "sw0")].stats.enqueued == expected_cells
    assert uplink.stats.enqueued == expected_cells
    assert net_b.links[("a", "sw0")].stats.delivered == expected_cells


class TestTrainEquivalenceProperties:
    @settings(max_examples=25, deadline=None)
    @given(sizes=_payloads, gaps=_gaps)
    def test_single_vc_any_burst_shape(self, sizes, gaps):
        """Random sizes × gaps: splits, merges and deferrals at the
        horizon never change an observable number."""
        _assert_equivalent(sizes, gaps)

    @settings(max_examples=15, deadline=None)
    @given(sizes=_payloads, gaps=_gaps,
           n_vcs=st.integers(min_value=2, max_value=3))
    def test_contending_vcs_interleave_identically(self, sizes, gaps,
                                                   n_vcs):
        """Multiple shaped VCs share the uplink: the horizon rule must
        reproduce the per-cell interleaving on the wire, not serialize
        whole trains."""
        _assert_equivalent(sizes, gaps, n_vcs=n_vcs)

    @settings(max_examples=10, deadline=None)
    @given(size=st.integers(min_value=1, max_value=30000))
    def test_single_frame_any_size(self, size):
        """One frame, from a single cell to hundreds of cells spanning
        several trains."""
        _assert_equivalent([size], [0.0])
