"""Trace-context propagation across the transport, including loss.

The trace identity minted at the RPC client must survive the full
journey: header encode/decode, fragmentation and reassembly, and —
critically — a drop-and-retransmit cycle on a lossy link.  The
retransmission itself must surface in the flight recorder correlated
to the originating request's trace.
"""

from repro.atm import ServiceCategory, Simulator, TrafficContract
from repro.atm.topology import star_campus
from repro.transport.connection import connect_pair
from repro.transport.messages import Message, MessageType
from repro.transport.rpc import RpcClient, RpcServer


def lossy_pair(error_rate, seed=1, rto=0.02):
    sim = Simulator()
    net, _ = star_campus(sim, ["a", "b"])
    if error_rate:
        net.links[("sw0", "b")].inject_errors(error_rate, seed)
    contract = TrafficContract(ServiceCategory.UBR, pcr=366e3)
    ca, cb = connect_pair(sim, net, "a", "b", contract, rto=rto)
    return sim, net, ca, cb


class TestWireFormat:
    def test_trace_fields_roundtrip_through_the_header(self):
        msg = Message(type=MessageType.DATA, body=b"payload",
                      trace_id=0xDEADBEEF01, span_id=0x42)
        decoded = Message.decode(msg.encode())
        assert decoded.trace_id == 0xDEADBEEF01
        assert decoded.span_id == 0x42
        assert decoded.body == b"payload"

    def test_default_is_untraced(self):
        decoded = Message.decode(
            Message(type=MessageType.DATA, body=b"x").encode())
        assert decoded.trace_id == 0
        assert decoded.span_id == 0


class TestEndToEnd:
    def test_server_span_joins_the_client_trace(self):
        sim, net, ca, cb = lossy_pair(0.0)
        sim.tracer.enabled = True
        server = RpcServer(sim, cb)
        server.register("echo", lambda p: p)
        client = RpcClient(sim, ca)
        results = []
        with sim.tracer.span("test.request") as root:
            client.call("echo", "hi", on_result=results.append)
        sim.run(until=10.0)
        assert results == ["hi"]
        [client_span] = [s for s in sim.tracer.spans
                         if s.name == "rpc.client:echo"]
        [server_span] = [s for s in sim.tracer.spans
                         if s.name == "rpc.server:echo"]
        assert client_span.trace_id == root.trace_id
        assert client_span.parent_id == root.span_id
        assert server_span.trace_id == root.trace_id
        assert server_span.parent_id == client_span.span_id

    def test_fragmented_message_keeps_its_trace_id(self):
        sim, net, ca, cb = lossy_pair(0.0)
        got = []
        cb.on_message = got.append
        # well beyond one fragment, so reassembly must restore the ids
        ca.send(Message(type=MessageType.DATA, body=bytes(40_000),
                        trace_id=77, span_id=5))
        sim.run(until=10.0)
        [msg] = got
        assert len(msg.body) == 40_000
        assert msg.trace_id == 77
        assert msg.span_id == 5


class TestLossyPropagation:
    def test_retransmitted_pdu_keeps_trace_and_is_recorded(self):
        """A dropped-then-retransmitted PDU stays in its trace, and the
        retransmit flight event carries the originating trace_id."""
        sim, net, ca, cb = lossy_pair(0.05, seed=3)
        sim.tracer.enabled = True
        server = RpcServer(sim, cb)
        server.register("echo", lambda p: p)
        client = RpcClient(sim, ca)
        results = []
        with sim.tracer.span("test.request") as root:
            for i in range(10):
                client.call("echo", "x" * 2000,
                            on_result=results.append, timeout=50.0)
        sim.run(until=60.0)
        assert len(results) == 10

        # loss actually happened and the ARQ recovered
        assert net.links[("sw0", "b")].stats.dropped_errors > 0
        assert ca.stats.retransmitted > 0

        retransmits = sim.recorder.by_kind("retransmit")
        assert retransmits, "no retransmit events in the flight recorder"
        traced = [e for e in retransmits
                  if e.trace_id == root.trace_id]
        assert traced, "retransmit events lost their trace correlation"
        for ev in traced:
            assert ev.severity == "warning"
            assert "seq" in ev.attrs

        # the recorder can answer "what went wrong in this request?"
        assert sim.recorder.for_trace(root.trace_id)

        # despite the loss, every server span still joined the trace
        server_spans = [s for s in sim.tracer.spans
                        if s.name == "rpc.server:echo"]
        assert len(server_spans) == 10
        client_ids = {s.span_id for s in sim.tracer.spans
                      if s.name == "rpc.client:echo"}
        for s in server_spans:
            assert s.trace_id == root.trace_id
            assert s.parent_id in client_ids
