"""Tests for the reliable connection (ARQ) over the simulated network."""

import pytest

from repro.atm import Simulator, TrafficContract, ServiceCategory
from repro.atm.topology import star_campus
from repro.transport.connection import Connection, connect_pair, MAX_FRAGMENT_BODY
from repro.transport.messages import FLAG_MORE_FRAGMENTS, Message, MessageType
from repro.util.errors import DecodingError, NetworkError


def setup_pair(loss_buffer=None, access_bps=155.52e6, oversubscribe=1.0):
    sim = Simulator()
    net, _ = star_campus(sim, ["a", "b"], access_bps=access_bps,
                         buffer_cells=loss_buffer or 1024)
    contract = TrafficContract(ServiceCategory.UBR,
                               pcr=oversubscribe * access_bps / 424)
    ca, cb = connect_pair(sim, net, "a", "b", contract)
    return sim, net, ca, cb


class TestMessageFraming:
    def test_roundtrip(self):
        msg = Message(type=MessageType.REQUEST, seq=7, ack=3, corr_id=12,
                      body=b"payload")
        back = Message.decode(msg.encode())
        assert back == msg

    def test_bad_magic(self):
        with pytest.raises(DecodingError):
            Message.decode(b"XX" + bytes(18))

    def test_truncated(self):
        with pytest.raises(DecodingError):
            Message.decode(b"MB\x00")

    def test_body_length_mismatch(self):
        raw = Message(type=MessageType.DATA, body=b"abc").encode()
        with pytest.raises(DecodingError):
            Message.decode(raw + b"extra")


class TestReliableDelivery:
    def test_in_order_delivery(self):
        sim, net, ca, cb = setup_pair()
        got = []
        cb.on_message = lambda m: got.append(m.body)
        for i in range(10):
            ca.send(Message(type=MessageType.DATA, body=f"m{i}".encode()))
        sim.run(until=2.0)
        assert got == [f"m{i}".encode() for i in range(10)]

    def test_bidirectional(self):
        sim, net, ca, cb = setup_pair()
        at_a, at_b = [], []
        ca.on_message = lambda m: at_a.append(m.body)
        cb.on_message = lambda m: at_b.append(m.body)
        ca.send(Message(type=MessageType.DATA, body=b"ping"))
        cb.send(Message(type=MessageType.DATA, body=b"pong"))
        sim.run(until=2.0)
        assert at_b == [b"ping"] and at_a == [b"pong"]

    def test_window_backlog_drains(self):
        sim, net, ca, cb = setup_pair()
        got = []
        cb.on_message = lambda m: got.append(m.seq)
        for i in range(100):  # far beyond the window of 32
            ca.send(Message(type=MessageType.DATA, body=b"x"))
        sim.run(until=5.0)
        assert len(got) == 100
        assert got == sorted(got)

    def test_survives_cell_loss(self):
        # a mildly oversubscribed access link with a small buffer forces
        # overflow drops; ARQ must recover every message
        sim, net, ca, cb = setup_pair(loss_buffer=16, oversubscribe=1.1)
        got = []
        cb.on_message = lambda m: got.append(m.body)
        payloads = [bytes([i]) * 300 for i in range(30)]
        for p in payloads:
            ca.send(Message(type=MessageType.DATA, body=p))
        sim.run(until=30.0)
        assert got == payloads
        down = net.links[("sw0", "b")]
        # the test is only meaningful if losses actually happened
        assert (net.links[("a", "sw0")].stats.dropped_overflow
                + down.stats.dropped_overflow
                + ca.stats.retransmitted) > 0

    def test_closed_connection_rejects_send(self):
        sim, net, ca, cb = setup_pair()
        ca.close()
        with pytest.raises(NetworkError):
            ca.send(Message(type=MessageType.DATA, body=b"x"))

    def test_stats_track_delivery(self):
        sim, net, ca, cb = setup_pair()
        cb.on_message = lambda m: None
        ca.send(Message(type=MessageType.DATA, body=b"x"))
        sim.run(until=1.0)
        assert ca.stats.sent == 1
        assert cb.stats.delivered == 1
        assert cb.stats.acks_sent >= 1

    def test_window_validation(self):
        sim, net, ca, cb = setup_pair()
        with pytest.raises(ValueError):
            Connection(sim, ca.endpoint, window=0)


class TestFragmentation:
    def test_large_body_reassembled(self):
        sim, net, ca, cb = setup_pair()
        got = []
        cb.on_message = lambda m: got.append(m)
        big = bytes(range(256)) * 700  # ~180 KB, > MAX_FRAGMENT_BODY
        assert len(big) > MAX_FRAGMENT_BODY
        ca.send(Message(type=MessageType.RESPONSE, corr_id=5, body=big))
        sim.run(until=5.0)
        assert len(got) == 1
        assert got[0].body == big
        assert got[0].corr_id == 5
        assert got[0].type is MessageType.RESPONSE

    def test_exact_boundary_not_fragmented(self):
        sim, net, ca, cb = setup_pair()
        got = []
        cb.on_message = lambda m: got.append(m.body)
        body = bytes(MAX_FRAGMENT_BODY)
        ca.send(Message(type=MessageType.DATA, body=body))
        sim.run(until=5.0)
        assert got == [body]

    def test_small_messages_after_large(self):
        sim, net, ca, cb = setup_pair()
        got = []
        cb.on_message = lambda m: got.append(m.body)
        big = bytes(MAX_FRAGMENT_BODY * 2 + 17)
        ca.send(Message(type=MessageType.DATA, body=big))
        ca.send(Message(type=MessageType.DATA, body=b"small"))
        sim.run(until=5.0)
        assert got == [big, b"small"]


class TestCloseStateRegression:
    """close() left _reassembly populated: a reused callback path or a
    late-arriving fragment could splice stale bytes into a later
    message."""

    def test_close_clears_reassembly(self):
        sim, net, ca, cb = setup_pair()
        cb.on_message = lambda m: None
        # deliver only the first fragment of a large message, then close
        big = bytes(MAX_FRAGMENT_BODY * 2)
        ca.send(Message(type=MessageType.DATA, body=big))
        sim.run(max_events=400)  # partial delivery
        cb.close()
        assert cb._reassembly == []
        assert cb._retries == {}
        assert cb._in_flight == {}

    def test_stale_fragments_not_spliced_after_close(self):
        sim, net, ca, cb = setup_pair()
        got = []
        cb.on_message = lambda m: got.append(m.body)
        frag = Message(type=MessageType.DATA, body=b"stale-prefix",
                       flags=FLAG_MORE_FRAGMENTS)
        frag.seq = cb._recv_next
        cb.handle_pdu(frag.encode(), None)
        assert cb._reassembly  # half-reassembled
        cb.close()
        # reuse the receive path (as a pooled callback would)
        cb.closed = False
        tail = Message(type=MessageType.DATA, body=b"fresh")
        tail.seq = cb._recv_next
        cb.handle_pdu(tail.encode(), None)
        sim.run(until=1.0)
        assert got == [b"fresh"]  # no b"stale-prefix" spliced in


class TestMaxRetriesErrorPath:
    """Retry exhaustion must tear the connection down and report via
    on_error instead of raising out of the simulator loop."""

    def _dead_peer_pair(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        # sever the path: every cell vanishes on the access link
        net.links[("a", "sw0")].inject_errors(0.999999, seed=3)
        contract = TrafficContract(ServiceCategory.UBR, pcr=1e6)
        ca, cb = connect_pair(sim, net, "a", "b", contract)
        return sim, ca

    def test_on_error_invoked_with_teardown_complete(self):
        sim, ca = self._dead_peer_pair()
        errors = []
        ca.max_retries = 2
        ca.on_error = errors.append
        ca.send(Message(type=MessageType.DATA, body=b"into the void"))
        sim.run(until=60.0)  # never raises out of the loop
        assert len(errors) == 1
        assert isinstance(errors[0], NetworkError)
        assert ca.closed
        assert ca._in_flight == {}
        assert ca._timer is None
        assert ca.stats.failed == 1

    def test_without_callback_failure_is_recorded_not_raised(self):
        sim, ca = self._dead_peer_pair()
        ca.max_retries = 2
        ca.send(Message(type=MessageType.DATA, body=b"x"))
        sim.run(until=60.0)  # must not raise
        assert ca.closed
        assert isinstance(ca.last_error, NetworkError)


class TestTransportMetrics:
    def test_rtt_and_retransmit_metrics(self):
        sim, net, ca, cb = setup_pair()
        cb.on_message = lambda m: None
        for i in range(5):
            ca.send(Message(type=MessageType.DATA, body=b"m%d" % i))
        sim.run(until=2.0)
        assert ca._m_rtt.count >= 1
        assert ca._m_rtt.mean > 0
        assert ca._m_window.max >= 1
        rep = sim.metrics.report()
        assert "connection" in rep
        assert "retransmits" in rep["connection"]


class TestAdaptiveRto:
    """Jacobson RTO: the timeout learns the path instead of firing a
    fixed 50 ms timer into an 86 ms serialisation delay."""

    def test_first_sample_seeds_estimators(self):
        sim, net, ca, cb = setup_pair()
        ca._observe_rtt(0.1)
        assert ca._srtt == pytest.approx(0.1)
        assert ca._rttvar == pytest.approx(0.05)
        # SRTT + 4*RTTVAR = 0.3, above the 50 ms floor
        assert ca.rto == pytest.approx(0.3)

    def test_rto_clamped_to_floor_and_ceiling(self):
        sim, net, ca, cb = setup_pair()
        ca._observe_rtt(1e-6)
        assert ca.rto == ca.rto_min
        cb._observe_rtt(10.0)
        assert cb.rto == cb.rto_max

    def test_smoothing_converges_toward_samples(self):
        sim, net, ca, cb = setup_pair()
        for _ in range(50):
            ca._observe_rtt(0.2)
        assert ca._srtt == pytest.approx(0.2, rel=1e-3)
        # variance decays on a steady path; RTO approaches SRTT
        assert ca.rto < 0.25

    def test_slow_path_stops_retransmitting_after_learning(self):
        """On a slow access link the first flights may time out, but
        once samples land the adaptive RTO covers the serialisation
        delay and retransmits stop growing."""
        sim, net, ca, cb = setup_pair(access_bps=1.5e6)
        cb.on_message = lambda m: None
        for i in range(6):
            ca.send(Message(type=MessageType.DATA, body=bytes(16384)))
        sim.run(until=10.0)
        assert ca.stats.acked == 6
        early = ca.stats.retransmitted
        for i in range(6):
            ca.send(Message(type=MessageType.DATA, body=bytes(16384)))
        sim.run(until=20.0)
        assert ca.stats.acked == 12
        # the learned RTO covers the ~90 ms per-message serialisation:
        # no new spurious retransmits in the second batch
        assert ca.stats.retransmitted == early
        assert ca.rto > 0.05

    def test_backoff_doubles_timer_and_resets_on_progress(self):
        sim, net, ca, cb = setup_pair()
        ca._backoff = 3
        ca._in_flight[0] = Message(type=MessageType.DATA, seq=0,
                                   body=b"x")
        ca._sent_at[0] = sim.now
        ca._arm_timer()
        # 0.05 * 2**3 = 0.4, under the 2 s ceiling
        assert ca._timer.time == pytest.approx(sim.now + 0.4)
        ca._process_ack(1)
        assert ca._backoff == 0

    def test_ack_of_retransmitted_segment_keeps_backoff(self):
        """Karn companion rule: a retransmitted segment's ack yields
        no sample, so it must not relax the backed-off timer either —
        that combination is what starves the estimator."""
        sim, net, ca, cb = setup_pair()
        ca._backoff = 2
        ca._in_flight[0] = Message(type=MessageType.DATA, seq=0,
                                   body=b"x")
        # no _sent_at entry: the segment was retransmitted
        ca._process_ack(1)
        assert ca._backoff == 2

    def test_backoff_exponent_is_capped(self):
        """A fully-retransmitted window yields no Karn samples, so the
        backoff could ratchet forever; the exponent cap bounds the
        timer at 8x the adaptive RTO."""
        sim, net, ca, cb = setup_pair()
        ca._backoff = 30
        ca._in_flight[0] = Message(type=MessageType.DATA, seq=0,
                                   body=b"x")
        ca._arm_timer()
        assert ca._timer.time == pytest.approx(
            sim.now + ca.rto * 2 ** Connection.BACKOFF_CAP)

    def test_backed_off_timer_never_exceeds_rto_max(self):
        sim, net, ca, cb = setup_pair()
        ca._observe_rtt(10.0)  # clamps rto to rto_max
        ca._backoff = 2
        ca._in_flight[0] = Message(type=MessageType.DATA, seq=0,
                                   body=b"x")
        ca._arm_timer()
        assert ca._timer.time == pytest.approx(sim.now + ca.rto_max)

    def test_rto_gauge_exported(self):
        sim, net, ca, cb = setup_pair()
        rows = sim.metrics.report()["connection"]["rto_seconds"]
        assert {r["value"] for r in rows} == {0.05}
