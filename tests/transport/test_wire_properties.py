"""Property-based tests: the codec layers never corrupt silently.

Two invariants, driven by hypothesis:

* ``wire.py``: ``load_value(dump_value(v)) == v`` for every encodable
  value, and truncating or bit-flipping an encoding raises
  ``DecodingError`` or decodes to a *different* value — it never
  round-trips to the original by accident without an error.
* ``aal5.py``: a PDU segmented into cells and reassembled intact
  yields the original payload; any random pattern of cell loss or
  reordering either still yields the exact payload (nothing lost from
  *this* frame) or is counted as corrupted — the receiver never hands
  up altered bytes.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.atm.aal5 import Aal5Receiver, segment_pdu
from repro.transport.wire import dump_value, load_value
from repro.util.errors import DecodingError

# -- strategies -----------------------------------------------------------

# floats must survive equality comparison after a round trip: NaN is
# excluded (NaN != NaN); signed zero and infinities round-trip fine
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 128), max_value=2 ** 128),
    st.floats(allow_nan=False),
    st.binary(max_size=200),
    st.text(max_size=100),
)

# tuples are deliberately excluded: the wire format encodes them as
# lists, so they do not round-trip to the same python type
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=20), children, max_size=5)),
    max_leaves=25)


def _eq_allowing_nan(a, b):
    """Structural equality that treats NaN as equal to itself — a
    bitflip can turn an encoded inf/float into NaN (possibly nested in
    a container), and ``nan != nan`` would wrongly fail the re-encode
    round-trip check."""
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(map(_eq_allowing_nan, a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _eq_allowing_nan(v, b[k]) for k, v in a.items())
    return a == b


class TestWireRoundTrip:
    @given(value=_values)
    @settings(max_examples=150, deadline=None)
    def test_round_trip_is_identity(self, value):
        assert load_value(dump_value(value)) == value

    @given(value=_values, cut=st.integers(min_value=0, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_truncation_never_round_trips_silently(self, value, cut):
        encoded = dump_value(value)
        if cut == 0 or cut > len(encoded):
            return
        truncated = encoded[:-cut]
        try:
            decoded = load_value(truncated)
        except DecodingError:
            return  # structured error: the good outcome
        # decoding succeeded on a prefix: it must not silently equal
        # the original value (possible only if it differs)
        assert decoded != value

    @given(value=_values, pos=st.integers(min_value=0),
           bit=st.integers(min_value=0, max_value=7))
    @settings(max_examples=100, deadline=None)
    def test_bitflip_fails_structurally_or_decodes(self, value, pos, bit):
        """A corrupted encoding must either decode cleanly (to *some*
        value the codec can re-encode) or raise DecodingError — never
        leak a struct.error / UnicodeDecodeError / MemoryError from a
        hostile length field."""
        encoded = bytearray(dump_value(value))
        pos %= len(encoded)
        encoded[pos] ^= 1 << bit
        try:
            decoded = load_value(bytes(encoded))
        except DecodingError:
            return  # the structured outcome
        # decoded to a value: the codec must stand behind it
        assert _eq_allowing_nan(load_value(dump_value(decoded)), decoded)


def _reassemble(cells):
    """Feed *cells* to a receiver; return (delivered, corrupted)."""
    delivered = []
    rx = Aal5Receiver(lambda payload, last: delivered.append(payload))
    for cell in cells:
        rx.receive(cell)
    return delivered, rx.pdus_corrupted


class TestAal5UnderLossAndReorder:
    @given(payload=st.binary(min_size=0, max_size=2000))
    @settings(max_examples=100, deadline=None)
    def test_intact_cells_round_trip(self, payload):
        cells = segment_pdu(payload, vpi=1, vci=32)
        delivered, corrupted = _reassemble(cells)
        assert delivered == [payload]
        assert corrupted == 0

    @given(payload=st.binary(min_size=1, max_size=2000),
           data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_cell_loss_is_detected_never_silent(self, payload, data):
        cells = segment_pdu(payload, vpi=1, vci=32)
        keep = data.draw(st.lists(st.booleans(), min_size=len(cells),
                                  max_size=len(cells)))
        survivors = [c for c, k in zip(cells, keep) if k]
        delivered, corrupted = _reassemble(survivors)
        if len(survivors) == len(cells):
            assert delivered == [payload] and corrupted == 0
        else:
            # something was lost: either nothing is delivered (the
            # frame died) or... nothing.  Corrupted bytes must never
            # surface as a delivered payload.
            assert delivered in ([], [payload])
            if delivered == [payload]:
                # only possible if the loss hit nothing load-bearing —
                # AAL5 has no such bytes, so loss always shows up
                assert False, "cell loss went undetected"
            if survivors and survivors[-1].header.is_last_of_frame:
                assert corrupted == 1

    @given(payload=st.binary(min_size=1, max_size=2000),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=100, deadline=None)
    def test_reordering_is_detected_never_silent(self, payload, seed):
        import random as _random
        cells = segment_pdu(payload, vpi=1, vci=32)
        shuffled = list(cells)
        _random.Random(seed).shuffle(shuffled)
        delivered, corrupted = _reassemble(shuffled)
        if shuffled == cells:
            assert delivered == [payload]
        else:
            # a reordered frame may still pass the CRC only when the
            # reorder is an identity on payload bytes AND keeps the
            # last-of-frame cell last; any delivered payload must be
            # byte-identical to the original, never a scramble
            for got in delivered:
                assert got == payload

    @given(payloads=st.lists(st.binary(min_size=1, max_size=500),
                             min_size=2, max_size=4),
           drop_index=st.integers(min_value=0))
    @settings(max_examples=50, deadline=None)
    def test_loss_in_one_frame_does_not_poison_the_next(
            self, payloads, drop_index):
        all_cells = []
        frames = [segment_pdu(p, vpi=1, vci=32) for p in payloads]
        # drop the *last* cell of one frame: the classic poison case,
        # where the next frame's cells splice onto the orphan
        victim = drop_index % len(frames)
        for i, cells in enumerate(frames):
            all_cells.extend(cells[:-1] if i == victim else cells)
        delivered, corrupted = _reassemble(all_cells)
        # every *delivered* payload is byte-identical to an original
        for got in delivered:
            assert got in payloads
        if len(frames[victim]) > 1:
            # orphan cells splice onto the next frame: that merged
            # frame must die detected, not deliver a hybrid
            assert corrupted >= 1
            assert payloads[victim] not in delivered \
                or payloads.count(payloads[victim]) > 1
        else:
            # a single-cell frame vanishes wholesale: nothing is left
            # behind to poison the following frames
            assert corrupted == 0
            assert len(delivered) == len(payloads) - 1
