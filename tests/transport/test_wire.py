"""Tests for the wire value encoding."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.transport.wire import dump_value, load_value
from repro.util.errors import DecodingError, EncodingError


SCALARS = [None, True, False, 0, 1, -1, 2**70, -(2**70), 0.0, -1.5,
           b"", b"\x00\xff", "", "café", "中文"]


class TestScalars:
    @pytest.mark.parametrize("value", SCALARS, ids=repr)
    def test_roundtrip(self, value):
        back = load_value(dump_value(value))
        assert back == value and type(back) is type(value)

    def test_nan_roundtrips(self):
        assert math.isnan(load_value(dump_value(float("nan"))))

    def test_bool_is_not_int(self):
        assert load_value(dump_value(True)) is True
        assert load_value(dump_value(1)) == 1
        assert load_value(dump_value(1)) is not True


class TestContainers:
    def test_nested_structure(self):
        value = {"method": "Get_Selected_Doc",
                 "params": {"name": "atm-course", "ids": [1, 2, 3],
                            "blob": b"\x00" * 10, "opt": None}}
        assert load_value(dump_value(value)) == value

    def test_tuple_becomes_list(self):
        assert load_value(dump_value((1, 2))) == [1, 2]

    def test_non_str_keys_rejected(self):
        with pytest.raises(EncodingError):
            dump_value({1: "x"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(EncodingError):
            dump_value(object())

    def test_depth_limit(self):
        value = []
        for _ in range(60):
            value = [value]
        with pytest.raises(EncodingError):
            dump_value(value)


class TestMalformedInput:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(DecodingError):
            load_value(dump_value(1) + b"\x00")

    def test_truncated_rejected(self):
        data = dump_value("hello world")
        with pytest.raises(DecodingError):
            load_value(data[:-3])

    def test_unknown_tag_rejected(self):
        with pytest.raises(DecodingError):
            load_value(b"\x7f")

    def test_empty_rejected(self):
        with pytest.raises(DecodingError):
            load_value(b"")


wire_values = st.recursive(
    st.none() | st.booleans() | st.integers() |
    st.floats(allow_nan=False) | st.binary(max_size=64) | st.text(max_size=32),
    lambda children: st.lists(children, max_size=5) |
    st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=25,
)


class TestProperties:
    @given(wire_values)
    def test_roundtrip_property(self, value):
        assert load_value(dump_value(value)) == value
